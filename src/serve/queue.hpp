// Bounded request queue with admission control — the serving layer's
// backpressure primitive.
//
// The queue is the only place requests wait: producers (transports) push
// from any thread, the server's single dispatcher pops. Admission is
// reject-on-full with a typed result — a full queue NEVER blocks the
// producer and NEVER silently drops; the caller turns kFull into a
// ResponseStatus::kRejectedQueueFull response immediately. Deadlines are
// stamped at admission and checked again at dequeue, so a request that
// aged out while queued is answered without wasting a solve on it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace netmon::serve {

/// The serving layer's clock. Monotonic: deadlines survive wall-clock
/// adjustments.
using ServeClock = std::chrono::steady_clock;

/// A request parked in the queue, with its completion channel and the
/// admission-time stamps the deadline/latency accounting needs.
struct QueuedRequest {
  Request request;
  /// Completion channel: invoked exactly once with the typed Response
  /// (serve::ResponseCallback contract).
  ResponseCallback done;
  /// Opaque lifetime pin held until after `done` runs. The tenant layer
  /// parks the RCU model snapshot the request resolves against here, so
  /// a registry swap can never retire the model under an in-flight
  /// solve; the serve layer itself stays tenant-agnostic.
  std::shared_ptr<const void> context;
  ServeClock::time_point enqueued_at{};
  /// Absolute deadline (admission time + Request::deadline_ms);
  /// time_point::max() when the request has none.
  ServeClock::time_point deadline = ServeClock::time_point::max();
};

/// Outcome of an admission attempt.
enum class PushResult : std::uint8_t {
  kOk = 0,
  /// The queue is at capacity (backpressure — reject, don't block).
  kFull = 1,
  /// The queue was closed (server shutting down).
  kClosed = 2,
};

/// Mutex-protected bounded MPSC queue.
class RequestQueue {
 public:
  /// `capacity` >= 1: the maximum number of parked requests.
  explicit RequestQueue(std::size_t capacity);

  /// Admits `item` unless the queue is full or closed. Never blocks.
  /// Moves from `item` only on kOk — on rejection the caller still holds
  /// the completion callback and must answer it with a typed response.
  PushResult try_push(QueuedRequest& item);

  /// As try_push, but on admission invokes `on_admit(depth)` while still
  /// holding the queue lock. Admission records (stats, flight-recorder
  /// events) issued from the hook are therefore ordered strictly before
  /// anything the dispatcher does with the request — without the hook,
  /// the dispatcher can dequeue and record before the producer gets to
  /// its own admit record. Keep the hook cheap: it runs under the lock.
  template <typename OnAdmit>
  PushResult try_push(QueuedRequest& item, OnAdmit&& on_admit) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
      on_admit(items_.size());
    }
    cv_.notify_one();
    return PushResult::kOk;
  }

  /// Pops into `out`, waiting until an item arrives, `until` passes, or
  /// the queue is closed. Returns false on timeout or closed-and-empty.
  bool pop_until(QueuedRequest& out, ServeClock::time_point until);

  /// Non-blocking pop. Returns false when empty.
  bool try_pop(QueuedRequest& out);

  /// Closes the queue: subsequent pushes return kClosed, blocked pops
  /// wake up. Idempotent.
  void close();

  /// Removes and returns everything still parked (shutdown path: the
  /// caller answers each with a typed kShutdown response).
  std::vector<QueuedRequest> drain();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> items_;
  const std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace netmon::serve
