// Dynamic request batching: coalesce queued requests into one
// BatchSolver fan-out.
//
// Throughput on the solve path comes from fanning many independent
// problems across the thread pool at once (core::BatchSolver), so the
// dispatcher wants batches, not single requests. The Batcher implements
// the classic batch-size/linger-time policy: once a first request is
// popped it keeps collecting until either max_batch requests are in hand
// or linger time has passed. Every request kind is batch-compatible
// because each expands into solves that are pure functions of their own
// request — coalescing changes wall-clock latency, never results.
#pragma once

#include <chrono>
#include <vector>

#include "serve/queue.hpp"

namespace netmon::serve {

/// The coalescing policy.
struct BatchPolicy {
  /// Maximum requests per dispatch batch.
  std::size_t max_batch = 16;
  /// How long to keep collecting after the first request arrived. Zero
  /// means "whatever is already queued" (no added latency).
  std::chrono::milliseconds linger{0};
};

/// Pops dispatch batches off a RequestQueue per a BatchPolicy.
class Batcher {
 public:
  Batcher(RequestQueue& queue, BatchPolicy policy);

  /// Collects the next batch: waits up to `poll` for a first request,
  /// then fills the batch per the policy. Returns an empty vector on
  /// poll timeout or when the queue closed empty — callers loop, so a
  /// short poll doubles as the dispatcher's shutdown/pause check.
  std::vector<QueuedRequest> collect(std::chrono::milliseconds poll);

  const BatchPolicy& policy() const noexcept { return policy_; }

 private:
  RequestQueue& queue_;
  BatchPolicy policy_;
};

}  // namespace netmon::serve
