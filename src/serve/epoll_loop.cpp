#include "serve/epoll_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

#include "util/error.hpp"

namespace netmon::serve {

EpollLoop::EpollLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  NETMON_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    NETMON_REQUIRE(false, "eventfd failed");
  }
  ::epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    NETMON_REQUIRE(false, "epoll_ctl(wake) failed");
  }
}

EpollLoop::~EpollLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollLoop::add(int fd, std::uint64_t tag, std::uint32_t events) {
  NETMON_REQUIRE(tag != kWakeTag, "tag 0 is reserved for the wake channel");
  ::epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  NETMON_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                 "epoll_ctl(add) failed");
}

void EpollLoop::modify(int fd, std::uint64_t tag, std::uint32_t events) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  NETMON_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                 "epoll_ctl(mod) failed");
}

void EpollLoop::remove(int fd) {
  // Best-effort: the fd may already be gone (peer reset) — either way it
  // leaves the interest set when closed.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::size_t EpollLoop::wait(std::vector<Event>& out, int timeout_ms) {
  ::epoll_event events[64];
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  NETMON_REQUIRE(n >= 0, "epoll_wait failed");
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (events[i].data.u64 == kWakeTag) {
      // Drain so the eventfd is level-idle again; one wake() = one
      // kWakeTag event, coalescing bursts.
      std::uint64_t value = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wake_fd_, &value, sizeof(value));
    }
    out.push_back(Event{events[i].data.u64, events[i].events});
  }
  return out.size();
}

void EpollLoop::wake() noexcept {
  const std::uint64_t one = 1;
  // The eventfd counter saturates rather than blocks with EFD_NONBLOCK;
  // a failed write means a wake is already pending, which is fine.
  [[maybe_unused]] const ssize_t r =
      ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace netmon::serve
