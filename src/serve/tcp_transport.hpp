// Real TCP transport for the placement query service: an epoll-based
// nonblocking server that feeds any serve::Service, and a matching
// Transport client.
//
//   client thread            I/O thread (one per server)   dispatcher
//   -------------            ---------------------------   ----------
//   TcpClient::send          epoll wait
//     encode v2 frame  --->  read -> FrameAssembler
//                              -> decode_request
//                              -> Service::submit ------>  solve batch
//                            completion queue  <---------  done(Response)
//                            (mutex + eventfd wake)
//   future completes   <---  write frames (backpressure:
//                            pause reads past high water)
//
// Properties the tests pin down: frames reassemble identically across
// any read segmentation; a corrupt stream is rejected at the earliest
// impossible byte and the connection closed (protocol mismatch path);
// per-connection write backpressure stops reading — never buffers
// unboundedly — until the queue drains; idle connections close on the
// injectable obs::Clock; stop() drains in-flight requests before
// closing. Responses are bit-identical to the same fleet over
// LoopbackTransport because both feed the same Service.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "serve/epoll_loop.hpp"
#include "serve/transport.hpp"
#include "serve/wire.hpp"

namespace netmon::serve {

/// Incremental frame reassembly over an arbitrary byte segmentation.
/// feed() buffers the bytes and invokes the sink once per complete frame
/// — the same frames, in the same order, no matter how the stream was
/// chopped. Throws netmon::Error as soon as the buffered prefix cannot
/// start a valid frame (corrupt stream: the transport closes the
/// connection, since framing cannot resynchronize).
class FrameAssembler {
 public:
  using FrameSink = std::function<void(std::span<const std::uint8_t>)>;

  void feed(std::span<const std::uint8_t> bytes, const FrameSink& on_frame);

  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

struct TcpServerOptions {
  /// Listen address (IPv4 dotted quad, or "localhost").
  std::string bind_address = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  int backlog = 64;
  /// Accepted connections beyond this are closed immediately.
  std::size_t max_connections = 64;
  /// Per-connection write backpressure: when queued response bytes
  /// exceed this, the server stops reading the connection until the
  /// queue drains below half. Bounded memory per slow client.
  std::size_t write_high_water = 4u << 20;
  /// Close connections with no traffic and nothing in flight for this
  /// long (on the injected clock); 0 disables.
  std::chrono::milliseconds idle_timeout{0};
  /// I/O loop poll interval (bounds stop/idle-scan latency when quiet).
  std::chrono::milliseconds poll{20};
  /// stop() waits this long for in-flight requests to answer and write
  /// queues to flush before closing connections anyway.
  std::chrono::milliseconds drain_timeout{2000};
  /// Injected clock for idle timeouts and drain deadlines (null = the
  /// process steady clock). Borrowed; must outlive the server.
  const obs::Clock* clock = nullptr;
  /// Optional flight recorder for kConnOpen/kConnClose events. Borrowed.
  obs::FlightRecorder* recorder = nullptr;
  /// Optional registry for netmon_tcp_* metrics. Borrowed.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Nonblocking epoll TCP server front-end over any serve::Service. One
/// I/O thread owns every socket; dispatcher completion callbacks hand
/// encoded responses back through a mutex-guarded queue plus an eventfd
/// wake, so no socket is ever touched off the I/O thread.
class TcpServer {
 public:
  TcpServer(Service& service, TcpServerOptions options = {});
  /// stop()s (graceful drain) if not already stopped.
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves ephemeral port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Graceful shutdown: stop accepting, stop reading, flush in-flight
  /// responses (up to drain_timeout), close everything. Idempotent.
  void stop();

  /// Live connection count (approximate: updated by the I/O thread).
  std::size_t connections() const noexcept {
    return live_conns_.load(std::memory_order_acquire);
  }
  /// Connections closed for speaking a corrupt / mismatched protocol.
  std::uint64_t protocol_errors() const noexcept {
    return protocol_errors_.load(std::memory_order_acquire);
  }

 private:
  struct Conn;
  struct Completions;
  static constexpr std::uint64_t kListenTag = 1;

  void io_loop();
  void accept_ready();
  /// False when the connection must close (EOF, error, corrupt stream).
  bool conn_readable(Conn& conn);
  bool pump_writes(Conn& conn);
  void update_interest(Conn& conn);
  void flush_completions();
  void close_conn(std::uint64_t id);
  void begin_drain();

  Service& service_;
  TcpServerOptions options_;
  const obs::Clock* clock_;  // never null

  EpollLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  /// Dispatcher -> I/O thread completion channel; shared_ptr so a
  /// completion outliving the server drops its payload instead of
  /// touching freed state.
  std::shared_ptr<Completions> completions_;

  // I/O-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = wake, 1 = listen
  std::size_t pending_total_ = 0;   // submitted, not yet completed
  bool draining_ = false;
  obs::TimePoint drain_deadline_{};

  std::atomic<std::size_t> live_conns_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<bool> stop_requested_{false};
  std::once_flag stop_once_;

  obs::Counter accepted_;
  obs::Counter rejected_conns_;
  obs::Counter requests_;
  obs::Counter rx_bytes_;
  obs::Counter tx_bytes_;
  obs::Counter protocol_error_count_;
  obs::Gauge conn_gauge_;

  std::thread io_;
};

struct TcpClientOptions {
  std::chrono::milliseconds connect_timeout{5000};
  /// I/O loop poll interval.
  std::chrono::milliseconds poll{20};
};

/// Blocking-connect, nonblocking-I/O TCP client. send() is safe from any
/// thread; responses are matched to futures by Request::id (which must
/// be unique among in-flight requests on one connection). When the
/// connection drops, every outstanding future completes with a typed
/// kShutdown response — never a broken promise.
class TcpClient final : public Transport {
 public:
  TcpClient(const std::string& host, std::uint16_t port,
            TcpClientOptions options = {});
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  std::future<Response> send(Request request) override;

  /// Closes the connection; outstanding futures complete typed. Safe to
  /// call repeatedly.
  void close();

  /// True until the connection dropped or close() was called.
  bool connected() const;

 private:
  void io_loop();
  void fail_all_pending(const char* why);

  static constexpr std::uint64_t kConnTag = 1;

  TcpClientOptions options_;
  EpollLoop loop_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::promise<Response>> pending_;
  std::vector<std::vector<std::uint8_t>> outbox_;
  bool closed_ = false;

  // I/O-thread-only state.
  FrameAssembler assembler_;
  std::deque<std::vector<std::uint8_t>> writeq_;
  std::size_t write_offset_ = 0;
  std::uint32_t interest_ = 0;

  std::atomic<bool> stop_requested_{false};
  std::once_flag close_once_;
  std::thread io_;
};

}  // namespace netmon::serve
