// The placement query service: queue -> batcher -> BatchSolver.
//
//   transports (any thread)                 dispatcher (one thread)
//   ----------------------                  -----------------------
//   submit(Request)                         Batcher::collect()
//     validate -> typed kBadRequest            |  max_batch / linger
//     stamp deadline                           v
//     RequestQueue::try_push  --------->   deadline check at dequeue
//     full -> typed kRejectedQueueFull        |  expired -> typed response
//                                             v
//                                          expand requests -> problems
//                                             |
//                                             v
//                                  BatchSolver::solve_items(pool, items)
//                                     per-request SolverOptions carry the
//                                     deadline / iteration-budget hook
//                                             |
//                                             v
//                                     responses -> promises
//
// The Server owns one long-lived runtime::ThreadPool; batches are fanned
// across it with the same deterministic chunking as every other netmon
// fan-out, and each solve is a pure function of (model, request), so
// responses are bit-identical to direct core::BatchSolver /
// solve_placement calls regardless of thread count or batch/linger
// policy. Backpressure contract: a full queue rejects at submit time
// (typed), an expired deadline is answered (typed), shutdown answers
// everything still parked (typed) — an admitted request always gets
// exactly one Response.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "control/loop.hpp"
#include "core/batch_solver.hpp"
#include "core/problem.hpp"
#include "core/task.hpp"
#include "obs/clock.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/batcher.hpp"
#include "serve/exec.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "serve/transport.hpp"
#include "topo/graph.hpp"
#include "traffic/link_load.hpp"

namespace netmon::serve {

/// Service configuration.
struct ServerOptions {
  /// Bound on parked requests; submissions beyond it are rejected.
  std::size_t queue_capacity = 64;
  /// Request coalescing policy.
  BatchPolicy batch;
  /// Worker threads for the solve fan-out; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Base solver configuration; per-request deadline hooks are layered
  /// on top of a copy, never mutated in place.
  opt::SolverOptions solver;
  /// Problem-assembly defaults (theta, alpha, restrict_to, ecmp); a
  /// request's theta/default_alpha/failed override per query.
  core::ProblemOptions problem;
  /// Start with the dispatcher parked (tests and examples use this to
  /// stage deterministic queue states); resume() starts serving.
  bool start_paused = false;
  /// Monotonic clock for deadline stamping, expiry checks, latency
  /// accounting, and flight-recorder timestamps — one source, so they
  /// can never disagree. Null = the process steady clock; tests inject
  /// an obs::ManualClock to drive deadline expiry deterministically.
  /// Borrowed; must outlive the server.
  const obs::Clock* clock = nullptr;
  /// Flight-recorder capacity in events (admit/dequeue/batch/solve/
  /// deadline-miss/...); 0 disables recording entirely.
  std::size_t flight_recorder = 1024;
  /// Optional solver iteration trace shared by every request's solves
  /// (per-request deadline hooks are layered on top without detaching
  /// it). Borrowed; must outlive the server.
  obs::SolverTrace* solver_trace = nullptr;
  /// Tier selection (core/approx): served instances at or above
  /// tier.approx_min_candidates route to the partitioned approximation
  /// tier — certified gap instead of an exact KKT certificate — when
  /// approx_groups > 0 enables it. 0 keeps every solve exact.
  core::TierPolicy tier;
  std::size_t approx_groups = 0;
  /// Approximation-tier solve configuration (rounds, subsolver, polish).
  core::ApproxOptions approx;
};

/// The transport-agnostic query server: the single-model serve::Service
/// implementation. Construct one per network model (graph + task +
/// loads); transports submit Requests from any thread.
class Server : public Service {
 public:
  /// The graph is borrowed and must outlive the server; task and loads
  /// are snapshotted.
  Server(const topo::Graph& graph, core::MeasurementTask task,
         traffic::LinkLoads loads, ServerOptions options = {});

  /// Stops and drains (typed kShutdown responses for parked requests).
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Submits a query (serve::Service). `done` runs exactly once:
  /// synchronously for typed rejections (kBadRequest /
  /// kRejectedQueueFull / kShutdown), or from the dispatcher for served
  /// responses.
  void submit(Request request, ResponseCallback done) override;

  /// Future-style submit; same contract.
  std::future<Response> submit(Request request) {
    return submit_future(*this, std::move(request));
  }

  /// Parks the dispatcher and returns once it is actually parked (after
  /// the in-flight batch, at most one poll interval later). Requests keep
  /// queueing while paused (and the queue keeps rejecting when full), so
  /// a paused server stages deterministic queue states.
  void pause();
  /// Resumes dispatching.
  void resume();

  /// Stops the dispatcher and answers everything still queued with
  /// kShutdown. Subsequent submits are rejected. Idempotent.
  void stop();

  std::size_t queue_depth() const { return queue_.size(); }
  unsigned threads() const noexcept { return pool_.size(); }
  const ServerOptions& options() const noexcept { return options_; }

  StatsSnapshot stats() const { return stats_.snapshot(); }
  /// The serve::Stats block as one util::bench_report JSON line.
  std::string stats_json() const { return stats_.json("serve", threads()); }

  /// The registry holding both the serve metrics and the solver metrics
  /// of this server's BatchSolver.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  /// Prometheus text exposition of metrics() (a /metrics endpoint body).
  std::string prometheus() const;
  /// Recent serve events (admit/batch/solve/deadline-miss), for dumps.
  const obs::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }
  /// The clock every deadline decision and timestamp goes through.
  const obs::Clock& clock() const noexcept { return *clock_; }

  /// Hosts a streaming re-optimization loop (src/control/) on this
  /// server's infrastructure: the loop solves on the server's thread
  /// pool, stamps events into the server's flight recorder, and reports
  /// into the server's metrics registry through the server's clock.
  /// The loop tracks the server's own task; the config is used verbatim
  /// (its problem/solver fields default to the same paper defaults as
  /// ServerOptions). Replaces any previously started loop; the reference
  /// stays valid until the next start_control() or server destruction.
  control::ControlLoop& start_control(control::ControlConfig config = {});
  /// The hosted loop, or null when start_control was never called.
  control::ControlLoop* control_loop() noexcept { return control_.get(); }
  /// Advances the hosted loop one measurement bin. Steps are serialized
  /// (callers may feed bins from any thread); query traffic keeps being
  /// served concurrently on the shared pool.
  control::StepResult control_step(const control::BinObservation& observation);

  /// The model every request resolves against (serve/exec.hpp).
  ModelView model_view() const noexcept {
    return ModelView{&graph_, &task_, &loads_, &options_.problem};
  }

 private:
  void dispatch_loop();
  void process_batch(std::vector<QueuedRequest> batch);

  const topo::Graph& graph_;
  core::MeasurementTask task_;
  traffic::LinkLoads loads_;
  ServerOptions options_;

  /// Declared before solver_ and stats_: both register metrics here.
  obs::MetricsRegistry metrics_;
  const obs::Clock* clock_;  // never null
  obs::FlightRecorder recorder_;

  runtime::ThreadPool pool_;
  core::BatchSolver solver_;
  RequestQueue queue_;
  Batcher batcher_;
  ServeStats stats_;

  /// Hosted control loop (optional); steps serialize on control_mutex_.
  std::unique_ptr<control::ControlLoop> control_;
  std::mutex control_mutex_;

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool paused_ = false;
  /// True only while the dispatcher is blocked in its state wait; lets
  /// pause() rendezvous with the dispatcher instead of racing it.
  bool parked_ = false;
  bool stopping_ = false;
  std::once_flag stop_once_;
  std::thread dispatcher_;
};

}  // namespace netmon::serve
