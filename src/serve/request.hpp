// The placement query service's request/response schema.
//
// Operationally the paper's optimizer is a service: an operator (or an
// SDN controller) submits what-if placement queries — theta sweeps,
// failure scenarios, task changes — and needs answers under a latency
// budget. A Request is pure data (no pointers into the model), so it can
// cross a wire (serve/wire.hpp) unchanged; the Server resolves it
// against the network model it was constructed with (graph, task,
// loads). Every query is answered by a pure function of (model,
// request), which is what makes the serving layer's batching
// deterministic: responses are bit-identical no matter how requests were
// coalesced or how many worker threads ran them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "routing/routing_matrix.hpp"
#include "sampling/effective_rate.hpp"
#include "topo/graph.hpp"

namespace netmon::serve {

/// What the client is asking for.
enum class RequestKind : std::uint8_t {
  /// One placement solve at the request's theta / failure set.
  kSolve = 0,
  /// A fleet of failure what-ifs: one solve per scenario, all warm-started
  /// from the same running rates (core::resolve_warm semantics).
  kWhatIfBatch = 1,
  /// A theta sweep: one solve per theta, reported as (theta, utility,
  /// lambda, active monitor count) points — the Fig. 2 / budget
  /// sensitivity shape.
  kThetaSweep = 2,
  /// One solve plus the per-OD accuracy report (predicted accuracy,
  /// effective rates) — the paper's Table I columns.
  kAccuracyReport = 3,
};

/// A placement query. Fields irrelevant to the kind are ignored.
struct Request {
  /// Client-chosen correlation id, echoed in the Response.
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kSolve;
  /// Tenant the query resolves against. Single-tenant servers ignore it;
  /// tenant::TenantService resolves it in its TenantRegistry (empty =
  /// the registry's default tenant) and rejects unknown names.
  std::string tenant;
  /// System capacity theta; 0 = the server's default.
  double theta = 0.0;
  /// Per-link rate cap; 0 = the server's default.
  double default_alpha = 0.0;
  /// Links assumed failed for this query (routing recomputes around
  /// them). Applies to every kind.
  std::vector<topo::LinkId> failed;
  /// kWhatIfBatch: additional failure scenarios, one solve per entry
  /// (each entry's links are failed on top of `failed`).
  std::vector<std::vector<topo::LinkId>> what_if;
  /// kThetaSweep: the thetas to solve at (must be positive).
  std::vector<double> thetas;
  /// Warm-start rates (full link-id space, e.g. the running
  /// configuration); empty = cold start.
  sampling::RateVector warm_start;
  /// Latency budget in milliseconds from admission; 0 = none. Checked at
  /// dequeue and between solver iterations (SolverOptions::should_stop).
  std::uint32_t deadline_ms = 0;
  /// Deterministic compute budget: cancel any solve of this request after
  /// this many solver iterations; 0 = none. Unlike a wall-clock deadline
  /// this truncates identically on every machine and thread count.
  std::uint32_t iteration_budget = 0;
};

/// Typed outcome of a query. Requests are never dropped silently: every
/// admitted request gets exactly one Response, and rejected ones get a
/// typed rejection at submit time.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  /// Backpressure: the bounded queue was full at submit time.
  kRejectedQueueFull = 1,
  /// The deadline expired in-queue or mid-solve; `error` says which and
  /// mid-solve responses keep the truncated (feasible) solutions.
  kDeadlineExpired = 2,
  /// The request failed validation or problem assembly; `error` explains.
  kBadRequest = 3,
  /// The server was stopped before the request could be served.
  kShutdown = 4,
  /// The tenant's admission quota (token bucket or max in-flight) was
  /// exhausted at submit time; `error` says which.
  kRejectedQuota = 5,
};

/// How the tenant solve cache participated in answering a request.
enum class CacheOutcome : std::uint8_t {
  /// Served without cache involvement (cache disabled, or nothing
  /// usable was cached).
  kNone = 0,
  /// Exact fingerprint hit: the stored Response returned bit-identically
  /// without invoking the solver.
  kHit = 1,
  /// Miss, but the solve was warm-started from the nearest cached
  /// solution's rates.
  kWarmStart = 2,
};

const char* to_string(ResponseStatus status) noexcept;
const char* to_string(RequestKind kind) noexcept;
const char* to_string(CacheOutcome outcome) noexcept;

/// One point of a theta-sweep answer.
struct ThetaPoint {
  double theta = 0.0;
  double total_utility = 0.0;
  /// Budget shadow price dU*/dtheta at this theta.
  double lambda = 0.0;
  std::uint32_t active_monitors = 0;

  friend bool operator==(const ThetaPoint&, const ThetaPoint&) = default;
};

/// One OD row of an accuracy-report answer.
struct OdAccuracy {
  routing::OdPair od;
  double expected_packets = 0.0;
  double rho_approx = 0.0;
  double rho_exact = 0.0;
  /// Analytic prediction of the paper's measured accuracy column.
  double predicted_accuracy = 0.0;

  friend bool operator==(const OdAccuracy&, const OdAccuracy&) = default;
};

/// The answer to one Request.
struct Response {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kSolve;
  ResponseStatus status = ResponseStatus::kOk;
  /// Human-readable detail for non-kOk statuses.
  std::string error;
  /// kSolve / kAccuracyReport: one solution. kWhatIfBatch: solutions[i]
  /// answers what_if[i]. Deadline-truncated solves are included with
  /// opt::SolveStatus::kCancelled.
  std::vector<core::PlacementSolution> solutions;
  /// kThetaSweep: one point per requested theta.
  std::vector<ThetaPoint> sweep;
  /// kAccuracyReport: one row per task OD pair.
  std::vector<OdAccuracy> accuracy;
  /// Tenant that served the request (echo of Request::tenant after
  /// default resolution; empty on single-tenant servers).
  std::string tenant;
  /// Solve-cache participation (tenant::SolveCache).
  CacheOutcome cache = CacheOutcome::kNone;
  /// Transport metadata (not covered by the determinism guarantee): how
  /// many requests rode in this request's dispatch batch, and wall-clock
  /// queue / solve time.
  std::uint32_t batch_size = 0;
  double queue_ms = 0.0;
  double solve_ms = 0.0;
};

/// Completion channel of an asynchronous submission: invoked exactly once
/// with the typed Response, possibly on a dispatcher thread. Must be
/// copyable (capture shared state via shared_ptr).
using ResponseCallback = std::function<void(Response&&)>;

}  // namespace netmon::serve
