#include "serve/request.hpp"

namespace netmon::serve {

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ResponseStatus::kDeadlineExpired: return "deadline_expired";
    case ResponseStatus::kBadRequest: return "bad_request";
    case ResponseStatus::kShutdown: return "shutdown";
    case ResponseStatus::kRejectedQuota: return "rejected_quota";
  }
  return "unknown";
}

const char* to_string(CacheOutcome outcome) noexcept {
  switch (outcome) {
    case CacheOutcome::kNone: return "none";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kWarmStart: return "warm_start";
  }
  return "unknown";
}

const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kSolve: return "solve";
    case RequestKind::kWhatIfBatch: return "what_if_batch";
    case RequestKind::kThetaSweep: return "theta_sweep";
    case RequestKind::kAccuracyReport: return "accuracy_report";
  }
  return "unknown";
}

}  // namespace netmon::serve
