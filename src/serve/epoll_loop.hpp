// Thin RAII wrapper around a Linux epoll instance plus an eventfd wake
// channel — the readiness core of the nonblocking TCP transport.
//
// The loop maps file descriptors to opaque 64-bit tags (never raw fds in
// the event payload, so a recycled fd can't be confused with a stale
// registration) and adds one cross-thread primitive: wake(), which makes
// the current or next wait() return immediately. That is how the serve
// dispatcher's completion callbacks — which run on dispatcher threads —
// hand encoded responses back to the single I/O thread without touching
// any socket themselves.
#pragma once

#include <cstdint>
#include <vector>

namespace netmon::serve {

class EpollLoop {
 public:
  /// The tag wait() reports when wake() was called.
  static constexpr std::uint64_t kWakeTag = 0;

  struct Event {
    std::uint64_t tag = 0;
    /// EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits.
    std::uint32_t events = 0;
  };

  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Registers `fd` under `tag` for `events` (EPOLLIN | EPOLLOUT bits;
  /// level-triggered). The tag must not be kWakeTag.
  void add(int fd, std::uint64_t tag, std::uint32_t events);
  /// Changes the interest set of a registered fd.
  void modify(int fd, std::uint64_t tag, std::uint32_t events);
  /// Deregisters `fd` (call before closing it).
  void remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = indefinitely), replaces `out` with
  /// the ready events, and returns their count. A pending wake() is
  /// drained (so it fires once) and reported as tag kWakeTag.
  std::size_t wait(std::vector<Event>& out, int timeout_ms);

  /// Makes the current or next wait() return immediately. Safe from any
  /// thread, async-signal-unsafe-free, never blocks.
  void wake() noexcept;

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace netmon::serve
