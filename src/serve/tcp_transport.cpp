#include "serve/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace netmon::serve {

namespace {

in_addr parse_address(const std::string& host) {
  const std::string dotted = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  NETMON_REQUIRE(::inet_pton(AF_INET, dotted.c_str(), &addr) == 1,
                 "bind/connect address must be an IPv4 dotted quad");
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// --- FrameAssembler ---------------------------------------------------

void FrameAssembler::feed(std::span<const std::uint8_t> bytes,
                          const FrameSink& on_frame) {
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  std::size_t offset = 0;
  for (;;) {
    const std::span<const std::uint8_t> rest(buffer_.data() + offset,
                                             buffer_.size() - offset);
    if (rest.empty()) break;
    // Throws on a prefix that cannot start a valid frame: the stream is
    // corrupt and cannot be resynchronized.
    const std::size_t size = frame_size(rest);
    if (size == 0 || rest.size() < size) break;
    on_frame(rest.first(size));
    offset += size;
  }
  if (offset > 0)
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset));
}

// --- TcpServer --------------------------------------------------------

struct TcpServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  FrameAssembler assembler;
  std::deque<std::vector<std::uint8_t>> writeq;
  std::size_t write_offset = 0;  // into writeq.front()
  std::size_t writeq_bytes = 0;
  std::size_t inflight = 0;  // submitted, response not yet flushed
  /// Reads paused by write backpressure (resumed below half water).
  bool paused = false;
  std::uint32_t interest = 0;
  obs::TimePoint last_activity{};
};

struct TcpServer::Completions {
  std::mutex mutex;
  /// Cleared (under the mutex) once the I/O thread is gone; late
  /// completions then drop their payload instead of waking a dead loop.
  bool alive = true;
  EpollLoop* loop = nullptr;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> ready;
};

TcpServer::TcpServer(Service& service, TcpServerOptions options)
    : service_(service),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &obs::Clock::system()) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.metrics;
    accepted_ = m.counter("netmon_tcp_accepted_total",
                          "TCP connections accepted");
    rejected_conns_ = m.counter(
        "netmon_tcp_rejected_total",
        "TCP connections refused at the max_connections cap");
    requests_ = m.counter("netmon_tcp_requests_total",
                          "request frames decoded off TCP connections");
    rx_bytes_ = m.counter("netmon_tcp_rx_bytes_total",
                          "bytes read from TCP connections");
    tx_bytes_ = m.counter("netmon_tcp_tx_bytes_total",
                          "bytes written to TCP connections");
    protocol_error_count_ =
        m.counter("netmon_tcp_protocol_errors_total",
                  "connections closed on corrupt/mismatched frames");
    conn_gauge_ = m.gauge("netmon_tcp_connections", "live TCP connections");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  NETMON_REQUIRE(listen_fd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parse_address(options_.bind_address);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    ::close(listen_fd_);
    NETMON_REQUIRE(false, "bind/listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  NETMON_REQUIRE(::getsockname(listen_fd_,
                               reinterpret_cast<sockaddr*>(&bound),
                               &bound_len) == 0,
                 "getsockname failed");
  port_ = ntohs(bound.sin_port);

  loop_.add(listen_fd_, kListenTag, EPOLLIN);
  completions_ = std::make_shared<Completions>();
  completions_->loop = &loop_;
  io_ = std::thread([this] { io_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  std::call_once(stop_once_, [this] {
    stop_requested_.store(true, std::memory_order_release);
    loop_.wake();
    if (io_.joinable()) io_.join();
    // The I/O thread is gone; late dispatcher completions must not wake
    // the (about to be destroyed) loop.
    std::lock_guard<std::mutex> lock(completions_->mutex);
    completions_->alive = false;
    completions_->ready.clear();
  });
}

void TcpServer::accept_ready() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: wait for the next event
    }
    if (conns_.size() >= options_.max_connections) {
      rejected_conns_.inc();
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = clock_->now();
    conn->interest = EPOLLIN;
    loop_.add(fd, conn->id, EPOLLIN);
    accepted_.inc();
    if (options_.recorder != nullptr)
      options_.recorder->record(obs::ServeEvent::kConnOpen, conn->id,
                                conns_.size() + 1, clock_->now());
    conns_.emplace(conn->id, std::move(conn));
    live_conns_.store(conns_.size(), std::memory_order_release);
    conn_gauge_.set(static_cast<double>(conns_.size()));
  }
}

bool TcpServer::conn_readable(Conn& conn) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.last_activity = clock_->now();
    rx_bytes_.inc(static_cast<std::uint64_t>(n));
    try {
      conn.assembler.feed(
          std::span(buf, static_cast<std::size_t>(n)),
          [&](std::span<const std::uint8_t> frame) {
            Request request = decode_request(frame);
            ++conn.inflight;
            ++pending_total_;
            requests_.inc();
            const std::uint64_t conn_id = conn.id;
            const std::shared_ptr<Completions> completions = completions_;
            service_.submit(
                std::move(request),
                [completions, conn_id](Response&& response) {
                  std::vector<std::uint8_t> encoded =
                      encode_response(response);
                  std::lock_guard<std::mutex> lock(completions->mutex);
                  if (!completions->alive) return;
                  completions->ready.emplace_back(conn_id,
                                                  std::move(encoded));
                  completions->loop->wake();
                });
          });
    } catch (const Error&) {
      // Corrupt or mismatched frames: framing cannot resynchronize, so
      // the connection closes. (Its in-flight responses are dropped when
      // they complete against the vanished id.)
      protocol_errors_.fetch_add(1, std::memory_order_acq_rel);
      protocol_error_count_.inc();
      return false;
    }
  }
}

bool TcpServer::pump_writes(Conn& conn) {
  while (!conn.writeq.empty()) {
    const std::vector<std::uint8_t>& front = conn.writeq.front();
    const ssize_t n =
        ::send(conn.fd, front.data() + conn.write_offset,
               front.size() - conn.write_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    conn.last_activity = clock_->now();
    tx_bytes_.inc(static_cast<std::uint64_t>(n));
    conn.write_offset += static_cast<std::size_t>(n);
    conn.writeq_bytes -= static_cast<std::size_t>(n);
    if (conn.write_offset == front.size()) {
      conn.writeq.pop_front();
      conn.write_offset = 0;
    }
  }
  update_interest(conn);
  return true;
}

void TcpServer::update_interest(Conn& conn) {
  // Backpressure with hysteresis: pause reads past the high-water mark,
  // resume only once the queue drained below half of it.
  if (!conn.paused && conn.writeq_bytes > options_.write_high_water)
    conn.paused = true;
  else if (conn.paused &&
           conn.writeq_bytes <= options_.write_high_water / 2)
    conn.paused = false;

  std::uint32_t events = 0;
  if (!conn.paused && !draining_) events |= EPOLLIN;
  if (!conn.writeq.empty()) events |= EPOLLOUT;
  if (events != conn.interest) {
    loop_.modify(conn.fd, conn.id, events);
    conn.interest = events;
  }
}

void TcpServer::flush_completions() {
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> ready;
  {
    std::lock_guard<std::mutex> lock(completions_->mutex);
    ready.swap(completions_->ready);
  }
  for (auto& [conn_id, bytes] : ready) {
    if (pending_total_ > 0) --pending_total_;
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // connection already closed
    Conn& conn = *it->second;
    if (conn.inflight > 0) --conn.inflight;
    conn.writeq_bytes += bytes.size();
    conn.writeq.push_back(std::move(bytes));
    if (!pump_writes(conn)) close_conn(conn_id);
  }
}

void TcpServer::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  loop_.remove(conn.fd);
  ::close(conn.fd);
  conns_.erase(it);
  live_conns_.store(conns_.size(), std::memory_order_release);
  conn_gauge_.set(static_cast<double>(conns_.size()));
  if (options_.recorder != nullptr)
    options_.recorder->record(obs::ServeEvent::kConnClose, id,
                              conns_.size(), clock_->now());
}

void TcpServer::begin_drain() {
  draining_ = true;
  drain_deadline_ = clock_->now() + options_.drain_timeout;
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading new requests; keep writing responses.
  for (auto& [id, conn] : conns_) update_interest(*conn);
}

void TcpServer::io_loop() {
  std::vector<EpollLoop::Event> events;
  const int poll_ms = static_cast<int>(options_.poll.count());
  for (;;) {
    loop_.wait(events, poll_ms);
    std::vector<std::uint64_t> dead;
    for (const EpollLoop::Event& ev : events) {
      if (ev.tag == EpollLoop::kWakeTag) continue;
      if (ev.tag == kListenTag) {
        if (!draining_) accept_ready();
        continue;
      }
      const auto it = conns_.find(ev.tag);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      bool ok = (ev.events & (EPOLLERR | EPOLLHUP)) == 0;
      if (ok && (ev.events & EPOLLIN) != 0) ok = conn_readable(conn);
      if (ok && (ev.events & EPOLLOUT) != 0) ok = pump_writes(conn);
      if (!ok) dead.push_back(ev.tag);
    }
    for (const std::uint64_t id : dead) close_conn(id);

    flush_completions();

    if (!draining_ && stop_requested_.load(std::memory_order_acquire))
      begin_drain();
    if (draining_) {
      bool busy = pending_total_ > 0;
      if (!busy)
        for (const auto& [id, conn] : conns_)
          if (!conn->writeq.empty()) busy = true;
      if (!busy || clock_->now() >= drain_deadline_) break;
    }

    if (options_.idle_timeout.count() > 0 && !draining_) {
      const obs::TimePoint now = clock_->now();
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : conns_)
        if (conn->inflight == 0 && conn->writeq.empty() &&
            now - conn->last_activity >= options_.idle_timeout)
          idle.push_back(id);
      for (const std::uint64_t id : idle) close_conn(id);
    }
  }
  // Drained (or drain deadline hit): close whatever is left.
  std::vector<std::uint64_t> left;
  left.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) left.push_back(id);
  for (const std::uint64_t id : left) close_conn(id);
}

// --- TcpClient --------------------------------------------------------

TcpClient::TcpClient(const std::string& host, std::uint16_t port,
                     TcpClientOptions options)
    : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  NETMON_REQUIRE(fd_ >= 0, "socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = parse_address(host);
  addr.sin_port = htons(port);
  const int rc =
      ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd_, POLLOUT, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>(options_.connect_timeout.count()));
    int err = 0;
    socklen_t err_len = sizeof(err);
    const bool connected =
        ready == 1 &&
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 &&
        err == 0;
    if (!connected) {
      ::close(fd_);
      NETMON_REQUIRE(false, "connect failed or timed out");
    }
  } else if (rc != 0) {
    ::close(fd_);
    NETMON_REQUIRE(false, "connect failed");
  }
  set_nodelay(fd_);
  interest_ = EPOLLIN;
  loop_.add(fd_, kConnTag, EPOLLIN);
  io_ = std::thread([this] { io_loop(); });
}

TcpClient::~TcpClient() { close(); }

bool TcpClient::connected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !closed_;
}

std::future<Response> TcpClient::send(Request request) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const std::uint64_t id = request.id;
  const RequestKind kind = request.kind;
  std::vector<std::uint8_t> frame = encode_request(request);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      rejected = true;
    } else {
      NETMON_REQUIRE(pending_.find(id) == pending_.end(),
                     "request id already in flight on this connection");
      pending_.emplace(id, std::move(promise));
      outbox_.push_back(std::move(frame));
    }
  }
  if (rejected) {
    Response response;
    response.id = id;
    response.kind = kind;
    response.status = ResponseStatus::kShutdown;
    response.error = "connection closed";
    promise.set_value(std::move(response));
    return future;
  }
  loop_.wake();
  return future;
}

void TcpClient::fail_all_pending(const char* why) {
  std::unordered_map<std::uint64_t, std::promise<Response>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    orphaned.swap(pending_);
    outbox_.clear();
  }
  for (auto& [id, promise] : orphaned) {
    Response response;
    response.id = id;
    response.status = ResponseStatus::kShutdown;
    response.error = why;
    promise.set_value(std::move(response));
  }
}

void TcpClient::io_loop() {
  std::vector<EpollLoop::Event> events;
  const int poll_ms = static_cast<int>(options_.poll.count());
  bool dead = false;
  while (!dead) {
    loop_.wait(events, poll_ms);

    // Pull queued sends onto the I/O thread's write queue.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::vector<std::uint8_t>& frame : outbox_)
        writeq_.push_back(std::move(frame));
      outbox_.clear();
    }

    for (const EpollLoop::Event& ev : events) {
      if (ev.tag != kConnTag) continue;
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        dead = true;
        break;
      }
      if ((ev.events & EPOLLIN) != 0) {
        std::uint8_t buf[65536];
        for (;;) {
          const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
          if (n == 0) {
            dead = true;
            break;
          }
          if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            dead = true;
            break;
          }
          try {
            assembler_.feed(
                std::span(buf, static_cast<std::size_t>(n)),
                [&](std::span<const std::uint8_t> frame) {
                  Response response = decode_response(frame);
                  std::promise<Response> promise;
                  bool found = false;
                  {
                    std::lock_guard<std::mutex> lock(mutex_);
                    const auto it = pending_.find(response.id);
                    if (it != pending_.end()) {
                      promise = std::move(it->second);
                      pending_.erase(it);
                      found = true;
                    }
                  }
                  if (found) promise.set_value(std::move(response));
                });
          } catch (const Error&) {
            dead = true;  // corrupt stream: drop the connection
            break;
          }
        }
      }
    }
    if (dead) break;

    // Flush writes until the socket would block.
    while (!writeq_.empty()) {
      const std::vector<std::uint8_t>& front = writeq_.front();
      const ssize_t n = ::send(fd_, front.data() + write_offset_,
                               front.size() - write_offset_, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        dead = true;
        break;
      }
      write_offset_ += static_cast<std::size_t>(n);
      if (write_offset_ == front.size()) {
        writeq_.pop_front();
        write_offset_ = 0;
      }
    }
    const std::uint32_t want =
        EPOLLIN | (writeq_.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    if (want != interest_) {
      loop_.modify(fd_, kConnTag, want);
      interest_ = want;
    }

    if (stop_requested_.load(std::memory_order_acquire)) break;
  }
  fail_all_pending("connection closed");
}

void TcpClient::close() {
  std::call_once(close_once_, [this] {
    stop_requested_.store(true, std::memory_order_release);
    loop_.wake();
    if (io_.joinable()) io_.join();
    loop_.remove(fd_);
    ::close(fd_);
    fd_ = -1;
  });
}

}  // namespace netmon::serve
