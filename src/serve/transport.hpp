// The two seams of the serving layer.
//
// `Service` is the server side: anything that accepts a Request and
// promises exactly one typed Response through a callback — the
// single-tenant serve::Server and the multi-tenant tenant::TenantService
// both implement it, so transports cannot tell them apart.
//
// `Transport` is the client side: anything that carries a Request to a
// Service and brings the Response back — in-process loopback
// (serve/loopback.hpp) and real TCP (serve/tcp_transport.hpp) both
// implement it, so tests can run the same request fleet over either and
// assert the responses are bit-identical.
#pragma once

#include <future>
#include <memory>
#include <utility>

#include "serve/request.hpp"

namespace netmon::serve {

/// Server side: accepts queries, answers every one exactly once.
class Service {
 public:
  virtual ~Service() = default;

  /// Submits a query. `done` is invoked exactly once with the typed
  /// Response — synchronously for submit-time rejections (kBadRequest /
  /// kRejectedQueueFull / kRejectedQuota / kShutdown) and cache hits, or
  /// later from a dispatcher thread for served requests. The callback
  /// must not block and must not re-enter the service.
  virtual void submit(Request request, ResponseCallback done) = 0;
};

/// Client side: carries requests to a Service and responses back.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Fire-and-forget submit; the future always completes (typed).
  virtual std::future<Response> send(Request request) = 0;

  /// Blocking request/response call.
  Response call(Request request) { return send(std::move(request)).get(); }
};

/// Adapts a callback submission to a future, for callers that want the
/// promise style without a Transport.
inline std::future<Response> submit_future(Service& service,
                                           Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> future = promise->get_future();
  service.submit(std::move(request), [promise](Response&& response) {
    promise->set_value(std::move(response));
  });
  return future;
}

}  // namespace netmon::serve
