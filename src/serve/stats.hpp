// Serving-layer instrumentation: admission/outcome counters plus
// queue-depth, batch-size and latency histograms, exported as one
// util::bench_report JSON block so the serve path's health is scraped
// the same way the paper benches are.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/bench_report.hpp"
#include "util/stats.hpp"

namespace netmon::serve {

/// Fixed-footprint histogram: Welford summary (util::stats) plus
/// power-of-two buckets, so a long-running server records millions of
/// observations in O(1) memory. Quantiles are approximate (bucket upper
/// bounds) — good enough for "p99 batch size" style reporting.
class Histogram {
 public:
  void add(double value) noexcept;

  const RunningStats& summary() const noexcept { return stats_; }

  /// Approximate quantile, q in [0,1]: the upper bound of the bucket the
  /// q-th observation falls in (capped at the observed max). 0 if empty.
  double approx_quantile(double q) const noexcept;

 private:
  RunningStats stats_;
  /// buckets_[0] counts values <= 1; buckets_[b] counts values whose
  /// ceiling needs b+1 bits, i.e. (2^b / 2, 2^b].
  std::array<std::uint64_t, 40> buckets_{};
};

/// Point-in-time view of the counters and histogram summaries.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t expired_in_queue = 0;
  std::uint64_t expired_mid_solve = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t batches = 0;
  /// Problems solved (a request may expand to many).
  std::uint64_t problems_solved = 0;

  double queue_depth_mean = 0.0, queue_depth_max = 0.0,
         queue_depth_p99 = 0.0;
  double batch_size_mean = 0.0, batch_size_max = 0.0, batch_size_p99 = 0.0;
  double queue_ms_mean = 0.0, queue_ms_p99 = 0.0;
  double solve_ms_mean = 0.0, solve_ms_p99 = 0.0;
};

/// Thread-safe counters + histograms for one Server. Counters are
/// atomics (hot, touched by every producer); histograms take a mutex
/// (touched by the single dispatcher and by producers on enqueue).
class ServeStats {
 public:
  void on_submitted() noexcept { submitted_.fetch_add(1); }
  void on_enqueued(std::size_t queue_depth_after);
  void on_rejected_queue_full() noexcept { rejected_full_.fetch_add(1); }
  void on_rejected_shutdown() noexcept { rejected_shutdown_.fetch_add(1); }
  void on_bad_request() noexcept { bad_requests_.fetch_add(1); }
  void on_expired_in_queue() noexcept { expired_in_queue_.fetch_add(1); }
  void on_expired_mid_solve() noexcept { expired_mid_solve_.fetch_add(1); }
  void on_batch(std::size_t batch_size, std::size_t problem_count);
  void on_served(double queue_ms, double solve_ms);

  StatsSnapshot snapshot() const;

  /// Appends the stats as result rows on a BenchReport (rows: counters,
  /// queue_depth, batch_size, latency_ms).
  void fill(BenchReport& report) const;

  /// One-line JSON via BenchReport, e.g. for a /stats endpoint or logs.
  std::string json(const std::string& name, unsigned threads) const;

 private:
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> expired_in_queue_{0};
  std::atomic<std::uint64_t> expired_mid_solve_{0};
  std::atomic<std::uint64_t> served_ok_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> problems_solved_{0};

  mutable std::mutex mutex_;
  Histogram queue_depth_;
  Histogram batch_size_;
  Histogram queue_ms_;
  Histogram solve_ms_;
};

}  // namespace netmon::serve
