// Serving-layer instrumentation, rewired onto obs::MetricsRegistry.
//
// ServeStats is now a thin naming shim: every counter and histogram
// lives in a MetricsRegistry (per-thread sharded cells, exact max per
// histogram), so the serve metrics share one snapshot/export path with
// the solver metrics — the same registry renders the Prometheus text,
// the JSONL dump, and this struct's BenchReport rows. The historical
// accessor API (on_* hooks, StatsSnapshot, fill/json) is unchanged, so
// existing callers and tests keep working.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "util/bench_report.hpp"

namespace netmon::serve {

/// Point-in-time view of the counters and histogram summaries.
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t expired_in_queue = 0;
  std::uint64_t expired_mid_solve = 0;
  std::uint64_t served_ok = 0;
  std::uint64_t batches = 0;
  /// Problems solved (a request may expand to many).
  std::uint64_t problems_solved = 0;

  /// Histogram summaries. max is exact; p99 is approximate (bucket upper
  /// bound, capped at the exact max).
  double queue_depth_mean = 0.0, queue_depth_max = 0.0,
         queue_depth_p99 = 0.0;
  double batch_size_mean = 0.0, batch_size_max = 0.0, batch_size_p99 = 0.0;
  double queue_ms_mean = 0.0, queue_ms_p99 = 0.0;
  double solve_ms_mean = 0.0, solve_ms_p99 = 0.0;
};

/// Thread-safe serve metrics for one Server, stored in an
/// obs::MetricsRegistry under the netmon_serve_* names. Every on_* hook
/// is a sharded lock-free update.
class ServeStats {
 public:
  /// Owns a private registry (standalone use, tests).
  ServeStats();
  /// Registers the serve metrics on a shared registry (the Server passes
  /// its own, so solver and serve metrics export together). Borrowed;
  /// must outlive this object.
  explicit ServeStats(obs::MetricsRegistry& registry);

  void on_submitted() noexcept { submitted_.inc(); }
  void on_enqueued(std::size_t queue_depth_after) noexcept {
    enqueued_.inc();
    queue_depth_.observe(static_cast<double>(queue_depth_after));
  }
  void on_rejected_queue_full() noexcept { rejected_full_.inc(); }
  void on_rejected_shutdown() noexcept { rejected_shutdown_.inc(); }
  void on_bad_request() noexcept { bad_requests_.inc(); }
  void on_expired_in_queue() noexcept { expired_in_queue_.inc(); }
  void on_expired_mid_solve() noexcept { expired_mid_solve_.inc(); }
  void on_batch(std::size_t batch_size, std::size_t problem_count) noexcept {
    batches_.inc();
    problems_solved_.inc(problem_count);
    batch_size_.observe(static_cast<double>(batch_size));
  }
  void on_served(double queue_ms, double solve_ms) noexcept {
    served_ok_.inc();
    queue_ms_.observe(queue_ms);
    solve_ms_.observe(solve_ms);
  }

  StatsSnapshot snapshot() const;

  /// The backing registry (for Prometheus/JSONL export).
  obs::MetricsRegistry& registry() const noexcept { return *registry_; }

  /// Appends the stats as result rows on a BenchReport (rows: counters,
  /// queue_depth, batch_size, latency_ms).
  void fill(BenchReport& report) const;

  /// One-line JSON via BenchReport, e.g. for a /stats endpoint or logs.
  std::string json(const std::string& name, unsigned threads) const;

 private:
  void register_metrics();

  std::unique_ptr<obs::MetricsRegistry> owned_;
  obs::MetricsRegistry* registry_;

  obs::Counter submitted_, enqueued_, rejected_full_, rejected_shutdown_,
      bad_requests_, expired_in_queue_, expired_mid_solve_, served_ok_,
      batches_, problems_solved_;
  obs::Histogram queue_depth_, batch_size_, queue_ms_, solve_ms_;
};

}  // namespace netmon::serve
