// Request execution helpers shared by every Service implementation.
//
// serve::Server (one implicit model) and tenant::TenantService (a model
// per tenant snapshot) run the identical request pipeline — validate,
// expand into PlacementProblems, solve, assemble the typed Response —
// differing only in where the model comes from. These helpers take the
// model as an explicit ModelView so that pipeline exists exactly once:
// a request answered against the same view yields the same Response bits
// no matter which service ran it.
#pragma once

#include <deque>
#include <span>
#include <string>

#include "core/problem.hpp"
#include "core/task.hpp"
#include "obs/clock.hpp"
#include "opt/gradient_projection.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "topo/graph.hpp"
#include "traffic/link_load.hpp"

namespace netmon::serve {

/// A borrowed, immutable network model a request resolves against. All
/// pointers are non-null and must outlive any use of the view (the
/// Server borrows its own members; the tenant layer pins the snapshot
/// that owns them for the request's lifetime).
struct ModelView {
  const topo::Graph* graph = nullptr;
  const core::MeasurementTask* task = nullptr;
  const traffic::LinkLoads* loads = nullptr;
  /// Problem-assembly defaults; a request's theta / default_alpha /
  /// failed override per query.
  const core::ProblemOptions* defaults = nullptr;
};

/// Validation error for `request` against `model`, or empty when
/// admissible. Pure; safe from any thread.
std::string validate_request(const ModelView& model, const Request& request);

/// The model defaults with the request's overrides applied (theta,
/// default_alpha, failed links).
core::ProblemOptions request_problem_options(const ModelView& model,
                                             const Request& request);

/// Expands `request` into its PlacementProblems, appended to `problems`
/// (a deque: stable addresses while growing). Returns how many problems
/// were appended. Throws netmon::Error when assembly rejects the query
/// (e.g. a failure set that disconnects a task OD pair); the caller
/// answers kBadRequest and must not reference the partial expansion.
std::size_t expand_request(const ModelView& model, const Request& request,
                           std::deque<core::PlacementProblem>& problems);

/// Layers the request's deadline / iteration-budget cancellation hook on
/// a copy of `base`. `deadline` is the absolute admission deadline
/// (time_point::max() = none); `clock` is the same injected clock the
/// dequeue expiry check uses, so the two can never disagree.
opt::SolverOptions request_solver_options(const opt::SolverOptions& base,
                                          const Request& request,
                                          ServeClock::time_point deadline,
                                          const obs::Clock* clock);

/// The per-kind Response payload assembled from the request's solved
/// slice, plus what the caller's stats/flight-recorder paths need to
/// know about cancellation.
struct AssembledResponse {
  Response response;
  /// True when any solution in the slice was cancelled mid-solve
  /// (deadline or iteration budget); response.status/error are already
  /// set accordingly.
  bool cancelled = false;
  /// Iteration count of the (last) cancelled solution, for recording.
  int cancelled_iterations = 0;
};

/// Builds the typed Response for `request` from its solutions. Consumes
/// the slice (solutions are moved out). Transport metadata (batch_size,
/// queue_ms, solve_ms) and tenant fields are the caller's to fill.
AssembledResponse assemble_response(const Request& request,
                                    std::span<core::PlacementSolution> slice);

/// Milliseconds between two serve-clock stamps.
double ms_between(ServeClock::time_point from, ServeClock::time_point to);

}  // namespace netmon::serve
