#include "serve/server.hpp"

#include <deque>
#include <span>
#include <utility>

#include "core/reoptimize.hpp"
#include "obs/export.hpp"
#include "util/error.hpp"

namespace netmon::serve {

namespace {

core::BatchOptions make_batch_options(const ServerOptions& options,
                                      obs::MetricsRegistry& metrics) {
  core::BatchOptions batch;
  batch.threads = options.threads;
  batch.solver = options.solver;
  batch.metrics = &metrics;
  batch.trace = options.solver_trace;
  batch.tier = options.tier;
  batch.approx = options.approx;
  batch.approx_groups = options.approx_groups;
  return batch;
}

}  // namespace

Server::Server(const topo::Graph& graph, core::MeasurementTask task,
               traffic::LinkLoads loads, ServerOptions options)
    : graph_(graph),
      task_(std::move(task)),
      loads_(std::move(loads)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &obs::Clock::system()),
      recorder_(options_.flight_recorder),
      pool_(options_.threads),
      solver_(make_batch_options(options_, metrics_)),
      queue_(options_.queue_capacity),
      batcher_(queue_, options_.batch),
      stats_(metrics_) {
  NETMON_REQUIRE(loads_.size() == graph_.link_count(),
                 "loads must cover every link");
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::string Server::prometheus() const {
  return obs::prometheus_text(metrics_);
}

control::ControlLoop& Server::start_control(control::ControlConfig config) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  control::ControlDeps deps;
  deps.clock = clock_;
  deps.metrics = &metrics_;
  deps.recorder = &recorder_;
  deps.pool = &pool_;
  control_ = std::make_unique<control::ControlLoop>(graph_, task_,
                                                    std::move(config), deps);
  return *control_;
}

control::StepResult Server::control_step(
    const control::BinObservation& observation) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  NETMON_REQUIRE(control_ != nullptr,
                 "control_step requires start_control first");
  return control_->step(observation);
}

Server::~Server() { stop(); }

void Server::submit(Request request, ResponseCallback done) {
  stats_.on_submitted();

  if (std::string error = validate_request(model_view(), request);
      !error.empty()) {
    stats_.on_bad_request();
    recorder_.record(obs::ServeEvent::kBadRequest, request.id, 0,
                     clock_->now());
    Response response;
    response.id = request.id;
    response.kind = request.kind;
    response.status = ResponseStatus::kBadRequest;
    response.error = std::move(error);
    done(std::move(response));
    return;
  }

  QueuedRequest item;
  item.enqueued_at = clock_->now();
  if (request.deadline_ms > 0)
    item.deadline =
        item.enqueued_at + std::chrono::milliseconds(request.deadline_ms);
  item.request = std::move(request);
  item.done = std::move(done);

  // The admit record runs under the queue lock: its ring ticket (and
  // stats update) land strictly before any dequeue of this request.
  const std::uint64_t id = item.request.id;
  const auto enqueued_at = item.enqueued_at;
  const PushResult pushed =
      queue_.try_push(item, [&](std::size_t depth) {
        stats_.on_enqueued(depth);
        recorder_.record(obs::ServeEvent::kAdmit, id, depth, enqueued_at);
      });
  if (pushed == PushResult::kOk) return;

  Response response;
  response.id = item.request.id;
  response.kind = item.request.kind;
  if (pushed == PushResult::kFull) {
    stats_.on_rejected_queue_full();
    recorder_.record(obs::ServeEvent::kRejectFull, item.request.id,
                     queue_.capacity(), item.enqueued_at);
    response.status = ResponseStatus::kRejectedQueueFull;
    response.error = "queue full (capacity " +
                     std::to_string(queue_.capacity()) + ")";
  } else {
    stats_.on_rejected_shutdown();
    response.status = ResponseStatus::kShutdown;
    response.error = "server stopped";
  }
  item.done(std::move(response));
}

void Server::pause() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  paused_ = true;
  // Wait for the dispatcher to actually park: parked_ is only true while
  // it is blocked in its state wait, and with paused_ set it will stay
  // there until resume() or stop().
  state_cv_.wait(lock, [this] { return parked_ || stopping_; });
}

void Server::resume() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    paused_ = false;
  }
  state_cv_.notify_all();
}

void Server::stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stopping_ = true;
    }
    state_cv_.notify_all();
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
    recorder_.record(obs::ServeEvent::kShutdown, 0, queue_.size(),
                     clock_->now());
    // Everything still parked gets a typed answer — never a silent drop.
    for (QueuedRequest& item : queue_.drain()) {
      stats_.on_rejected_shutdown();
      Response response;
      response.id = item.request.id;
      response.kind = item.request.kind;
      response.status = ResponseStatus::kShutdown;
      response.error = "server stopped before the request was served";
      item.done(std::move(response));
    }
  });
}

void Server::dispatch_loop() {
  // The poll interval bounds how fast the dispatcher notices a pause or
  // stop when idle; queue pushes and close() wake it immediately.
  constexpr std::chrono::milliseconds kPoll{20};
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      parked_ = true;
      state_cv_.notify_all();
      state_cv_.wait(lock, [this] { return stopping_ || !paused_; });
      parked_ = false;
      if (stopping_) return;
    }
    std::vector<QueuedRequest> batch = batcher_.collect(kPoll);
    if (!batch.empty()) process_batch(std::move(batch));
  }
}

void Server::process_batch(std::vector<QueuedRequest> batch) {
  const ServeClock::time_point dispatch_time = clock_->now();
  const ModelView model = model_view();

  // One slot per still-live request; expired/bad ones are answered right
  // here. Problems live in a deque (stable addresses while growing).
  struct Slot {
    QueuedRequest item;
    opt::SolverOptions solver;
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(batch.size());
  std::deque<core::PlacementProblem> problems;

  auto answer_now = [&](QueuedRequest& item, ResponseStatus status,
                        std::string error) {
    Response response;
    response.id = item.request.id;
    response.kind = item.request.kind;
    response.status = status;
    response.error = std::move(error);
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = ms_between(item.enqueued_at, dispatch_time);
    item.done(std::move(response));
  };

  for (QueuedRequest& item : batch) {
    recorder_.record(obs::ServeEvent::kDequeue, item.request.id,
                     queue_.size(), dispatch_time);
    // Deadline check at dequeue: a request that aged out while queued is
    // answered without spending a solve on it.
    if (dispatch_time >= item.deadline) {
      stats_.on_expired_in_queue();
      recorder_.record(obs::ServeEvent::kDeadlineMissQueue, item.request.id,
                       0, dispatch_time);
      answer_now(item, ResponseStatus::kDeadlineExpired,
                 "deadline expired in queue");
      continue;
    }

    Slot slot;
    slot.first = problems.size();
    try {
      slot.count = expand_request(model, item.request, problems);
    } catch (const Error& error) {
      // Problem assembly rejected the query (e.g. a failure set that
      // disconnects a task OD pair). Typed answer; orphaned problems
      // from the partial expansion are never referenced by any item.
      stats_.on_bad_request();
      answer_now(item, ResponseStatus::kBadRequest, error.what());
      continue;
    }
    slot.solver = request_solver_options(options_.solver, item.request,
                                         item.deadline, clock_);
    slot.item = std::move(item);
    slots.push_back(std::move(slot));
  }

  // Addresses are taken only now that slots and problems stopped moving.
  std::vector<core::BatchItem> items;
  items.reserve(problems.size());
  for (Slot& slot : slots) {
    const sampling::RateVector* warm = slot.item.request.warm_start.empty()
                                           ? nullptr
                                           : &slot.item.request.warm_start;
    for (std::size_t i = 0; i < slot.count; ++i)
      items.push_back(
          core::BatchItem{&problems[slot.first + i], warm, &slot.solver});
  }
  stats_.on_batch(batch.size(), items.size());
  recorder_.record(obs::ServeEvent::kBatchFormed, 0, batch.size(),
                   dispatch_time);

  std::vector<core::PlacementSolution> solutions;
  if (!items.empty()) solutions = solver_.solve_items(pool_, items);
  const ServeClock::time_point solved_at = clock_->now();
  const double solve_ms = ms_between(dispatch_time, solved_at);

  std::size_t next = 0;
  for (Slot& slot : slots) {
    const std::span<core::PlacementSolution> slice(solutions.data() + next,
                                                   slot.count);
    next += slot.count;
    const Request& request = slot.item.request;

    AssembledResponse assembled = assemble_response(request, slice);
    Response& response = assembled.response;
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = ms_between(slot.item.enqueued_at, dispatch_time);
    response.solve_ms = solve_ms;

    if (assembled.cancelled) {
      stats_.on_expired_mid_solve();
      recorder_.record(
          obs::ServeEvent::kDeadlineMissSolve, request.id,
          static_cast<std::uint64_t>(assembled.cancelled_iterations),
          solved_at);
    } else {
      stats_.on_served(response.queue_ms, solve_ms);
      recorder_.record(obs::ServeEvent::kSolveDone, request.id, slot.count,
                       solved_at);
    }
    slot.item.done(std::move(response));
  }
}

}  // namespace netmon::serve
