#include "serve/server.hpp"

#include <cmath>
#include <deque>
#include <span>
#include <utility>

#include "core/reoptimize.hpp"
#include "obs/export.hpp"
#include "util/error.hpp"

namespace netmon::serve {

namespace {

double ms_between(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

core::BatchOptions make_batch_options(const ServerOptions& options,
                                      obs::MetricsRegistry& metrics) {
  core::BatchOptions batch;
  batch.threads = options.threads;
  batch.solver = options.solver;
  batch.metrics = &metrics;
  batch.trace = options.solver_trace;
  batch.tier = options.tier;
  batch.approx = options.approx;
  batch.approx_groups = options.approx_groups;
  return batch;
}

}  // namespace

Server::Server(const topo::Graph& graph, core::MeasurementTask task,
               traffic::LinkLoads loads, ServerOptions options)
    : graph_(graph),
      task_(std::move(task)),
      loads_(std::move(loads)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &obs::Clock::system()),
      recorder_(options_.flight_recorder),
      pool_(options_.threads),
      solver_(make_batch_options(options_, metrics_)),
      queue_(options_.queue_capacity),
      batcher_(queue_, options_.batch),
      stats_(metrics_) {
  NETMON_REQUIRE(loads_.size() == graph_.link_count(),
                 "loads must cover every link");
  paused_ = options_.start_paused;
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

std::string Server::prometheus() const {
  return obs::prometheus_text(metrics_);
}

control::ControlLoop& Server::start_control(control::ControlConfig config) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  control::ControlDeps deps;
  deps.clock = clock_;
  deps.metrics = &metrics_;
  deps.recorder = &recorder_;
  deps.pool = &pool_;
  control_ = std::make_unique<control::ControlLoop>(graph_, task_,
                                                    std::move(config), deps);
  return *control_;
}

control::StepResult Server::control_step(
    const control::BinObservation& observation) {
  std::lock_guard<std::mutex> lock(control_mutex_);
  NETMON_REQUIRE(control_ != nullptr,
                 "control_step requires start_control first");
  return control_->step(observation);
}

Server::~Server() { stop(); }

std::string Server::validate(const Request& request) const {
  const double theta =
      request.theta != 0.0 ? request.theta : options_.problem.theta;
  if (!(theta > 0.0) || !std::isfinite(theta))
    return "theta must be positive and finite";
  if (request.default_alpha != 0.0 &&
      (!(request.default_alpha > 0.0) || request.default_alpha > 1.0))
    return "default_alpha must be in (0, 1]";
  for (topo::LinkId id : request.failed)
    if (id >= graph_.link_count()) return "failed link id out of range";
  if (!request.warm_start.empty() &&
      request.warm_start.size() != graph_.link_count())
    return "warm_start must cover every link or be empty";
  for (double rate : request.warm_start)
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0)
      return "warm_start rates must be in [0, 1]";
  switch (request.kind) {
    case RequestKind::kWhatIfBatch:
      if (request.what_if.empty())
        return "what_if_batch requires at least one scenario";
      for (const auto& scenario : request.what_if)
        for (topo::LinkId id : scenario)
          if (id >= graph_.link_count())
            return "what_if link id out of range";
      break;
    case RequestKind::kThetaSweep:
      if (request.thetas.empty())
        return "theta_sweep requires at least one theta";
      for (double value : request.thetas)
        if (!(value > 0.0) || !std::isfinite(value))
          return "sweep thetas must be positive and finite";
      break;
    case RequestKind::kSolve:
    case RequestKind::kAccuracyReport:
      break;
  }
  return {};
}

std::future<Response> Server::submit(Request request) {
  stats_.on_submitted();
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();

  if (std::string error = validate(request); !error.empty()) {
    stats_.on_bad_request();
    recorder_.record(obs::ServeEvent::kBadRequest, request.id, 0,
                     clock_->now());
    Response response;
    response.id = request.id;
    response.kind = request.kind;
    response.status = ResponseStatus::kBadRequest;
    response.error = std::move(error);
    promise.set_value(std::move(response));
    return future;
  }

  QueuedRequest item;
  item.enqueued_at = clock_->now();
  if (request.deadline_ms > 0)
    item.deadline =
        item.enqueued_at + std::chrono::milliseconds(request.deadline_ms);
  item.request = std::move(request);
  item.promise = std::move(promise);

  // The admit record runs under the queue lock: its ring ticket (and
  // stats update) land strictly before any dequeue of this request.
  const std::uint64_t id = item.request.id;
  const auto enqueued_at = item.enqueued_at;
  const PushResult pushed =
      queue_.try_push(item, [&](std::size_t depth) {
        stats_.on_enqueued(depth);
        recorder_.record(obs::ServeEvent::kAdmit, id, depth, enqueued_at);
      });
  if (pushed == PushResult::kOk) return future;

  Response response;
  response.id = item.request.id;
  response.kind = item.request.kind;
  if (pushed == PushResult::kFull) {
    stats_.on_rejected_queue_full();
    recorder_.record(obs::ServeEvent::kRejectFull, item.request.id,
                     queue_.capacity(), item.enqueued_at);
    response.status = ResponseStatus::kRejectedQueueFull;
    response.error = "queue full (capacity " +
                     std::to_string(queue_.capacity()) + ")";
  } else {
    stats_.on_rejected_shutdown();
    response.status = ResponseStatus::kShutdown;
    response.error = "server stopped";
  }
  item.promise.set_value(std::move(response));
  return future;
}

void Server::pause() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  paused_ = true;
  // Wait for the dispatcher to actually park: parked_ is only true while
  // it is blocked in its state wait, and with paused_ set it will stay
  // there until resume() or stop().
  state_cv_.wait(lock, [this] { return parked_ || stopping_; });
}

void Server::resume() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    paused_ = false;
  }
  state_cv_.notify_all();
}

void Server::stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      stopping_ = true;
    }
    state_cv_.notify_all();
    queue_.close();
    if (dispatcher_.joinable()) dispatcher_.join();
    recorder_.record(obs::ServeEvent::kShutdown, 0, queue_.size(),
                     clock_->now());
    // Everything still parked gets a typed answer — never a silent drop.
    for (QueuedRequest& item : queue_.drain()) {
      stats_.on_rejected_shutdown();
      Response response;
      response.id = item.request.id;
      response.kind = item.request.kind;
      response.status = ResponseStatus::kShutdown;
      response.error = "server stopped before the request was served";
      item.promise.set_value(std::move(response));
    }
  });
}

void Server::dispatch_loop() {
  // The poll interval bounds how fast the dispatcher notices a pause or
  // stop when idle; queue pushes and close() wake it immediately.
  constexpr std::chrono::milliseconds kPoll{20};
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      parked_ = true;
      state_cv_.notify_all();
      state_cv_.wait(lock, [this] { return stopping_ || !paused_; });
      parked_ = false;
      if (stopping_) return;
    }
    std::vector<QueuedRequest> batch = batcher_.collect(kPoll);
    if (!batch.empty()) process_batch(std::move(batch));
  }
}

void Server::process_batch(std::vector<QueuedRequest> batch) {
  const ServeClock::time_point dispatch_time = clock_->now();

  // One slot per still-live request; expired/bad ones are answered right
  // here. Problems live in a deque (stable addresses while growing).
  struct Slot {
    QueuedRequest item;
    opt::SolverOptions solver;
    std::size_t first = 0;
    std::size_t count = 0;
  };
  std::vector<Slot> slots;
  slots.reserve(batch.size());
  std::deque<core::PlacementProblem> problems;

  auto answer_now = [&](QueuedRequest& item, ResponseStatus status,
                        std::string error) {
    Response response;
    response.id = item.request.id;
    response.kind = item.request.kind;
    response.status = status;
    response.error = std::move(error);
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = ms_between(item.enqueued_at, dispatch_time);
    item.promise.set_value(std::move(response));
  };

  auto problem_options = [&](const Request& request) {
    core::ProblemOptions base = options_.problem;
    if (request.theta > 0.0) base.theta = request.theta;
    if (request.default_alpha > 0.0)
      base.default_alpha = request.default_alpha;
    for (topo::LinkId id : request.failed) base.failed.insert(id);
    return base;
  };

  for (QueuedRequest& item : batch) {
    recorder_.record(obs::ServeEvent::kDequeue, item.request.id,
                     queue_.size(), dispatch_time);
    // Deadline check at dequeue: a request that aged out while queued is
    // answered without spending a solve on it.
    if (dispatch_time >= item.deadline) {
      stats_.on_expired_in_queue();
      recorder_.record(obs::ServeEvent::kDeadlineMissQueue, item.request.id,
                       0, dispatch_time);
      answer_now(item, ResponseStatus::kDeadlineExpired,
                 "deadline expired in queue");
      continue;
    }

    Slot slot;
    slot.first = problems.size();
    const Request& request = item.request;
    try {
      switch (request.kind) {
        case RequestKind::kSolve:
        case RequestKind::kAccuracyReport:
          problems.emplace_back(graph_, task_, loads_,
                                problem_options(request));
          break;
        case RequestKind::kWhatIfBatch:
          for (const auto& scenario : request.what_if) {
            core::ProblemOptions with_scenario = problem_options(request);
            for (topo::LinkId id : scenario) with_scenario.failed.insert(id);
            problems.emplace_back(graph_, task_, loads_, with_scenario);
          }
          break;
        case RequestKind::kThetaSweep:
          for (double theta : request.thetas) {
            core::ProblemOptions at_theta = problem_options(request);
            at_theta.theta = theta;
            problems.emplace_back(graph_, task_, loads_, at_theta);
          }
          break;
      }
    } catch (const Error& error) {
      // Problem assembly rejected the query (e.g. a failure set that
      // disconnects a task OD pair). Typed answer; orphaned problems
      // from the partial expansion are never referenced by any item.
      stats_.on_bad_request();
      answer_now(item, ResponseStatus::kBadRequest, error.what());
      continue;
    }
    slot.count = problems.size() - slot.first;

    slot.solver = options_.solver;
    if (request.deadline_ms > 0 || request.iteration_budget > 0) {
      // Per-request deadline hook: polled between solver iterations on
      // whichever worker runs this request's problems. Uses the same
      // injected clock as the dequeue expiry check above, so the two can
      // never disagree (and a ManualClock drives both in tests).
      const ServeClock::time_point deadline = item.deadline;
      const std::uint32_t budget = request.iteration_budget;
      const obs::Clock* clock = clock_;
      slot.solver.should_stop = [deadline, budget, clock](int iterations) {
        if (budget > 0 && iterations >= static_cast<int>(budget))
          return true;
        return deadline != ServeClock::time_point::max() &&
               clock->now() >= deadline;
      };
    }
    slot.item = std::move(item);
    slots.push_back(std::move(slot));
  }

  // Addresses are taken only now that slots and problems stopped moving.
  std::vector<core::BatchItem> items;
  items.reserve(problems.size());
  for (Slot& slot : slots) {
    const sampling::RateVector* warm = slot.item.request.warm_start.empty()
                                           ? nullptr
                                           : &slot.item.request.warm_start;
    for (std::size_t i = 0; i < slot.count; ++i)
      items.push_back(
          core::BatchItem{&problems[slot.first + i], warm, &slot.solver});
  }
  stats_.on_batch(batch.size(), items.size());
  recorder_.record(obs::ServeEvent::kBatchFormed, 0, batch.size(),
                   dispatch_time);

  std::vector<core::PlacementSolution> solutions;
  if (!items.empty()) solutions = solver_.solve_items(pool_, items);
  const ServeClock::time_point solved_at = clock_->now();
  const double solve_ms = ms_between(dispatch_time, solved_at);

  std::size_t next = 0;
  for (Slot& slot : slots) {
    const std::span<core::PlacementSolution> slice(solutions.data() + next,
                                                   slot.count);
    next += slot.count;
    const Request& request = slot.item.request;

    Response response;
    response.id = request.id;
    response.kind = request.kind;
    response.batch_size = static_cast<std::uint32_t>(batch.size());
    response.queue_ms = ms_between(slot.item.enqueued_at, dispatch_time);
    response.solve_ms = solve_ms;

    bool cancelled = false;
    int cancelled_iterations = 0;
    for (const core::PlacementSolution& solution : slice) {
      if (solution.status == opt::SolveStatus::kCancelled) {
        cancelled = true;
        cancelled_iterations = solution.iterations;
      }
    }

    switch (request.kind) {
      case RequestKind::kSolve:
      case RequestKind::kWhatIfBatch:
        response.solutions.assign(std::move_iterator(slice.begin()),
                                  std::move_iterator(slice.end()));
        break;
      case RequestKind::kThetaSweep:
        response.sweep.reserve(slice.size());
        for (std::size_t j = 0; j < slice.size(); ++j) {
          const core::PlacementSolution& solution = slice[j];
          response.sweep.push_back(ThetaPoint{
              request.thetas[j], solution.total_utility, solution.lambda,
              static_cast<std::uint32_t>(solution.active_monitors.size())});
        }
        break;
      case RequestKind::kAccuracyReport: {
        const core::PlacementSolution& solution = slice[0];
        response.accuracy.reserve(solution.per_od.size());
        for (const core::OdReport& od : solution.per_od) {
          response.accuracy.push_back(
              OdAccuracy{od.od, od.expected_packets, od.rho_approx,
                         od.rho_exact, od.predicted_accuracy});
        }
        response.solutions.push_back(std::move(slice[0]));
        break;
      }
    }

    if (cancelled) {
      stats_.on_expired_mid_solve();
      recorder_.record(obs::ServeEvent::kDeadlineMissSolve, request.id,
                       static_cast<std::uint64_t>(cancelled_iterations),
                       solved_at);
      response.status = ResponseStatus::kDeadlineExpired;
      response.error =
          request.iteration_budget > 0 &&
                  cancelled_iterations >=
                      static_cast<int>(request.iteration_budget)
              ? "iteration budget exhausted mid-solve"
              : "deadline expired mid-solve";
    } else {
      response.status = ResponseStatus::kOk;
      stats_.on_served(response.queue_ms, solve_ms);
      recorder_.record(obs::ServeEvent::kSolveDone, request.id, slot.count,
                       solved_at);
    }
    slot.item.promise.set_value(std::move(response));
  }
}

}  // namespace netmon::serve
