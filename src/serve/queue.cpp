#include "serve/queue.hpp"

#include "util/error.hpp"

namespace netmon::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  NETMON_REQUIRE(capacity >= 1, "queue capacity must be >= 1");
}

PushResult RequestQueue::try_push(QueuedRequest& item) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
  }
  cv_.notify_one();
  return PushResult::kOk;
}

bool RequestQueue::pop_until(QueuedRequest& out,
                             ServeClock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_until(lock, until,
                 [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

bool RequestQueue::try_pop(QueuedRequest& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<QueuedRequest> RequestQueue::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueuedRequest> out;
  out.reserve(items_.size());
  while (!items_.empty()) {
    out.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return out;
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace netmon::serve
