#include "serve/wire.hpp"

#include <bit>
#include <cstring>
#include <string>

#include "util/error.hpp"

namespace netmon::serve {

namespace {

// --- big-endian primitive writers -----------------------------------

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put64(out, std::bit_cast<std::uint64_t>(v));
}

void put_count(std::vector<std::uint8_t>& out, std::size_t n,
               const char* what) {
  NETMON_REQUIRE(n <= kWireMaxCount, what);
  put32(out, static_cast<std::uint32_t>(n));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_count(out, s.size(), "string too long for the wire");
  out.insert(out.end(), s.begin(), s.end());
}

void put_ids(std::vector<std::uint8_t>& out,
             const std::vector<topo::LinkId>& ids) {
  put_count(out, ids.size(), "too many link ids for the wire");
  for (topo::LinkId id : ids) put32(out, id);
}

void put_doubles(std::vector<std::uint8_t>& out,
                 const std::vector<double>& values) {
  put_count(out, values.size(), "too many doubles for the wire");
  for (double v : values) put_f64(out, v);
}

// --- bounds-checked reader ------------------------------------------

// Every read advances `at` and throws before touching memory past
// `bytes.size()`, so a truncated or lying length prefix can never cause
// an out-of-bounds access.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[at_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v =
        (static_cast<std::uint32_t>(bytes_[at_]) << 24) |
        (static_cast<std::uint32_t>(bytes_[at_ + 1]) << 16) |
        (static_cast<std::uint32_t>(bytes_[at_ + 2]) << 8) |
        static_cast<std::uint32_t>(bytes_[at_ + 3]);
    at_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::uint32_t count(const char* what) {
    const std::uint32_t n = u32();
    NETMON_REQUIRE(n <= kWireMaxCount, what);
    // A count the remaining bytes cannot possibly satisfy (every element
    // is at least one byte) is corrupt; reject before reserving.
    NETMON_REQUIRE(n <= bytes_.size() - at_, what);
    return n;
  }

  std::string string() {
    const std::uint32_t n = count("corrupt string length");
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + at_), n);
    at_ += n;
    return s;
  }

  std::vector<topo::LinkId> ids(const char* what) {
    const std::uint32_t n = count(what);
    std::vector<topo::LinkId> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
    return out;
  }

  std::vector<double> doubles(const char* what) {
    const std::uint32_t n = count(what);
    std::vector<double> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(f64());
    return out;
  }

  void finish() const {
    NETMON_REQUIRE(at_ == bytes_.size(), "trailing bytes after frame body");
  }

 private:
  void need(std::size_t n) const {
    NETMON_REQUIRE(n <= bytes_.size() - at_, "truncated frame");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

// --- framing ---------------------------------------------------------

std::vector<std::uint8_t> frame(std::uint8_t type,
                                std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  NETMON_REQUIRE(body.size() <= kWireMaxBody, "frame too large");
  out.reserve(kWireHeaderSize + body.size());
  put8(out, kWireMagic0);
  put8(out, kWireMagic1);
  put8(out, kWireVersion);
  put8(out, type);
  put32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct Unframed {
  std::span<const std::uint8_t> body;
  std::uint8_t version = 0;
};

// Strips and checks the envelope of a complete v2 or legacy v1 frame;
// returns the body plus which layout carried it.
Unframed unframe(std::span<const std::uint8_t> bytes,
                 std::uint8_t expected_type) {
  NETMON_REQUIRE(!bytes.empty(), "empty frame");
  if (bytes[0] == kWireMagic0) {
    // v2: magic | version | type | body length | body.
    NETMON_REQUIRE(bytes.size() >= kWireHeaderSize,
                   "frame shorter than its envelope");
    NETMON_REQUIRE(bytes[1] == kWireMagic1, "bad frame magic");
    NETMON_REQUIRE(bytes[2] == kWireVersion, "unsupported wire version");
    NETMON_REQUIRE(bytes[3] == expected_type, "unexpected frame type");
    Reader prefix(bytes.subspan(4, 4));
    const std::uint32_t body_len = prefix.u32();
    NETMON_REQUIRE(bytes.size() == kWireHeaderSize + body_len,
                   "frame size does not match its length prefix");
    return {bytes.subspan(kWireHeaderSize), kWireVersion};
  }
  // Legacy v1: length prefix | magic | version | type | body.
  NETMON_REQUIRE(bytes.size() >= 8, "frame shorter than its envelope");
  Reader prefix(bytes.first(4));
  const std::uint32_t payload = prefix.u32();
  NETMON_REQUIRE(bytes.size() == 4 + static_cast<std::size_t>(payload),
                 "frame size does not match its length prefix");
  NETMON_REQUIRE(bytes[4] == kWireMagic0 && bytes[5] == kWireMagic1,
                 "bad frame magic");
  NETMON_REQUIRE(bytes[6] == kWireLegacyVersion, "unsupported wire version");
  NETMON_REQUIRE(bytes[7] == expected_type, "unexpected frame type");
  return {bytes.subspan(8), kWireLegacyVersion};
}

RequestKind decode_kind(std::uint8_t raw) {
  NETMON_REQUIRE(raw <= static_cast<std::uint8_t>(
                            RequestKind::kAccuracyReport),
                 "unknown request kind");
  return static_cast<RequestKind>(raw);
}

void put_solution(std::vector<std::uint8_t>& out,
                  const core::PlacementSolution& solution) {
  put_doubles(out, solution.rates);
  put_ids(out, solution.active_monitors);
  put_count(out, solution.per_od.size(), "too many OD reports");
  for (const core::OdReport& od : solution.per_od) {
    put32(out, od.od.src);
    put32(out, od.od.dst);
    put_f64(out, od.expected_packets);
    put_f64(out, od.rho_approx);
    put_f64(out, od.rho_exact);
    put_f64(out, od.utility);
    put_f64(out, od.predicted_accuracy);
    put_ids(out, od.monitored_links);
  }
  put_f64(out, solution.total_utility);
  put_f64(out, solution.budget_used);
  put8(out, static_cast<std::uint8_t>(solution.status));
  put32(out, static_cast<std::uint32_t>(solution.iterations));
  put32(out, static_cast<std::uint32_t>(solution.release_events));
  put_f64(out, solution.lambda);
}

core::PlacementSolution read_solution(Reader& in) {
  core::PlacementSolution solution;
  solution.rates = in.doubles("corrupt rate vector");
  solution.active_monitors = in.ids("corrupt monitor list");
  const std::uint32_t n_od = in.count("corrupt OD report count");
  solution.per_od.reserve(n_od);
  for (std::uint32_t i = 0; i < n_od; ++i) {
    core::OdReport od;
    od.od.src = in.u32();
    od.od.dst = in.u32();
    od.expected_packets = in.f64();
    od.rho_approx = in.f64();
    od.rho_exact = in.f64();
    od.utility = in.f64();
    od.predicted_accuracy = in.f64();
    od.monitored_links = in.ids("corrupt monitored-link list");
    solution.per_od.push_back(std::move(od));
  }
  solution.total_utility = in.f64();
  solution.budget_used = in.f64();
  const std::uint8_t status = in.u8();
  NETMON_REQUIRE(
      status <= static_cast<std::uint8_t>(opt::SolveStatus::kCancelled),
      "unknown solve status");
  solution.status = static_cast<opt::SolveStatus>(status);
  solution.iterations = static_cast<int>(in.u32());
  solution.release_events = static_cast<int>(in.u32());
  solution.lambda = in.f64();
  return solution;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> body;
  put64(body, request.id);
  put8(body, static_cast<std::uint8_t>(request.kind));
  put_string(body, request.tenant);
  put_f64(body, request.theta);
  put_f64(body, request.default_alpha);
  put_ids(body, request.failed);
  put_count(body, request.what_if.size(), "too many what-if scenarios");
  for (const auto& scenario : request.what_if) put_ids(body, scenario);
  put_doubles(body, request.thetas);
  put_doubles(body, request.warm_start);
  put32(body, request.deadline_ms);
  put32(body, request.iteration_budget);
  return frame(kWireRequest, std::move(body));
}

Request decode_request(std::span<const std::uint8_t> bytes) {
  const Unframed frame = unframe(bytes, kWireRequest);
  Reader in(frame.body);
  Request request;
  request.id = in.u64();
  request.kind = decode_kind(in.u8());
  if (frame.version >= 2) request.tenant = in.string();
  request.theta = in.f64();
  request.default_alpha = in.f64();
  request.failed = in.ids("corrupt failed-link list");
  const std::uint32_t n_scenarios = in.count("corrupt scenario count");
  request.what_if.reserve(n_scenarios);
  for (std::uint32_t i = 0; i < n_scenarios; ++i)
    request.what_if.push_back(in.ids("corrupt what-if scenario"));
  request.thetas = in.doubles("corrupt theta list");
  request.warm_start = in.doubles("corrupt warm-start vector");
  request.deadline_ms = in.u32();
  request.iteration_budget = in.u32();
  in.finish();
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> body;
  put64(body, response.id);
  put8(body, static_cast<std::uint8_t>(response.kind));
  put8(body, static_cast<std::uint8_t>(response.status));
  put8(body, static_cast<std::uint8_t>(response.cache));
  put_string(body, response.tenant);
  put_string(body, response.error);
  put_count(body, response.solutions.size(), "too many solutions");
  for (const core::PlacementSolution& s : response.solutions)
    put_solution(body, s);
  put_count(body, response.sweep.size(), "too many sweep points");
  for (const ThetaPoint& p : response.sweep) {
    put_f64(body, p.theta);
    put_f64(body, p.total_utility);
    put_f64(body, p.lambda);
    put32(body, p.active_monitors);
  }
  put_count(body, response.accuracy.size(), "too many accuracy rows");
  for (const OdAccuracy& row : response.accuracy) {
    put32(body, row.od.src);
    put32(body, row.od.dst);
    put_f64(body, row.expected_packets);
    put_f64(body, row.rho_approx);
    put_f64(body, row.rho_exact);
    put_f64(body, row.predicted_accuracy);
  }
  put32(body, response.batch_size);
  put_f64(body, response.queue_ms);
  put_f64(body, response.solve_ms);
  return frame(kWireResponse, std::move(body));
}

Response decode_response(std::span<const std::uint8_t> bytes) {
  const Unframed frame = unframe(bytes, kWireResponse);
  Reader in(frame.body);
  Response response;
  response.id = in.u64();
  response.kind = decode_kind(in.u8());
  const std::uint8_t status = in.u8();
  NETMON_REQUIRE(
      status <= static_cast<std::uint8_t>(ResponseStatus::kRejectedQuota),
      "unknown response status");
  response.status = static_cast<ResponseStatus>(status);
  if (frame.version >= 2) {
    const std::uint8_t cache = in.u8();
    NETMON_REQUIRE(
        cache <= static_cast<std::uint8_t>(CacheOutcome::kWarmStart),
        "unknown cache outcome");
    response.cache = static_cast<CacheOutcome>(cache);
    response.tenant = in.string();
  }
  response.error = in.string();
  const std::uint32_t n_solutions = in.count("corrupt solution count");
  response.solutions.reserve(n_solutions);
  for (std::uint32_t i = 0; i < n_solutions; ++i)
    response.solutions.push_back(read_solution(in));
  const std::uint32_t n_sweep = in.count("corrupt sweep count");
  response.sweep.reserve(n_sweep);
  for (std::uint32_t i = 0; i < n_sweep; ++i) {
    ThetaPoint p;
    p.theta = in.f64();
    p.total_utility = in.f64();
    p.lambda = in.f64();
    p.active_monitors = in.u32();
    response.sweep.push_back(p);
  }
  const std::uint32_t n_accuracy = in.count("corrupt accuracy count");
  response.accuracy.reserve(n_accuracy);
  for (std::uint32_t i = 0; i < n_accuracy; ++i) {
    OdAccuracy row;
    row.od.src = in.u32();
    row.od.dst = in.u32();
    row.expected_packets = in.f64();
    row.rho_approx = in.f64();
    row.rho_exact = in.f64();
    row.predicted_accuracy = in.f64();
    response.accuracy.push_back(row);
  }
  response.batch_size = in.u32();
  response.queue_ms = in.f64();
  response.solve_ms = in.f64();
  in.finish();
  return response;
}

std::size_t frame_size(std::span<const std::uint8_t> buffer) {
  if (buffer.empty()) return 0;
  if (buffer[0] == kWireMagic0) {
    // v2: validate the envelope byte-by-byte as it arrives so a corrupt
    // stream is rejected at the earliest byte that cannot be valid.
    if (buffer.size() >= 2)
      NETMON_REQUIRE(buffer[1] == kWireMagic1, "bad frame magic");
    if (buffer.size() >= 3)
      NETMON_REQUIRE(buffer[2] == kWireVersion, "unsupported wire version");
    if (buffer.size() >= 4)
      NETMON_REQUIRE(
          buffer[3] == kWireRequest || buffer[3] == kWireResponse,
          "unexpected frame type");
    if (buffer.size() < kWireHeaderSize) return 0;
    Reader prefix(buffer.subspan(4, 4));
    const std::uint32_t body_len = prefix.u32();
    NETMON_REQUIRE(body_len <= kWireMaxBody,
                   "frame length prefix is absurd");
    return kWireHeaderSize + static_cast<std::size_t>(body_len);
  }
  // Legacy v1: the first byte is the high byte of the big-endian length
  // prefix; the payload cap (~100 MB) keeps it at most 0x06, so any
  // other non-'N' value cannot start a frame.
  NETMON_REQUIRE(buffer[0] <= (kWireMaxBody + 4) >> 24,
                 "bad frame magic");
  if (buffer.size() < 4) return 0;
  Reader prefix(buffer.first(4));
  const std::uint32_t payload = prefix.u32();
  NETMON_REQUIRE(payload >= 4, "frame payload shorter than its envelope");
  NETMON_REQUIRE(payload <= 4 + kWireMaxBody,
                 "frame length prefix is absurd");
  return 4 + static_cast<std::size_t>(payload);
}

}  // namespace netmon::serve
