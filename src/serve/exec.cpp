#include "serve/exec.hpp"

#include <chrono>
#include <cmath>
#include <iterator>
#include <utility>

#include "util/error.hpp"

namespace netmon::serve {

double ms_between(ServeClock::time_point from, ServeClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string validate_request(const ModelView& model,
                             const Request& request) {
  const double theta =
      request.theta != 0.0 ? request.theta : model.defaults->theta;
  if (!(theta > 0.0) || !std::isfinite(theta))
    return "theta must be positive and finite";
  if (request.default_alpha != 0.0 &&
      (!(request.default_alpha > 0.0) || request.default_alpha > 1.0))
    return "default_alpha must be in (0, 1]";
  const std::size_t links = model.graph->link_count();
  for (topo::LinkId id : request.failed)
    if (id >= links) return "failed link id out of range";
  if (!request.warm_start.empty() && request.warm_start.size() != links)
    return "warm_start must cover every link or be empty";
  for (double rate : request.warm_start)
    if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0)
      return "warm_start rates must be in [0, 1]";
  switch (request.kind) {
    case RequestKind::kWhatIfBatch:
      if (request.what_if.empty())
        return "what_if_batch requires at least one scenario";
      for (const auto& scenario : request.what_if)
        for (topo::LinkId id : scenario)
          if (id >= links) return "what_if link id out of range";
      break;
    case RequestKind::kThetaSweep:
      if (request.thetas.empty())
        return "theta_sweep requires at least one theta";
      for (double value : request.thetas)
        if (!(value > 0.0) || !std::isfinite(value))
          return "sweep thetas must be positive and finite";
      break;
    case RequestKind::kSolve:
    case RequestKind::kAccuracyReport:
      break;
  }
  return {};
}

core::ProblemOptions request_problem_options(const ModelView& model,
                                             const Request& request) {
  core::ProblemOptions base = *model.defaults;
  if (request.theta > 0.0) base.theta = request.theta;
  if (request.default_alpha > 0.0)
    base.default_alpha = request.default_alpha;
  for (topo::LinkId id : request.failed) base.failed.insert(id);
  return base;
}

std::size_t expand_request(const ModelView& model, const Request& request,
                           std::deque<core::PlacementProblem>& problems) {
  const std::size_t first = problems.size();
  switch (request.kind) {
    case RequestKind::kSolve:
    case RequestKind::kAccuracyReport:
      problems.emplace_back(*model.graph, *model.task, *model.loads,
                            request_problem_options(model, request));
      break;
    case RequestKind::kWhatIfBatch:
      for (const auto& scenario : request.what_if) {
        core::ProblemOptions with_scenario =
            request_problem_options(model, request);
        for (topo::LinkId id : scenario) with_scenario.failed.insert(id);
        problems.emplace_back(*model.graph, *model.task, *model.loads,
                              with_scenario);
      }
      break;
    case RequestKind::kThetaSweep:
      for (double theta : request.thetas) {
        core::ProblemOptions at_theta =
            request_problem_options(model, request);
        at_theta.theta = theta;
        problems.emplace_back(*model.graph, *model.task, *model.loads,
                              at_theta);
      }
      break;
  }
  return problems.size() - first;
}

opt::SolverOptions request_solver_options(const opt::SolverOptions& base,
                                          const Request& request,
                                          ServeClock::time_point deadline,
                                          const obs::Clock* clock) {
  opt::SolverOptions solver = base;
  if (request.deadline_ms > 0 || request.iteration_budget > 0) {
    // Per-request cancellation hook: polled between solver iterations on
    // whichever worker runs this request's problems.
    const std::uint32_t budget = request.iteration_budget;
    solver.should_stop = [deadline, budget, clock](int iterations) {
      if (budget > 0 && iterations >= static_cast<int>(budget)) return true;
      return deadline != ServeClock::time_point::max() &&
             clock->now() >= deadline;
    };
  }
  return solver;
}

AssembledResponse assemble_response(
    const Request& request, std::span<core::PlacementSolution> slice) {
  AssembledResponse out;
  Response& response = out.response;
  response.id = request.id;
  response.kind = request.kind;

  for (const core::PlacementSolution& solution : slice) {
    if (solution.status == opt::SolveStatus::kCancelled) {
      out.cancelled = true;
      out.cancelled_iterations = solution.iterations;
    }
  }

  switch (request.kind) {
    case RequestKind::kSolve:
    case RequestKind::kWhatIfBatch:
      response.solutions.assign(std::move_iterator(slice.begin()),
                                std::move_iterator(slice.end()));
      break;
    case RequestKind::kThetaSweep:
      response.sweep.reserve(slice.size());
      for (std::size_t j = 0; j < slice.size(); ++j) {
        const core::PlacementSolution& solution = slice[j];
        response.sweep.push_back(ThetaPoint{
            request.thetas[j], solution.total_utility, solution.lambda,
            static_cast<std::uint32_t>(solution.active_monitors.size())});
      }
      break;
    case RequestKind::kAccuracyReport: {
      const core::PlacementSolution& solution = slice[0];
      response.accuracy.reserve(solution.per_od.size());
      for (const core::OdReport& od : solution.per_od) {
        response.accuracy.push_back(
            OdAccuracy{od.od, od.expected_packets, od.rho_approx,
                       od.rho_exact, od.predicted_accuracy});
      }
      response.solutions.push_back(std::move(slice[0]));
      break;
    }
  }

  if (out.cancelled) {
    response.status = ResponseStatus::kDeadlineExpired;
    response.error =
        request.iteration_budget > 0 &&
                out.cancelled_iterations >=
                    static_cast<int>(request.iteration_budget)
            ? "iteration budget exhausted mid-solve"
            : "deadline expired mid-solve";
  } else {
    response.status = ResponseStatus::kOk;
  }
  return out;
}

}  // namespace netmon::serve
