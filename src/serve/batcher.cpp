#include "serve/batcher.hpp"

#include "util/error.hpp"

namespace netmon::serve {

Batcher::Batcher(RequestQueue& queue, BatchPolicy policy)
    : queue_(queue), policy_(policy) {
  NETMON_REQUIRE(policy_.max_batch >= 1, "max_batch must be >= 1");
  NETMON_REQUIRE(policy_.linger.count() >= 0, "linger must be >= 0");
}

std::vector<QueuedRequest> Batcher::collect(std::chrono::milliseconds poll) {
  std::vector<QueuedRequest> batch;
  QueuedRequest first;
  if (!queue_.pop_until(first, ServeClock::now() + poll)) return batch;
  batch.push_back(std::move(first));

  // Fill greedily from what is already queued, then linger for stragglers.
  const ServeClock::time_point linger_until =
      ServeClock::now() + policy_.linger;
  while (batch.size() < policy_.max_batch) {
    QueuedRequest next;
    if (queue_.try_pop(next)) {
      batch.push_back(std::move(next));
      continue;
    }
    if (policy_.linger.count() == 0 ||
        !queue_.pop_until(next, linger_until))
      break;
    batch.push_back(std::move(next));
  }
  return batch;
}

}  // namespace netmon::serve
