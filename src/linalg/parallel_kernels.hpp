// Row-sharded CSR kernels on the runtime thread pool.
//
// Sharding is by output row: each chunk of rows is accumulated with
// exactly the same left-to-right per-row loop as the serial kernels in
// sparse.hpp, and no two chunks touch the same output slot. The results
// are therefore bit-identical to the serial kernels at every thread
// count — parallelism here changes throughput only, never a single bit
// of output. The transpose product reuses the same fact: a materialized
// transpose's rows hold their entries in ascending original-row order
// (SparseCsr::transpose's counting sort), so spmv over A^T accumulates
// each output slot in the same order as spmv_t's serial scatter over A
// and produces the identical doubles.
#pragma once

#include <span>

#include "linalg/sparse.hpp"
#include "runtime/thread_pool.hpp"

namespace netmon::linalg {

/// y = A x, rows sharded across `pool`. Bit-identical to spmv(a, x, y).
void spmv_parallel(const SparseCsr& a, std::span<const double> x,
                   std::span<double> y, runtime::ThreadPool& pool);

/// y = A^T x computed as spmv over the *materialized transpose* `at`
/// (i.e. at = a.transpose()), rows of A^T sharded across `pool`.
/// Bit-identical to spmv_t(a, x, y) — see the header comment.
void spmv_t_parallel(const SparseCsr& at, std::span<const double> x,
                     std::span<double> y, runtime::ThreadPool& pool);

}  // namespace netmon::linalg
