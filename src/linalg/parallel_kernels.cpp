#include "linalg/parallel_kernels.hpp"

#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::linalg {

void spmv_parallel(const SparseCsr& a, std::span<const double> x,
                   std::span<double> y, runtime::ThreadPool& pool) {
  NETMON_REQUIRE(y.size() == a.rows(), "spmv output size mismatch");
  NETMON_REQUIRE(x.size() >= a.cols(), "spmv input too short");
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  // Same per-row loop as the serial spmv; rows are disjoint output slots,
  // so any sharding of [0, rows) yields bit-identical y.
  runtime::parallel_for(pool, a.rows(), [&](std::size_t r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
      acc += vals[i] * x[cols[i]];
    y[r] = acc;
  });
}

void spmv_t_parallel(const SparseCsr& at, std::span<const double> x,
                     std::span<double> y, runtime::ThreadPool& pool) {
  spmv_parallel(at, x, y, pool);
}

}  // namespace netmon::linalg
