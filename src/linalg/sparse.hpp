// Flat compressed-sparse-row matrices — the one sparse representation
// shared by every layer (routing matrix R, objective rows, estimator
// systems).
//
// Data layout: three contiguous arenas. `row_ptr` (n_rows+1 offsets)
// delimits each row's slice of `col_idx` (32-bit columns) and `values`
// (doubles). Iterating a row touches two adjacent cache streams instead
// of chasing a vector-of-vectors; the whole matrix is two allocations.
// A transpose() of the same type doubles as the CSC view for column
// iteration. The kernels (spmv / spmv_t / row_dot) never allocate and
// accumulate strictly left to right within a row, so they are
// bit-compatible with the nested pair-list loops they replaced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace netmon::linalg {

/// Flat CSR sparse matrix with non-owning row views.
class SparseCsr {
 public:
  /// Column index type: 32 bits halves the index arena versus size_t.
  /// Matches topo::LinkId, so routing rows store links without casts.
  using Index = std::uint32_t;

  /// Non-owning view of one row. Iteration yields (column, value) pairs
  /// by value, so range-for structured bindings work exactly as they did
  /// over the old vector<pair> rows.
  class RowView {
   public:
    class Iterator {
     public:
      using value_type = std::pair<Index, double>;
      using difference_type = std::ptrdiff_t;

      Iterator() = default;
      Iterator(const Index* col, const double* val) : col_(col), val_(val) {}

      value_type operator*() const { return {*col_, *val_}; }
      Iterator& operator++() {
        ++col_;
        ++val_;
        return *this;
      }
      Iterator operator++(int) {
        Iterator old = *this;
        ++*this;
        return old;
      }
      friend bool operator==(const Iterator& a, const Iterator& b) {
        return a.col_ == b.col_;
      }

     private:
      const Index* col_ = nullptr;
      const double* val_ = nullptr;
    };

    RowView() = default;
    RowView(const Index* cols, const double* values, std::size_t size)
        : cols_(cols), values_(values), size_(size) {}

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }
    Iterator begin() const { return {cols_, values_}; }
    Iterator end() const { return {cols_ + size_, values_ + size_}; }
    std::pair<Index, double> operator[](std::size_t i) const {
      return {cols_[i], values_[i]};
    }

    /// The raw column/value slices (e.g. for binary search on columns).
    std::span<const Index> cols() const noexcept { return {cols_, size_}; }
    std::span<const double> values() const noexcept {
      return {values_, size_};
    }

   private:
    const Index* cols_ = nullptr;
    const double* values_ = nullptr;
    std::size_t size_ = 0;
  };

  /// Empty 0 x 0 matrix.
  SparseCsr() = default;

  std::size_t rows() const noexcept { return row_ptr_.size() - 1; }
  std::size_t cols() const noexcept { return n_cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// Row i as a view; i must be < rows().
  RowView row(std::size_t i) const {
    const std::size_t begin = row_ptr_[i];
    return {col_idx_.data() + begin, values_.data() + begin,
            row_ptr_[i + 1] - begin};
  }

  /// The raw arenas (read-only; for kernels and serialization).
  std::span<const std::size_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const Index> col_idx() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }

  /// The transposed matrix (the CSC view of this one). Entries of each
  /// transposed row come out sorted by column because rows are scanned
  /// in order.
  SparseCsr transpose() const;

  /// Builds from a vector-of-pair-lists (any pair-like with integral
  /// first, double second). Column order within a row is preserved.
  template <typename Rows>
  static SparseCsr from_rows(std::size_t n_cols, const Rows& rows);

 private:
  friend class CsrBuilder;

  std::size_t n_cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<Index> col_idx_;
  std::vector<double> values_;
};

/// Incremental row-major builder: push() entries, finish_row() after each
/// row (empty rows are fine), then build().
class CsrBuilder {
 public:
  explicit CsrBuilder(std::size_t n_cols);

  /// Pre-sizes the arenas (optional; avoids regrowth for known shapes).
  CsrBuilder& reserve(std::size_t rows, std::size_t nnz);

  /// Appends one entry to the current row. Throws if col >= n_cols.
  void push(std::size_t col, double value);

  /// Closes the current row and starts the next.
  void finish_row();

  /// Finalizes; the builder is left empty.
  SparseCsr build();

 private:
  SparseCsr matrix_;
};

template <typename Rows>
SparseCsr SparseCsr::from_rows(std::size_t n_cols, const Rows& rows) {
  std::size_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  CsrBuilder builder(n_cols);
  builder.reserve(rows.size(), nnz);
  for (const auto& row : rows) {
    for (const auto& [col, value] : row)
      builder.push(static_cast<std::size_t>(col), value);
    builder.finish_row();
  }
  return builder.build();
}

/// y = A x. Requires y.size() == rows and x.size() >= cols. Each y_i is
/// accumulated left to right over row i.
void spmv(const SparseCsr& a, std::span<const double> x, std::span<double> y);

/// y = A^T x (scatter over the CSR itself — no transpose needed).
/// Requires y.size() == cols and x.size() >= rows. Contributions land in
/// ascending row order, matching a per-column left-to-right sum.
void spmv_t(const SparseCsr& a, std::span<const double> x,
            std::span<double> y);

/// Inner product of row `i` with x (x.size() >= cols), left to right.
double row_dot(const SparseCsr& a, std::size_t i, std::span<const double> x);

/// Fused transposed scatter: one traversal of `a` accumulating BOTH
///   g = A^T w   and   h_j = sum_r a_{r,j}^2 * q_r
/// i.e. the gradient scatter and the Hessian diagonal of a separable
/// objective (w = M'(x), q = M''(x)) from a single pass over the arenas.
/// Requires g.size() == h.size() == cols, w.size() >= rows, q.size() >=
/// rows. Contributions land in ascending row order, so g is bit-identical
/// to spmv_t(a, w, g).
void spmv_t_grad_hess(const SparseCsr& a, std::span<const double> w,
                      std::span<const double> q, std::span<double> g,
                      std::span<double> h);

/// y += delta * row `i` of `a`, scattered by column. On a transposed
/// (CSC-view) matrix this is the column update the solver uses to patch
/// the inner products rho = R p when a single coordinate p_i changes.
void row_axpy(const SparseCsr& a, std::size_t i, double delta,
              std::span<double> y);

}  // namespace netmon::linalg
