// Reusable scratch buffers for the evaluation hot path.
//
// Conventions: `rows_*` slots are term-count sized (one entry per sparse
// row, e.g. the inner products (Rp)_k); `cols_*` slots are dimension
// sized (one entry per variable). Objective implementations may only use
// `rows_*`; the `cols_*` slots belong to the driver (solver, line
// search), so a single workspace can be threaded through nested calls
// without aliasing. Buffers grow on first use and never shrink, making
// steady-state evaluation allocation-free. A workspace must not be
// shared between threads.
#pragma once

#include <cstddef>
#include <span>

#include "util/page_alloc.hpp"

namespace netmon::linalg {

class EvalWorkspace {
 public:
  /// Each accessor returns a span of exactly `n` doubles backed by the
  /// named slot; contents are unspecified on entry. rows_d exists for the
  /// fused evaluation path, which needs four term-sized buffers at once
  /// (inner products plus M / M' / M'').
  std::span<double> rows_a(std::size_t n) { return fit(rows_a_, n); }
  std::span<double> rows_b(std::size_t n) { return fit(rows_b_, n); }
  std::span<double> rows_c(std::size_t n) { return fit(rows_c_, n); }
  std::span<double> rows_d(std::size_t n) { return fit(rows_d_, n); }
  std::span<double> cols_a(std::size_t n) { return fit(cols_a_, n); }
  std::span<double> cols_b(std::size_t n) { return fit(cols_b_, n); }

 private:
  // Page-backed buffers: the fused path streams all four rows_* arrays
  // per evaluation, and dedicated mappings keep that streaming fast on
  // term counts past L1 (see util/page_alloc.hpp).
  static std::span<double> fit(util::PageVector<double>& buf,
                               std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  util::PageVector<double> rows_a_, rows_b_, rows_c_, rows_d_;
  util::PageVector<double> cols_a_, cols_b_;
};

}  // namespace netmon::linalg
