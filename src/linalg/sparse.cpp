#include "linalg/sparse.hpp"

#include "util/error.hpp"

namespace netmon::linalg {

SparseCsr SparseCsr::transpose() const {
  SparseCsr t;
  t.n_cols_ = rows();
  t.row_ptr_.assign(n_cols_ + 1, 0);
  for (const Index c : col_idx_) ++t.row_ptr_[c + 1];
  for (std::size_t i = 1; i <= n_cols_; ++i)
    t.row_ptr_[i] += t.row_ptr_[i - 1];
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      const std::size_t pos = cursor[col_idx_[i]]++;
      t.col_idx_[pos] = static_cast<Index>(r);
      t.values_[pos] = values_[i];
    }
  }
  return t;
}

CsrBuilder::CsrBuilder(std::size_t n_cols) { matrix_.n_cols_ = n_cols; }

CsrBuilder& CsrBuilder::reserve(std::size_t rows, std::size_t nnz) {
  matrix_.row_ptr_.reserve(rows + 1);
  matrix_.col_idx_.reserve(nnz);
  matrix_.values_.reserve(nnz);
  return *this;
}

void CsrBuilder::push(std::size_t col, double value) {
  NETMON_REQUIRE(col < matrix_.n_cols_, "sparse column out of range");
  matrix_.col_idx_.push_back(static_cast<SparseCsr::Index>(col));
  matrix_.values_.push_back(value);
}

void CsrBuilder::finish_row() {
  matrix_.row_ptr_.push_back(matrix_.col_idx_.size());
}

SparseCsr CsrBuilder::build() {
  NETMON_REQUIRE(matrix_.row_ptr_.back() == matrix_.col_idx_.size(),
                 "finish_row() must close the last row before build()");
  SparseCsr out = std::move(matrix_);
  matrix_ = SparseCsr{};
  return out;
}

void spmv(const SparseCsr& a, std::span<const double> x,
          std::span<double> y) {
  NETMON_REQUIRE(y.size() == a.rows(), "spmv output size mismatch");
  NETMON_REQUIRE(x.size() >= a.cols(), "spmv input too short");
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
      acc += vals[i] * x[cols[i]];
    y[r] = acc;
  }
}

void spmv_t(const SparseCsr& a, std::span<const double> x,
            std::span<double> y) {
  NETMON_REQUIRE(y.size() == a.cols(), "spmv_t output size mismatch");
  NETMON_REQUIRE(x.size() >= a.rows(), "spmv_t input too short");
  for (double& v : y) v = 0.0;
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i)
      y[cols[i]] += vals[i] * xr;
  }
}

void spmv_t_grad_hess(const SparseCsr& a, std::span<const double> w,
                      std::span<const double> q, std::span<double> g,
                      std::span<double> h) {
  NETMON_REQUIRE(g.size() == a.cols() && h.size() == a.cols(),
                 "spmv_t_grad_hess output size mismatch");
  NETMON_REQUIRE(w.size() >= a.rows() && q.size() >= a.rows(),
                 "spmv_t_grad_hess input too short");
  for (double& v : g) v = 0.0;
  for (double& v : h) v = 0.0;
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double wr = w[r];
    const double qr = q[r];
    for (std::size_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
      const double v = vals[i];
      g[cols[i]] += v * wr;
      h[cols[i]] += v * v * qr;
    }
  }
}

void row_axpy(const SparseCsr& a, std::size_t i, double delta,
              std::span<double> y) {
  NETMON_REQUIRE(i < a.rows(), "row_axpy row out of range");
  NETMON_REQUIRE(y.size() >= a.cols(), "row_axpy output too short");
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  for (std::size_t j = row_ptr[i]; j < row_ptr[i + 1]; ++j)
    y[cols[j]] += vals[j] * delta;
}

double row_dot(const SparseCsr& a, std::size_t i, std::span<const double> x) {
  NETMON_REQUIRE(i < a.rows(), "row_dot row out of range");
  NETMON_REQUIRE(x.size() >= a.cols(), "row_dot input too short");
  const std::span<const std::size_t> row_ptr = a.row_ptr();
  const std::span<const SparseCsr::Index> cols = a.col_idx();
  const std::span<const double> vals = a.values();
  double acc = 0.0;
  for (std::size_t j = row_ptr[i]; j < row_ptr[i + 1]; ++j)
    acc += vals[j] * x[cols[j]];
  return acc;
}

}  // namespace netmon::linalg
