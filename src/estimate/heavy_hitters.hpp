// Heavy-hitter identification from packet-sampled flow records.
//
// Operators want the flows larger than a threshold (accounting, DDoS
// triage). Under packet sampling a flow of true size k yields
// Binomial(k, p) sampled packets; a flow is reported as a heavy hitter
// when its sampled count makes a sub-threshold true size statistically
// implausible. The confidence of each report is
//   1 - P[Binomial(threshold, p) >= observed],
// i.e. one minus the false-positive probability of a flow sitting exactly
// at the threshold.
#pragma once

#include <cstdint>
#include <vector>

#include "netflow/record.hpp"

namespace netmon::estimate {

/// One reported heavy hitter.
struct HeavyHitter {
  traffic::FlowKey key;
  /// Unbiased size estimate, sampled/p.
  double estimated_packets = 0.0;
  /// 1 - P(a threshold-sized flow shows >= this many samples).
  double confidence = 0.0;
  /// The record's sampled packet count.
  std::uint64_t sampled_packets = 0;
};

/// Upper tail of the binomial: P[Binomial(n, p) >= j].
double binomial_upper_tail(std::uint64_t n, double p, std::uint64_t j);

/// Scans records for flows whose true size plausibly exceeds
/// `threshold_packets`, keeping those with confidence >= min_confidence.
/// Results are sorted by estimated size, largest first.
std::vector<HeavyHitter> heavy_hitters(const netflow::RecordBatch& records,
                                       double sampling_rate,
                                       std::uint64_t threshold_packets,
                                       double min_confidence = 0.95);

}  // namespace netmon::estimate
