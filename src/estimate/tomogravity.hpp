// Traffic-matrix estimation from link loads (tomogravity).
//
// The placement problem needs per-link loads and OD sizes; operators
// usually have only SNMP link counters. The tomogravity method (Zhang et
// al., paper ref. [15]) reconstructs the OD demand matrix from link loads
// by starting from the gravity-model prior and fitting it to the observed
// loads. We implement the iterative-proportional-fitting variant: each
// pass rescales the demands crossing every link so the modelled load
// matches the observation, which converges to a fixed point that honours
// the loads while staying close (in ratio) to the prior.
#pragma once

#include "routing/routing_matrix.hpp"
#include "topo/graph.hpp"
#include "traffic/demand.hpp"
#include "traffic/link_load.hpp"

namespace netmon::estimate {

/// Tomogravity knobs.
struct TomogravityOptions {
  /// Maximum IPF sweeps over all links.
  int max_iterations = 300;
  /// Stop when the worst relative link-load mismatch drops below this.
  double tolerance = 1e-8;
  /// Demands whose estimate falls below this rate (pkt/s) are dropped
  /// from the result.
  double min_rate = 1e-9;
};

/// Result of a reconstruction.
struct TomogravityResult {
  /// Estimated OD demands (ordered pairs of positive-mass nodes).
  traffic::TrafficMatrix matrix;
  /// IPF sweeps executed.
  int iterations = 0;
  /// Worst relative link-load mismatch at termination, over links the
  /// model can explain (links on some positive-mass OD path).
  double residual = 0.0;
};

/// Reconstructs the traffic matrix of the positive-mass nodes from
/// observed per-link loads (pkt/s), assuming single shortest-path routing
/// under the graph's IGP weights with `failed` links down.
///
/// Loads contributed by traffic the model cannot represent (e.g. an
/// external customer with zero gravity mass) surface as residual.
TomogravityResult tomogravity(const topo::Graph& graph,
                              const traffic::LinkLoads& observed,
                              const routing::LinkSet& failed = {},
                              const TomogravityOptions& options = {});

/// Mean relative error between an estimated and a reference traffic
/// matrix over the reference's demands above `min_rate`:
/// mean_od |est - ref| / ref. Diagnostic used by tests and benches.
double matrix_relative_error(const traffic::TrafficMatrix& estimate,
                             const traffic::TrafficMatrix& reference,
                             double min_rate = 1.0);

}  // namespace netmon::estimate
