#include "estimate/heavy_hitters.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::estimate {

double binomial_upper_tail(std::uint64_t n, double p, std::uint64_t j) {
  NETMON_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  if (j == 0) return 1.0;
  if (j > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  const double mean = static_cast<double>(n) * p;
  const double var = mean * (1.0 - p);
  if (n > 50000 && var > 25.0) {
    // Normal approximation with continuity correction.
    const double z = (static_cast<double>(j) - 0.5 - mean) / std::sqrt(var);
    return 0.5 * std::erfc(z / std::sqrt(2.0));
  }

  // Exact: sum pmf from j upward (iterative ratio, stable in log-free
  // form once the first term is computed in log space).
  const double nd = static_cast<double>(n);
  const double jd = static_cast<double>(j);
  double log_term = std::lgamma(nd + 1.0) - std::lgamma(jd + 1.0) -
                    std::lgamma(nd - jd + 1.0) + jd * std::log(p) +
                    (nd - jd) * std::log1p(-p);
  double term = std::exp(log_term);
  double sum = 0.0;
  for (std::uint64_t i = j; i <= n; ++i) {
    sum += term;
    if (term < 1e-18 * (sum + 1e-300)) break;
    // pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p)
    term *= (nd - static_cast<double>(i)) /
            (static_cast<double>(i) + 1.0) * p / (1.0 - p);
  }
  return std::min(1.0, sum);
}

std::vector<HeavyHitter> heavy_hitters(const netflow::RecordBatch& records,
                                       double sampling_rate,
                                       std::uint64_t threshold_packets,
                                       double min_confidence) {
  NETMON_REQUIRE(sampling_rate > 0.0 && sampling_rate <= 1.0,
                 "sampling rate out of (0,1]");
  NETMON_REQUIRE(threshold_packets >= 1, "threshold must be >= 1 packet");
  NETMON_REQUIRE(min_confidence >= 0.0 && min_confidence <= 1.0,
                 "confidence out of [0,1]");

  std::vector<HeavyHitter> hitters;
  for (const netflow::FlowRecord& record : records) {
    if (record.sampled_packets == 0) continue;
    const double false_positive = binomial_upper_tail(
        threshold_packets, sampling_rate, record.sampled_packets);
    const double confidence = 1.0 - false_positive;
    if (confidence < min_confidence) continue;
    HeavyHitter hitter;
    hitter.key = record.key;
    hitter.sampled_packets = record.sampled_packets;
    hitter.estimated_packets =
        static_cast<double>(record.sampled_packets) / sampling_rate;
    hitter.confidence = confidence;
    hitters.push_back(hitter);
  }
  std::sort(hitters.begin(), hitters.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.estimated_packets > b.estimated_packets;
            });
  return hitters;
}

}  // namespace netmon::estimate
