#include "estimate/accuracy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::estimate {

double estimate_size(std::uint64_t sampled, double rho) {
  NETMON_REQUIRE(rho > 0.0, "effective sampling rate must be positive");
  return static_cast<double>(sampled) / rho;
}

double squared_relative_error(double estimate, double actual) {
  NETMON_REQUIRE(actual > 0.0, "actual size must be positive");
  const double rel = (estimate - actual) / actual;
  return rel * rel;
}

double expected_sre(double inv_mean_size, double rho) {
  NETMON_REQUIRE(rho > 0.0, "effective sampling rate must be positive");
  NETMON_REQUIRE(inv_mean_size >= 0.0, "E[1/S] must be non-negative");
  return inv_mean_size * (1.0 - rho) / rho;
}

double accuracy(double estimate, double actual) {
  NETMON_REQUIRE(actual > 0.0, "actual size must be positive");
  return 1.0 - std::abs(estimate - actual) / actual;
}

double estimator_variance(std::uint64_t actual, double rho) {
  NETMON_REQUIRE(rho > 0.0, "effective sampling rate must be positive");
  return static_cast<double>(actual) * (1.0 - rho) / rho;
}

double confidence_halfwidth_95(std::uint64_t actual, double rho) {
  return 1.96 * std::sqrt(estimator_variance(actual, rho));
}

std::vector<double> accuracies(
    const std::vector<sampling::OdSampleCount>& counts,
    const std::vector<double>& rhos) {
  NETMON_REQUIRE(counts.size() == rhos.size(),
                 "counts and rates must be aligned");
  std::vector<double> out(counts.size(), 0.0);
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (rhos[k] <= 0.0 || counts[k].actual_packets == 0) continue;
    const double est = estimate_size(counts[k].sampled_packets, rhos[k]);
    out[k] = accuracy(est, static_cast<double>(counts[k].actual_packets));
  }
  return out;
}

}  // namespace netmon::estimate
