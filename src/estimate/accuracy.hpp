// Estimation of OD sizes from sampled counts, and the paper's error /
// accuracy metrics (§IV-C and §V-B).
#pragma once

#include <cstdint>
#include <vector>

#include "sampling/simulation.hpp"

namespace netmon::estimate {

/// Unbiased OD-size estimate: X / rho. Requires rho > 0.
double estimate_size(std::uint64_t sampled, double rho);

/// Squared relative error of an estimate against the actual size
/// (paper eq. 9). Requires actual > 0.
double squared_relative_error(double estimate, double actual);

/// Expected squared relative error of the binomial estimator at effective
/// rate rho, for an OD pair with E[1/S] = inv_mean_size (paper §IV-C):
/// E[SRE] = E[1/S] * (1 - rho)/rho. Requires rho > 0.
double expected_sre(double inv_mean_size, double rho);

/// The paper's §V-B accuracy: 1 - |X/rho - S| / S.
/// Can be negative when the estimate is off by more than 100%.
double accuracy(double estimate, double actual);

/// Variance of the estimator X/rho with X ~ Binomial(S, rho):
/// S (1-rho)/rho. Requires rho > 0.
double estimator_variance(std::uint64_t actual, double rho);

/// Normal-approximation confidence half-width at ~95% (1.96 sigma) for
/// the size estimate.
double confidence_halfwidth_95(std::uint64_t actual, double rho);

/// Turns raw per-OD sample counts into accuracies, given each OD's
/// effective sampling rate. ODs with rho == 0 get accuracy 0.
std::vector<double> accuracies(
    const std::vector<sampling::OdSampleCount>& counts,
    const std::vector<double>& rhos);

}  // namespace netmon::estimate
