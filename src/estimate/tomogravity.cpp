#include "estimate/tomogravity.hpp"

#include <algorithm>
#include <cmath>

#include "traffic/gravity.hpp"
#include "util/error.hpp"

namespace netmon::estimate {

TomogravityResult tomogravity(const topo::Graph& graph,
                              const traffic::LinkLoads& observed,
                              const routing::LinkSet& failed,
                              const TomogravityOptions& options) {
  NETMON_REQUIRE(observed.size() == graph.link_count(),
                 "one observed load per link required");
  NETMON_REQUIRE(options.max_iterations > 0, "need >= 1 iteration");

  // Gravity prior, scaled to the total observed ingress volume. The scale
  // is refined by IPF anyway; seeding with the mean link load keeps the
  // first sweeps well conditioned.
  double total_observed = 0.0;
  for (double y : observed) total_observed += y;
  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = std::max(1.0, total_observed);
  traffic::TrafficMatrix demands = traffic::gravity_matrix(graph, gravity);

  // Routing of every candidate demand.
  std::vector<routing::OdPair> ods;
  ods.reserve(demands.size());
  for (const traffic::Demand& d : demands) ods.push_back(d.od);
  const routing::RoutingMatrix matrix =
      routing::RoutingMatrix::single_path(graph, std::move(ods), failed);

  // Links the model can explain.
  const std::vector<topo::LinkId> links = matrix.links_used();

  // IPF iterates over a contiguous per-OD rate array (written back into
  // the demand structs at the end); per-link modelled volume is one
  // row_dot over the CSC view of R.
  std::vector<double> rate(demands.size());
  for (std::size_t k = 0; k < demands.size(); ++k)
    rate[k] = demands[k].pkt_per_sec;
  const linalg::SparseCsr& csc = matrix.csc();

  // Rescale the prior globally so the modelled total link volume matches
  // the observed one: this preserves the gravity *shape* (a consistent
  // gravity ground truth is then recovered exactly) and leaves IPF to fix
  // only the structure the loads actually pin down.
  {
    double modelled_total = 0.0, observed_total = 0.0;
    for (topo::LinkId link : links) {
      modelled_total += linalg::row_dot(csc, link, rate);
      observed_total += observed[link];
    }
    if (modelled_total > 0.0 && observed_total > 0.0) {
      const double scale = observed_total / modelled_total;
      for (double& r : rate) r *= scale;
    }
  }

  TomogravityResult result;
  auto recompute_link = [&](topo::LinkId link) {
    return linalg::row_dot(csc, link, rate);
  };

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    result.iterations = iter;
    double worst = 0.0;
    for (topo::LinkId link : links) {
      const double current = recompute_link(link);
      const double target = observed[link];
      if (current <= 0.0) {
        // Nothing crosses this link in the current estimate; if the
        // observation is zero too, the constraint is satisfied.
        if (target > 0.0) worst = std::max(worst, 1.0);
        continue;
      }
      const double factor = target / current;
      for (const linalg::SparseCsr::Index k : csc.row(link).cols())
        rate[k] *= factor;
      worst = std::max(worst,
                       std::abs(current - target) / std::max(1.0, target));
    }
    result.residual = worst;
    if (worst <= options.tolerance) break;
  }

  // Final residual over the explainable links (after the last sweep the
  // early links may have drifted again; report the true state).
  double worst = 0.0;
  for (topo::LinkId link : links) {
    const double current = recompute_link(link);
    worst = std::max(worst, std::abs(current - observed[link]) /
                                std::max(1.0, observed[link]));
  }
  result.residual = worst;

  // Write the fitted rates back and drop vanished demands.
  for (std::size_t k = 0; k < demands.size(); ++k)
    demands[k].pkt_per_sec = rate[k];
  traffic::TrafficMatrix cleaned;
  for (const traffic::Demand& d : demands) {
    if (d.pkt_per_sec >= options.min_rate) cleaned.push_back(d);
  }
  result.matrix = std::move(cleaned);
  return result;
}

double matrix_relative_error(const traffic::TrafficMatrix& estimate,
                             const traffic::TrafficMatrix& reference,
                             double min_rate) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const traffic::Demand& ref : reference) {
    if (ref.pkt_per_sec < min_rate) continue;
    const double est = traffic::demand_for(estimate, ref.od);
    sum += std::abs(est - ref.pkt_per_sec) / ref.pkt_per_sec;
    ++n;
  }
  NETMON_REQUIRE(n > 0, "reference matrix has no demands above min_rate");
  return sum / static_cast<double>(n);
}

}  // namespace netmon::estimate
