#include "estimate/flow_inversion.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/sparse.hpp"
#include "util/error.hpp"

namespace netmon::estimate {

double detection_probability(std::uint64_t k, double p) {
  NETMON_REQUIRE(p >= 0.0 && p <= 1.0, "sampling probability out of [0,1]");
  if (k == 0 || p == 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  return -std::expm1(static_cast<double>(k) * std::log1p(-p));
}

namespace {

// Binomial pmf B(j; k, p) computed in log space (stable for large k).
double binom_pmf(std::size_t j, std::size_t k, double p) {
  if (j > k) return 0.0;
  if (p <= 0.0) return j == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return j == k ? 1.0 : 0.0;
  const double kd = static_cast<double>(k);
  const double jd = static_cast<double>(j);
  const double log_choose = std::lgamma(kd + 1.0) - std::lgamma(jd + 1.0) -
                            std::lgamma(kd - jd + 1.0);
  return std::exp(log_choose + jd * std::log(p) +
                  (kd - jd) * std::log1p(-p));
}

}  // namespace

FlowInversionResult invert_flow_sizes(
    const std::vector<std::uint64_t>& observed, double p,
    const FlowInversionOptions& options) {
  NETMON_REQUIRE(p > 0.0 && p <= 1.0,
                 "sampling probability must lie in (0,1]");
  NETMON_REQUIRE(!observed.empty(), "observed histogram is empty");
  NETMON_REQUIRE(options.max_size >= observed.size(),
                 "max_size must cover the largest observed sampled size");

  const std::size_t J = observed.size();   // sampled sizes 1..J
  const std::size_t K = options.max_size;  // original sizes 1..K

  // A[j][k] = P(sampled = j | original = k), j >= 1. Upper-triangular-ish
  // (j <= k), so it is stored sparse: row j holds columns k = j..K.
  std::vector<double> detect(K, 0.0);  // d_k = P(sampled >= 1 | k)
  for (std::size_t k = 1; k <= K; ++k)
    detect[k - 1] = detection_probability(k, p);
  linalg::CsrBuilder builder(K);
  builder.reserve(J, J * K - (J * (J - 1)) / 2);
  for (std::size_t j = 1; j <= J; ++j) {
    for (std::size_t k = j; k <= K; ++k)
      builder.push(k - 1, binom_pmf(j, k, p));
    builder.finish_row();
  }
  const linalg::SparseCsr A = builder.build();

  double total_observed = 0.0;
  for (std::uint64_t m : observed) total_observed += static_cast<double>(m);
  NETMON_REQUIRE(total_observed > 0.0, "no observed flows to invert");

  // Initial estimate: spread detected flows uniformly, inflated by the
  // average detection probability.
  std::vector<double> n(K, total_observed / static_cast<double>(K));

  FlowInversionResult result;
  // All EM buffers pre-sized once; the loop body allocates nothing.
  std::vector<double> model(J, 0.0);
  std::vector<double> q(J, 0.0);
  std::vector<double> ratio(K, 0.0);
  for (int iter = 1; iter <= options.em_iterations; ++iter) {
    result.iterations = iter;
    // model = A n  (one spmv over the sparse pmf matrix).
    linalg::spmv(A, n, model);
    // Multiplicative (zero-truncated EM) update:
    //   n_k <- n_k * sum_j A_jk m_j / model_j   /   d_k,
    // computed as ratio = A^T q with q_j = m_j / model_j (guarded).
    for (std::size_t j = 0; j < J; ++j) {
      q[j] = (model[j] > 0.0 && observed[j] > 0)
                 ? static_cast<double>(observed[j]) / model[j]
                 : 0.0;
    }
    linalg::spmv_t(A, q, ratio);
    double change = 0.0, scale = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      if (n[k] <= 0.0 || detect[k] <= 0.0) continue;
      const double updated = n[k] * ratio[k] / detect[k];
      change += std::abs(updated - n[k]);
      scale += std::abs(n[k]);
      n[k] = updated;
    }
    if (scale > 0.0 && change / scale < options.tolerance) break;
  }

  result.counts = std::move(n);
  for (std::size_t k = 0; k < K; ++k) {
    result.total_flows += result.counts[k];
    result.total_packets += static_cast<double>(k + 1) * result.counts[k];
  }
  return result;
}

std::vector<std::uint64_t> sampled_size_histogram(
    const std::vector<std::uint64_t>& sampled_sizes,
    std::size_t max_observed) {
  NETMON_REQUIRE(max_observed >= 1, "histogram needs >= 1 bin");
  std::vector<std::uint64_t> histogram(max_observed, 0);
  for (std::uint64_t size : sampled_sizes) {
    if (size == 0) continue;  // undetected flows produce no record
    const std::size_t bin = std::min<std::uint64_t>(size, max_observed);
    histogram[bin - 1] += 1;
  }
  return histogram;
}

}  // namespace netmon::estimate
