// Inversion of flow statistics from sampled packet streams.
//
// Packet sampling distorts flow-level statistics: a flow of k packets is
// seen only with probability 1-(1-p)^k, and when seen, its sampled size
// is Binomial(k, p) conditioned on being >= 1. Recovering the original
// flow-size distribution from the sampled one is the problem of the
// paper's refs [12]-[14] (Duffield et al., Hohn & Veitch). We implement
// the standard zero-truncated-binomial-mixture EM (a Richardson-Lucy
// multiplicative scheme): maximum-likelihood estimates of the original
// per-size flow counts, including the flows that were missed entirely.
#pragma once

#include <cstdint>
#include <vector>

namespace netmon::estimate {

/// Probability that a k-packet flow is detected under i.i.d. packet
/// sampling with probability p (>= 1 packet sampled).
double detection_probability(std::uint64_t k, double p);

/// EM configuration.
struct FlowInversionOptions {
  /// Largest original flow size considered (the support of n_k).
  std::size_t max_size = 256;
  /// EM iterations (each is O(max_size * max_observed)).
  int em_iterations = 400;
  /// Stop early when the relative change of the estimate drops below
  /// this.
  double tolerance = 1e-10;
};

/// EM output.
struct FlowInversionResult {
  /// counts[k-1] = estimated number of original flows with k packets.
  std::vector<double> counts;
  /// Estimated number of original flows (detected + missed).
  double total_flows = 0.0;
  /// Estimated number of original packets (sum k * n_k).
  double total_packets = 0.0;
  /// EM iterations executed.
  int iterations = 0;
};

/// Inverts the observed sampled-size histogram.
///
/// `observed[j-1]` = number of exported flow records whose sampled packet
/// count is j (j >= 1). `p` is the sampling probability in force.
FlowInversionResult invert_flow_sizes(
    const std::vector<std::uint64_t>& observed, double p,
    const FlowInversionOptions& options = {});

/// Builds the sampled-size histogram from record counts.
/// Values above `max_observed` are clipped into the last bin.
std::vector<std::uint64_t> sampled_size_histogram(
    const std::vector<std::uint64_t>& sampled_sizes,
    std::size_t max_observed);

}  // namespace netmon::estimate
