#include "telemetry/snmp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::telemetry {

SnmpAgent::SnmpAgent(std::size_t link_count)
    : packets_(link_count, 0), octets_(link_count, 0) {
  NETMON_REQUIRE(link_count > 0, "agent needs >= 1 link");
}

void SnmpAgent::count(topo::LinkId link, std::uint64_t packets,
                      std::uint64_t bytes) {
  NETMON_REQUIRE(link < packets_.size(), "link id out of range");
  packets_[link] = static_cast<std::uint32_t>(packets_[link] + packets);
  octets_[link] = static_cast<std::uint32_t>(octets_[link] + bytes);
}

LinkSample SnmpAgent::read(topo::LinkId link) const {
  NETMON_REQUIRE(link < packets_.size(), "link id out of range");
  return LinkSample{packets_[link], octets_[link]};
}

std::uint32_t counter32_delta(std::uint32_t earlier,
                              std::uint32_t later) noexcept {
  // Unsigned subtraction handles the wrap for free.
  return later - earlier;
}

RatePoller::RatePoller(const SnmpAgent& agent)
    : agent_(agent),
      previous_(agent.link_count()),
      current_(agent.link_count()) {}

void RatePoller::poll(double now_sec) {
  NETMON_REQUIRE(polls_ == 0 || now_sec > cur_time_,
                 "poll timestamps must strictly increase");
  previous_ = current_;
  prev_time_ = cur_time_;
  for (topo::LinkId link = 0; link < agent_.link_count(); ++link)
    current_[link] = agent_.read(link);
  cur_time_ = now_sec;
  ++polls_;
}

double RatePoller::packet_rate(topo::LinkId link) const {
  NETMON_REQUIRE(link < current_.size(), "link id out of range");
  if (polls_ < 2) return 0.0;
  const double dt = cur_time_ - prev_time_;
  return counter32_delta(previous_[link].packets, current_[link].packets) /
         dt;
}

double RatePoller::byte_rate(topo::LinkId link) const {
  NETMON_REQUIRE(link < current_.size(), "link id out of range");
  if (polls_ < 2) return 0.0;
  const double dt = cur_time_ - prev_time_;
  return counter32_delta(previous_[link].octets, current_[link].octets) / dt;
}

traffic::LinkLoads RatePoller::loads() const {
  traffic::LinkLoads loads(current_.size(), 0.0);
  for (topo::LinkId link = 0; link < current_.size(); ++link)
    loads[link] = packet_rate(link);
  return loads;
}

traffic::LinkLoads measured_loads(const topo::Graph& graph,
                                  const traffic::TrafficMatrix& demands,
                                  double duration_sec,
                                  double poll_interval_sec, Rng& rng,
                                  const routing::LinkSet& failed) {
  NETMON_REQUIRE(duration_sec > 0.0, "duration must be positive");
  NETMON_REQUIRE(poll_interval_sec > 0.0 &&
                     poll_interval_sec <= duration_sec,
                 "poll interval must fit the duration");

  // Pre-route every demand once.
  std::vector<std::vector<topo::LinkId>> paths;
  paths.reserve(demands.size());
  {
    std::vector<routing::OdPair> ods;
    for (const traffic::Demand& d : demands) ods.push_back(d.od);
    const auto matrix =
        routing::RoutingMatrix::single_path(graph, std::move(ods), failed);
    for (std::size_t k = 0; k < demands.size(); ++k) {
      std::vector<topo::LinkId> path;
      for (const auto& [link, frac] : matrix.row(k)) path.push_back(link);
      paths.push_back(std::move(path));
    }
  }

  SnmpAgent agent(graph.link_count());
  RatePoller poller(agent);
  poller.poll(0.0);

  // Advance in one-second ticks; per tick each demand contributes a
  // Poisson-distributed packet count (and bytes at ~500 B average).
  double next_poll = poll_interval_sec;
  for (double t = 1.0; t <= duration_sec + 1e-9; t += 1.0) {
    for (std::size_t k = 0; k < demands.size(); ++k) {
      if (demands[k].pkt_per_sec <= 0.0) continue;
      std::poisson_distribution<std::uint64_t> arrivals(
          demands[k].pkt_per_sec);
      const std::uint64_t packets = arrivals(rng);
      for (topo::LinkId link : paths[k])
        agent.count(link, packets, packets * 500);
    }
    if (t + 1e-9 >= next_poll) {
      poller.poll(t);
      next_poll += poll_interval_sec;
    }
  }
  return poller.loads();
}

}  // namespace netmon::telemetry
