// SNMP-style link telemetry.
//
// The paper contrasts expensive passive monitors with cheap SNMP link
// counters (§I) — and the optimizer's inputs U_i are exactly what SNMP
// gives. This module models the measurement path: device-side 32-bit
// wrapping counters (IF-MIB semantics), a collector-side poller that
// differences successive polls with wrap handling, and a helper that
// simulates a demand matrix against the counters to produce measured
// (rather than oracle) link loads for the placement problem.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/spf.hpp"
#include "topo/graph.hpp"
#include "traffic/demand.hpp"
#include "traffic/link_load.hpp"
#include "util/rng.hpp"

namespace netmon::telemetry {

/// One poll of a link's counters (IF-MIB style, 32-bit wrapping).
struct LinkSample {
  std::uint32_t packets = 0;
  std::uint32_t octets = 0;
};

/// Device-side per-link packet/octet counters. Counters wrap modulo 2^32,
/// as SNMP Counter32 objects do — the poller must difference them.
class SnmpAgent {
 public:
  explicit SnmpAgent(std::size_t link_count);

  /// Accounts traffic on a link. Wraps silently (Counter32 semantics).
  void count(topo::LinkId link, std::uint64_t packets, std::uint64_t bytes);

  /// Reads the current counters of a link.
  LinkSample read(topo::LinkId link) const;

  std::size_t link_count() const noexcept { return packets_.size(); }

 private:
  std::vector<std::uint32_t> packets_;
  std::vector<std::uint32_t> octets_;
};

/// Collector-side rate derivation: keeps the previous poll per link and
/// turns counter deltas into rates, handling at most one wrap per poll
/// interval (the standard SNMP assumption; poll fast enough!).
class RatePoller {
 public:
  /// `agent` must outlive the poller.
  explicit RatePoller(const SnmpAgent& agent);

  /// Takes a poll at `now_sec`; timestamps must strictly increase.
  void poll(double now_sec);

  /// Packet rate of a link from the last two polls (0 before two polls).
  double packet_rate(topo::LinkId link) const;

  /// Byte rate of a link from the last two polls.
  double byte_rate(topo::LinkId link) const;

  /// All packet rates as a LinkLoads vector.
  traffic::LinkLoads loads() const;

  /// Number of polls taken.
  int polls() const noexcept { return polls_; }

 private:
  const SnmpAgent& agent_;
  std::vector<LinkSample> previous_;
  std::vector<LinkSample> current_;
  double prev_time_ = 0.0;
  double cur_time_ = 0.0;
  int polls_ = 0;
};

/// Difference of two Counter32 readings assuming at most one wrap.
std::uint32_t counter32_delta(std::uint32_t earlier,
                              std::uint32_t later) noexcept;

/// Simulates `duration_sec` of the demand matrix flowing over its
/// shortest paths into an agent's counters (per-second Poisson packet
/// increments), polls every `poll_interval_sec`, and returns the
/// poller-derived link loads. This is how the GEANT scenario's "oracle"
/// loads are replaced by measured ones in the continuous-operation
/// example.
traffic::LinkLoads measured_loads(const topo::Graph& graph,
                                  const traffic::TrafficMatrix& demands,
                                  double duration_sec,
                                  double poll_interval_sec, Rng& rng,
                                  const routing::LinkSet& failed = {});

}  // namespace netmon::telemetry
