// Facade: solve the placement problem and report the solution the way the
// paper's Table I does — per-link sampling rates, per-OD effective rates,
// utilities, and which monitors are active.
#pragma once

#include <vector>

#include "core/problem.hpp"
#include "opt/gradient_projection.hpp"

namespace netmon::core {

/// Per-OD view of a solution.
struct OdReport {
  routing::OdPair od;
  /// Expected interval size S_k (packets) from the task definition.
  double expected_packets = 0.0;
  /// Effective sampling rates: linearized (eq. 7) and exact (eq. 1).
  double rho_approx = 0.0;
  double rho_exact = 0.0;
  /// Utility M(rho_approx) — the paper's "Utility" column.
  double utility = 0.0;
  /// Analytic prediction of the paper's measured "Accuracy" column,
  /// E[1 - |X/rho - S|/S] ~ 1 - sqrt(2/pi) * sqrt((1-rho)/(S rho))
  /// (half-normal mean of the binomial estimator's relative error).
  double predicted_accuracy = 0.0;
  /// Links on this OD's path carrying an active monitor.
  std::vector<topo::LinkId> monitored_links;
};

/// Which solve path produced a solution.
enum class SolveTier {
  /// Full-problem gradient projection with a KKT optimality certificate.
  kExact,
  /// Partitioned block solve (core/approx) with a Frank-Wolfe gap bound.
  kApprox,
};

/// A placement: rates per link plus reporting and solver diagnostics.
struct PlacementSolution {
  /// Sampling rate per link (full link-id space; 0 = monitor off).
  sampling::RateVector rates;
  /// Links with a strictly positive sampling rate.
  std::vector<topo::LinkId> active_monitors;
  std::vector<OdReport> per_od;
  /// sum_k M(rho_k).
  double total_utility = 0.0;
  /// Budget consumed, in packets per interval.
  double budget_used = 0.0;
  /// Solver diagnostics (meaningful when produced by solve_placement).
  opt::SolveStatus status = opt::SolveStatus::kOptimal;
  int iterations = 0;
  int release_events = 0;
  double lambda = 0.0;
  /// Solve path. Exact solves certify optimality via KKT; approximate
  /// solves (core/approx) certify the gap bound below instead.
  SolveTier tier = SolveTier::kExact;
  /// Certified Frank-Wolfe optimality gap (opt/certificate.hpp):
  /// f* <= total_utility + certified_gap. Zero for exact solves.
  double certified_gap = 0.0;
  double certified_upper_bound = 0.0;
};

/// Runs the gradient-projection solver on the problem. `workspace`, when
/// given, supplies the solver's iteration scratch — pass the same one to
/// repeated solves (batch fan-out, re-optimization) to avoid reallocating
/// it per call.
PlacementSolution solve_placement(const PlacementProblem& problem,
                                  const opt::SolverOptions& options = {},
                                  opt::SolverWorkspace* workspace = nullptr);

/// Builds the same report for an externally chosen rate vector (naive
/// strategies, hand-configured monitors). Rates on non-candidate links
/// are ignored for utility purposes but still counted in budget_used.
PlacementSolution evaluate_rates(const PlacementProblem& problem,
                                 const sampling::RateVector& rates);

/// Threshold below which a rate counts as "monitor off" when listing
/// active monitors.
inline constexpr double kActiveRateThreshold = 1e-9;

}  // namespace netmon::core
