#include "core/reoptimize.hpp"

#include "opt/gradient_projection.hpp"

namespace netmon::core {

std::vector<double> warm_start_point(const PlacementProblem& problem,
                                     const sampling::RateVector& previous) {
  const std::vector<double> compressed = problem.compress(previous);
  return problem.constraints().project(compressed);
}

PlacementSolution resolve_warm(const PlacementProblem& problem,
                               const sampling::RateVector& previous,
                               const opt::SolverOptions& options) {
  const std::vector<double> start = warm_start_point(problem, previous);
  const opt::SolveResult raw = opt::maximize(
      problem.objective(), problem.constraints(), options, &start);
  PlacementSolution solution =
      evaluate_rates(problem, problem.expand(raw.p));
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  solution.release_events = raw.release_events;
  solution.lambda = raw.lambda;
  return solution;
}

}  // namespace netmon::core
