#include "core/reoptimize.hpp"

#include "opt/gradient_projection.hpp"
#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::core {

std::vector<double> warm_start_point(const PlacementProblem& problem,
                                     const sampling::RateVector& previous) {
  const std::vector<double> compressed = problem.compress(previous);
  return problem.constraints().project(compressed);
}

PlacementSolution resolve_warm(const PlacementProblem& problem,
                               const sampling::RateVector& previous,
                               const opt::SolverOptions& options,
                               opt::SolverWorkspace* workspace) {
  const std::vector<double> start = warm_start_point(problem, previous);
  const opt::SolveResult raw = opt::maximize(
      problem.objective(), problem.constraints(), options, &start, workspace);
  PlacementSolution solution =
      evaluate_rates(problem, problem.expand(raw.p));
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  solution.release_events = raw.release_events;
  solution.lambda = raw.lambda;
  return solution;
}

std::vector<PlacementSolution> resolve_warm_batch(
    std::span<const PlacementProblem* const> problems,
    const sampling::RateVector& previous, const BatchOptions& options) {
  std::vector<PlacementSolution> solutions(problems.size());
  for (const PlacementProblem* problem : problems)
    NETMON_REQUIRE(problem != nullptr, "null problem in batch");
  if (problems.empty()) return solutions;

  // One solver workspace per chunk: the chunk layout is deterministic and
  // each chunk runs on a single worker, so the scratch is reused across
  // that chunk's solves without synchronization.
  runtime::ThreadPool pool(options.threads);
  const auto chunks = runtime::make_chunks(problems.size());
  runtime::parallel_for(pool, chunks.size(), [&](std::size_t c) {
    opt::SolverWorkspace workspace;
    for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      solutions[i] =
          resolve_warm(*problems[i], previous, options.solver, &workspace);
    }
  });
  return solutions;
}

}  // namespace netmon::core
