#include "core/config_gen.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace netmon::core {

std::vector<RouterConfig> router_configs(const PlacementSolution& solution,
                                         const topo::Graph& graph,
                                         std::uint32_t max_interval) {
  NETMON_REQUIRE(max_interval >= 1, "max interval must be >= 1");
  std::map<topo::NodeId, RouterConfig> by_router;
  for (topo::LinkId id : solution.active_monitors) {
    const double rate = solution.rates[id];
    if (rate <= 0.0) continue;
    RouterConfig::Interface interface;
    interface.link = id;
    interface.exact_rate = rate;
    const double ideal = 1.0 / rate;
    interface.sample_one_in = static_cast<std::uint32_t>(std::clamp<double>(
        std::llround(ideal), 1.0, static_cast<double>(max_interval)));
    const double quantized = 1.0 / interface.sample_one_in;
    interface.quantization_error = std::abs(quantized - rate) / rate;

    const topo::NodeId router = graph.link(id).src;
    RouterConfig& config = by_router[router];
    config.router = router;
    config.interfaces.push_back(interface);
  }
  std::vector<RouterConfig> out;
  out.reserve(by_router.size());
  for (auto& [router, config] : by_router) out.push_back(std::move(config));
  return out;
}

std::string render_config(const RouterConfig& config,
                          const topo::Graph& graph) {
  NETMON_REQUIRE(config.router != topo::kInvalidId, "config has no router");
  std::string out = "# router " + graph.node(config.router).name + "\n";
  out += "forwarding-options {\n    sampling {\n";
  for (const auto& interface : config.interfaces) {
    out += "        # link " + graph.link_name(interface.link) + " (rate " +
           std::to_string(interface.exact_rate) + ")\n";
    out += "        input rate " + std::to_string(interface.sample_one_in) +
           ";\n";
  }
  out += "    }\n}\n";
  return out;
}

double worst_quantization_error(const std::vector<RouterConfig>& configs) {
  double worst = 0.0;
  for (const RouterConfig& config : configs) {
    for (const auto& interface : config.interfaces)
      worst = std::max(worst, interface.quantization_error);
  }
  return worst;
}

}  // namespace netmon::core
