// Max-min fairness extension (paper §III discusses max_k min M(rho_k) as
// an alternative objective and §VI lists it as future work).
//
// The plain minimum is not differentiable, which the paper notes "may
// impact the convergence of the algorithm". We therefore optimize the
// smooth-min surrogate
//   f_beta(p) = -(1/beta) ln sum_k exp(-beta M_k(rho_k)),
// which is concave, C^2, and converges to min_k M_k as beta grows:
//   min_k M_k - ln(F)/beta <= f_beta <= min_k M_k.
#pragma once

#include "opt/objective.hpp"

namespace netmon::core {

/// Smooth minimum of the per-OD utilities of a separable objective.
class SmoothMinObjective final : public opt::Objective {
 public:
  /// `base` must outlive this object. `beta` > 0 controls sharpness;
  /// with utilities in [0,1], beta in [50, 500] works well.
  SmoothMinObjective(const opt::SeparableConcaveObjective& base, double beta);

  std::size_t dimension() const override { return base_.dimension(); }
  double value(std::span<const double> p) const override;
  void gradient(std::span<const double> p,
                std::span<double> out) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override;

  /// Allocation-free evaluation drawing scratch from `ws` (rows_* slots).
  double value(std::span<const double> p,
               linalg::EvalWorkspace& ws) const override;
  void gradient(std::span<const double> p, std::span<double> out,
                linalg::EvalWorkspace& ws) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s,
                            linalg::EvalWorkspace& ws) const override;

  /// The hard minimum of the per-OD utilities at p (for reporting).
  double hard_min(std::span<const double> p) const;

  double beta() const noexcept { return beta_; }

 private:
  /// Softmin weights w_k proportional to exp(-beta M_k), summing to 1,
  /// written over `w` (same size as `x`).
  void weights_into(std::span<const double> x, std::span<double> w) const;

  const opt::SeparableConcaveObjective& base_;
  double beta_;
  /// Scratch for the workspace-less virtuals (grow-only; see the same
  /// pattern on SeparableConcaveObjective).
  mutable linalg::EvalWorkspace scratch_;
};

}  // namespace netmon::core
