// Measurement tasks: the set F of OD pairs whose sizes the operator wants
// to estimate, with the expected interval sizes that parameterize the
// utility of each pair.
#pragma once

#include <vector>

#include "routing/routing_matrix.hpp"
#include "topo/geant.hpp"
#include "traffic/demand.hpp"

namespace netmon::core {

/// A measurement task over a set of OD pairs.
struct MeasurementTask {
  /// The OD pairs of interest (the set F).
  std::vector<routing::OdPair> ods;
  /// Expected size of each OD pair in packets per measurement interval;
  /// c_k = 1/expected_packets[k] parameterizes the utility.
  std::vector<double> expected_packets;
  /// Optional per-OD weights (operator priorities); empty = all 1. When
  /// given, the objective becomes sum_k w_k M_k(rho_k).
  std::vector<double> weights;
  /// Measurement interval length (paper: 5 minutes).
  double interval_sec = 300.0;
};

/// The paper's evaluation task (§V-B): traffic sent by JANET to each of
/// the 20 GEANT PoPs through the UK PoP, with Table-I-scale sizes.
MeasurementTask janet_task(const topo::GeantNetwork& net);

/// The per-OD demands of the JANET task as a traffic matrix (pkt/s), used
/// to inject the task traffic on top of the background gravity traffic.
std::vector<traffic::Demand> janet_demands(const topo::GeantNetwork& net);

/// Merges several tasks into one (the operator usually runs many at
/// once: traffic engineering + security watches + accounting). Each
/// task's OD pairs are appended with their utilities scaled by the
/// task's weight, so the combined objective is
/// sum_t w_t sum_{k in t} M_k(rho_k). All tasks must share the interval.
MeasurementTask merge_tasks(const std::vector<MeasurementTask>& tasks,
                            const std::vector<double>& task_weights);

}  // namespace netmon::core
