// Machine-readable placement reports.
//
// Serializes a PlacementSolution (together with the graph that names its
// links/nodes) as JSON, so external tooling — dashboards, the CLI
// example, config pushers — can consume solver output directly.
#pragma once

#include <iosfwd>
#include <string>

#include "core/solver.hpp"

namespace netmon::core {

/// Writes the solution as a JSON document:
/// {
///   "status": "optimal" | "iteration_limit",
///   "iterations": n, "release_events": n, "lambda": x,
///   "budget_used": x, "total_utility": x,
///   "monitors": [ {"link": "UK->FR", "rate": p, ...}, ... ],
///   "od_pairs": [ {"src": ..., "dst": ..., "rho": ..., ...}, ... ]
/// }
void write_report(std::ostream& out, const PlacementSolution& solution,
                  const topo::Graph& graph);

/// Same, into a string.
std::string report_json(const PlacementSolution& solution,
                        const topo::Graph& graph);

}  // namespace netmon::core
