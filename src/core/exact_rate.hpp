// Sequential convex programming on the exact effective rate.
//
// The paper optimizes with the linearized rate rho = sum r p (eq. 7)
// because the exact union probability rho = 1 - prod (1-p_i)^{r_i}
// (eq. 1) makes the problem non-convex in p. This module quantifies how
// much that costs: it iteratively re-linearizes eq. (1) around the
// current iterate (a tangent plane — exact value and gradient) and
// re-solves the resulting convex problem until the rates stop moving.
// At the paper's operating point (rates <= 1e-2) the first-order model is
// already within ~1e-3 of the fixed point, validating assumption §IV-B
// from the optimization side as well as the evaluation side.
#pragma once

#include "core/problem.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// SCP options.
struct ExactRateOptions {
  /// Maximum linearize-and-solve rounds.
  int max_rounds = 20;
  /// Stop when the rates move less than this (infinity norm, relative to
  /// the largest rate).
  double tolerance = 1e-8;
  /// Inner solver settings per round.
  opt::SolverOptions solver;
};

/// SCP outcome.
struct ExactRateResult {
  /// The final placement (reported exactly like solve_placement).
  PlacementSolution solution;
  /// Rounds executed (1 = the eq. 7 solution was already a fixed point).
  int rounds = 0;
  /// Total utility evaluated with the exact rate, at the eq. 7 optimum
  /// and at the SCP fixed point — their gap is what eq. 7 costs.
  double exact_utility_linearized = 0.0;
  double exact_utility_scp = 0.0;
};

/// Runs the sequential linearization starting from the eq. 7 optimum.
ExactRateResult solve_exact_placement(const PlacementProblem& problem,
                                      const ExactRateOptions& options = {});

/// Total utility sum_k M_k(rho_k^exact) of a rate vector.
double exact_total_utility(const PlacementProblem& problem,
                           const sampling::RateVector& rates);

}  // namespace netmon::core
