#include "core/maximin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::core {

SmoothMinObjective::SmoothMinObjective(
    const opt::SeparableConcaveObjective& base, double beta)
    : base_(base), beta_(beta) {
  NETMON_REQUIRE(beta > 0.0, "smooth-min beta must be positive");
}

std::vector<double> SmoothMinObjective::weights(
    const std::vector<double>& x) const {
  std::vector<double> m(x.size());
  double m_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < x.size(); ++k) {
    m[k] = base_.utility(k).value(x[k]);
    m_min = std::min(m_min, m[k]);
  }
  std::vector<double> w(x.size());
  double z = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    w[k] = std::exp(-beta_ * (m[k] - m_min));
    z += w[k];
  }
  for (double& wk : w) wk /= z;
  return w;
}

double SmoothMinObjective::value(std::span<const double> p) const {
  const std::vector<double> x = base_.inner(p);
  double m_min = std::numeric_limits<double>::infinity();
  std::vector<double> m(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    m[k] = base_.utility(k).value(x[k]);
    m_min = std::min(m_min, m[k]);
  }
  double z = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k)
    z += std::exp(-beta_ * (m[k] - m_min));
  return m_min - std::log(z) / beta_;
}

void SmoothMinObjective::gradient(std::span<const double> p,
                                  std::span<double> out) const {
  NETMON_REQUIRE(out.size() == dimension(), "gradient dimension mismatch");
  const std::vector<double> x = base_.inner(p);
  const std::vector<double> w = weights(x);
  for (double& g : out) g = 0.0;
  const auto& rows = base_.rows();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const double d = w[k] * base_.utility(k).deriv(x[k]);
    for (const auto& [col, coeff] : rows[k]) out[col] += coeff * d;
  }
}

double SmoothMinObjective::directional_second(
    std::span<const double> p, std::span<const double> s) const {
  const std::vector<double> x = base_.inner(p);
  const std::vector<double> w = weights(x);
  const auto& rows = base_.rows();
  double curvature = 0.0;   // sum w_k M''_k xdot_k^2
  double mean_a = 0.0;      // sum w_k a_k,  a_k = M'_k xdot_k
  double mean_a2 = 0.0;     // sum w_k a_k^2
  for (std::size_t k = 0; k < rows.size(); ++k) {
    double xdot = 0.0;
    for (const auto& [col, coeff] : rows[k]) xdot += coeff * s[col];
    const double a = base_.utility(k).deriv(x[k]) * xdot;
    curvature += w[k] * base_.utility(k).second(x[k]) * xdot * xdot;
    mean_a += w[k] * a;
    mean_a2 += w[k] * a * a;
  }
  return curvature - beta_ * (mean_a2 - mean_a * mean_a);
}

double SmoothMinObjective::hard_min(std::span<const double> p) const {
  const std::vector<double> x = base_.inner(p);
  double m_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < x.size(); ++k)
    m_min = std::min(m_min, base_.utility(k).value(x[k]));
  return m_min;
}

}  // namespace netmon::core
