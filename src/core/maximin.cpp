#include "core/maximin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::core {

SmoothMinObjective::SmoothMinObjective(
    const opt::SeparableConcaveObjective& base, double beta)
    : base_(base), beta_(beta) {
  NETMON_REQUIRE(beta > 0.0, "smooth-min beta must be positive");
}

void SmoothMinObjective::weights_into(std::span<const double> x,
                                      std::span<double> w) const {
  double m_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < x.size(); ++k) {
    w[k] = base_.utility(k).value(x[k]);
    m_min = std::min(m_min, w[k]);
  }
  double z = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    w[k] = std::exp(-beta_ * (w[k] - m_min));
    z += w[k];
  }
  for (double& wk : w) wk /= z;
}

double SmoothMinObjective::value(std::span<const double> p,
                                 linalg::EvalWorkspace& ws) const {
  const std::size_t n = base_.term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> m = ws.rows_b(n);
  base_.inner_into(p, x);
  double m_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    m[k] = base_.utility(k).value(x[k]);
    m_min = std::min(m_min, m[k]);
  }
  double z = 0.0;
  for (std::size_t k = 0; k < n; ++k) z += std::exp(-beta_ * (m[k] - m_min));
  return m_min - std::log(z) / beta_;
}

void SmoothMinObjective::gradient(std::span<const double> p,
                                  std::span<double> out,
                                  linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(out.size() == dimension(), "gradient dimension mismatch");
  const std::size_t n = base_.term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> w = ws.rows_b(n);
  const std::span<double> d = ws.rows_c(n);
  base_.inner_into(p, x);
  weights_into(x, w);
  for (std::size_t k = 0; k < n; ++k)
    d[k] = w[k] * base_.utility(k).deriv(x[k]);
  linalg::spmv_t(base_.matrix(), d, out);
}

double SmoothMinObjective::directional_second(std::span<const double> p,
                                              std::span<const double> s,
                                              linalg::EvalWorkspace& ws) const {
  const std::size_t n = base_.term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> w = ws.rows_b(n);
  base_.inner_into(p, x);
  weights_into(x, w);
  const linalg::SparseCsr& matrix = base_.matrix();
  double curvature = 0.0;   // sum w_k M''_k xdot_k^2
  double mean_a = 0.0;      // sum w_k a_k,  a_k = M'_k xdot_k
  double mean_a2 = 0.0;     // sum w_k a_k^2
  for (std::size_t k = 0; k < n; ++k) {
    double xdot = 0.0;
    for (const auto& [col, coeff] : matrix.row(k)) xdot += coeff * s[col];
    const double a = base_.utility(k).deriv(x[k]) * xdot;
    curvature += w[k] * base_.utility(k).second(x[k]) * xdot * xdot;
    mean_a += w[k] * a;
    mean_a2 += w[k] * a * a;
  }
  return curvature - beta_ * (mean_a2 - mean_a * mean_a);
}

double SmoothMinObjective::value(std::span<const double> p) const {
  return value(p, scratch_);
}

void SmoothMinObjective::gradient(std::span<const double> p,
                                  std::span<double> out) const {
  gradient(p, out, scratch_);
}

double SmoothMinObjective::directional_second(std::span<const double> p,
                                              std::span<const double> s) const {
  return directional_second(p, s, scratch_);
}

double SmoothMinObjective::hard_min(std::span<const double> p) const {
  const std::span<double> x = scratch_.rows_a(base_.term_count());
  base_.inner_into(p, x);
  double m_min = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < x.size(); ++k)
    m_min = std::min(m_min, base_.utility(k).value(x[k]));
  return m_min;
}

}  // namespace netmon::core
