#include "core/sensitivity.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::core {

std::vector<MonitorValue> monitor_values(const PlacementProblem& problem,
                                         const PlacementSolution& solution) {
  const auto& candidates = problem.candidates();
  const std::vector<double> x = problem.compress(solution.rates);
  std::vector<double> g(candidates.size());
  problem.objective().gradient(x, g);
  const auto& u = problem.constraints().loads();
  const auto& alpha = problem.constraints().upper();

  // Budget price from the interior active links.
  double gu = 0.0, uu = 0.0;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (x[j] > kActiveRateThreshold && x[j] < alpha[j] * (1.0 - 1e-9)) {
      gu += g[j] * u[j];
      uu += u[j] * u[j];
    }
  }
  NETMON_REQUIRE(uu > 0.0,
                 "sensitivity needs at least one interior active monitor");
  const double lambda = gu / uu;

  std::vector<MonitorValue> values;
  values.reserve(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    MonitorValue v;
    v.link = candidates[j];
    v.active = x[j] > kActiveRateThreshold;
    v.marginal_utility = g[j];
    v.marginal_cost = lambda * u[j];
    v.value_ratio =
        v.marginal_cost > 0.0 ? v.marginal_utility / v.marginal_cost : 0.0;
    values.push_back(v);
  }
  std::sort(values.begin(), values.end(),
            [](const MonitorValue& a, const MonitorValue& b) {
              return a.value_ratio > b.value_ratio;
            });
  return values;
}

topo::LinkId next_monitor_to_activate(
    const std::vector<MonitorValue>& values) {
  for (const MonitorValue& v : values) {
    if (!v.active) return v.link;  // sorted: first inactive = best
  }
  return topo::kInvalidId;
}

std::vector<ThetaSensitivityPoint> theta_sensitivity(
    const topo::Graph& graph, const MeasurementTask& task,
    const traffic::LinkLoads& loads, const ProblemOptions& base,
    std::span<const double> thetas, const BatchOptions& batch) {
  NETMON_REQUIRE(!thetas.empty(), "theta_sensitivity needs >= 1 theta");
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    NETMON_REQUIRE(thetas[i] > 0.0, "thetas must be positive");
    NETMON_REQUIRE(i == 0 || thetas[i] > thetas[i - 1],
                   "thetas must be strictly increasing");
  }

  const std::vector<PlacementProblem> problems =
      make_theta_sweep(graph, task, loads, base, thetas);
  BatchOptions options = batch;
  options.warm_chain = true;  // consecutive thetas are close by design
  const std::vector<PlacementSolution> solutions =
      BatchSolver(options).solve(problems);

  std::vector<ThetaSensitivityPoint> points(thetas.size());
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    points[i].theta = thetas[i];
    points[i].total_utility = solutions[i].total_utility;
    points[i].lambda = solutions[i].lambda;
    points[i].active_monitors = solutions[i].active_monitors.size();
  }
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    points[i].empirical_price =
        (points[i + 1].total_utility - points[i].total_utility) /
        (points[i + 1].theta - points[i].theta);
  }
  return points;
}

}  // namespace netmon::core
