#include "core/task.hpp"

#include "util/error.hpp"

namespace netmon::core {

MeasurementTask janet_task(const topo::GeantNetwork& net) {
  MeasurementTask task;
  const auto& names = topo::janet_destinations();
  const auto& rates = topo::janet_od_rates();
  NETMON_REQUIRE(names.size() == rates.size(), "task data size mismatch");
  for (std::size_t k = 0; k < names.size(); ++k) {
    const auto dst = net.graph.find_node(names[k]);
    NETMON_REQUIRE(dst.has_value(), "unknown JANET destination " + names[k]);
    task.ods.push_back(routing::OdPair{net.janet, *dst});
    task.expected_packets.push_back(rates[k] * task.interval_sec);
  }
  return task;
}

std::vector<traffic::Demand> janet_demands(const topo::GeantNetwork& net) {
  const MeasurementTask task = janet_task(net);
  std::vector<traffic::Demand> demands;
  demands.reserve(task.ods.size());
  for (std::size_t k = 0; k < task.ods.size(); ++k) {
    demands.push_back(traffic::Demand{
        task.ods[k], task.expected_packets[k] / task.interval_sec});
  }
  return demands;
}

MeasurementTask merge_tasks(const std::vector<MeasurementTask>& tasks,
                            const std::vector<double>& task_weights) {
  NETMON_REQUIRE(!tasks.empty(), "merge needs >= 1 task");
  NETMON_REQUIRE(tasks.size() == task_weights.size(),
                 "one weight per task required");
  MeasurementTask merged;
  merged.interval_sec = tasks.front().interval_sec;
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const MeasurementTask& task = tasks[t];
    NETMON_REQUIRE(task.interval_sec == merged.interval_sec,
                   "merged tasks must share the measurement interval");
    NETMON_REQUIRE(task.ods.size() == task.expected_packets.size(),
                   "task OD/size vectors must be aligned");
    NETMON_REQUIRE(task_weights[t] > 0.0, "task weight must be positive");
    NETMON_REQUIRE(task.weights.empty() ||
                       task.weights.size() == task.ods.size(),
                   "per-OD weights must align when present");
    for (std::size_t k = 0; k < task.ods.size(); ++k) {
      merged.ods.push_back(task.ods[k]);
      merged.expected_packets.push_back(task.expected_packets[k]);
      const double od_weight = task.weights.empty() ? 1.0 : task.weights[k];
      merged.weights.push_back(task_weights[t] * od_weight);
    }
  }
  return merged;
}

}  // namespace netmon::core
