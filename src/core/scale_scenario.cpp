#include "core/scale_scenario.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::core {

ScaleScenario make_scale_scenario(const ScaleScenarioOptions& options) {
  NETMON_REQUIRE(options.background_utilization > 0.0 &&
                     options.background_utilization <= 1.0,
                 "background utilization must be in (0, 1]");
  NETMON_REQUIRE(options.interval_sec > 0.0, "interval must be positive");

  ScaleScenario scenario;
  scenario.net = topo::make_hierarchical(options.hierarchy);
  scenario.demands = traffic::gravity_fanout(scenario.net, options.fanout);

  scenario.task.interval_sec = options.interval_sec;
  scenario.task.ods.reserve(scenario.demands.size());
  scenario.task.expected_packets.reserve(scenario.demands.size());
  for (const traffic::Demand& d : scenario.demands) {
    scenario.task.ods.push_back(d.od);
    // SreUtility needs expected interval sizes >= 2 packets; the fan-out
    // floor already aims there, clamp to be safe against odd options.
    scenario.task.expected_packets.push_back(
        std::max(d.pkt_per_sec * options.interval_sec, 2.0));
  }

  scenario.loads = traffic::background_loads(scenario.net.graph,
                                             options.background_utilization);
  const traffic::LinkLoads task_loads =
      traffic::link_loads(scenario.net.graph, scenario.demands);
  for (std::size_t i = 0; i < scenario.loads.size(); ++i)
    scenario.loads[i] += task_loads[i];
  return scenario;
}

double default_scale_theta(const ScaleScenario& scenario, double fraction) {
  NETMON_REQUIRE(fraction > 0.0 && fraction <= 1.0,
                 "theta fraction must be in (0, 1]");
  // Maximum feasible budget over the candidate set: the links the task
  // traverses, each sampled at alpha = 1 for a full interval.
  const routing::RoutingMatrix matrix = routing::RoutingMatrix::single_path(
      scenario.net.graph, scenario.task.ods);
  double max_budget = 0.0;
  for (topo::LinkId id : matrix.links_used())
    max_budget += scenario.loads[id] * scenario.task.interval_sec;
  return fraction * max_budget;
}

PlacementProblem make_problem(const ScaleScenario& scenario,
                              ProblemOptions options) {
  if (options.theta <= 0.0)
    options.theta = default_scale_theta(scenario);
  return PlacementProblem(scenario.net.graph, scenario.task, scenario.loads,
                          std::move(options));
}

}  // namespace netmon::core
