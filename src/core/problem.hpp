// Assembly of the paper's optimization problem (§III) from network data.
//
// Inputs: topology, measurement task F, per-link loads U (pkt/s), system
// capacity theta (packets per interval) and per-link rate caps alpha.
// The problem identifies the candidate monitor set — the links traversed
// by F that are monitorable (and optionally restricted, e.g. "UK links
// only" in §V-C) — and exposes the objective and constraints in the
// compressed candidate index space the optimizer works in.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/task.hpp"
#include "opt/constraints.hpp"
#include "opt/objective.hpp"
#include "sampling/effective_rate.hpp"
#include "traffic/link_load.hpp"

namespace netmon::core {

/// Options controlling problem assembly.
struct ProblemOptions {
  /// System capacity theta: maximum packets sampled network-wide per
  /// measurement interval (the paper's Table I uses 100,000 per 5 min).
  double theta = 100000.0;
  /// Default maximum sampling rate per link (paper: alpha_i = 1, i.e. no
  /// upper limit beyond the rate being a probability).
  double default_alpha = 1.0;
  /// Restrict the candidate monitors to these links (empty = no
  /// restriction). Used for the "UK links only" comparison (§V-C).
  std::vector<topo::LinkId> restrict_to;
  /// Failed links (routing recomputes around them).
  routing::LinkSet failed;
  /// Split OD pairs over equal-cost multipaths instead of a single path.
  bool ecmp = false;
};

/// The assembled placement problem.
class PlacementProblem {
 public:
  /// `loads` are per-link packet rates (pkt/s) including all cross
  /// traffic; they must be positive on every candidate link.
  PlacementProblem(const topo::Graph& graph, MeasurementTask task,
                   traffic::LinkLoads loads, ProblemOptions options = {});

  /// The routing matrix of the task's OD pairs.
  const routing::RoutingMatrix& routing() const noexcept { return matrix_; }

  /// Candidate links, i.e. the optimizer's variable space, sorted by id.
  const std::vector<topo::LinkId>& candidates() const noexcept {
    return candidates_;
  }

  /// Constraints in candidate space: u_j = U_j * interval (packets per
  /// interval), bounds alpha_j, budget theta.
  const opt::BoxBudgetConstraints& constraints() const noexcept {
    return *constraints_;
  }

  /// Objective in candidate space: sum_k M_k(rho_k).
  const opt::SeparableConcaveObjective& objective() const noexcept {
    return *objective_;
  }

  /// Per-OD utilities (shared, for evaluating arbitrary rate vectors).
  const std::vector<std::shared_ptr<const opt::Concave1d>>& utilities()
      const noexcept {
    return utilities_;
  }

  /// Expands a candidate-space vector into a full link-indexed rate
  /// vector (zero on non-candidate links).
  sampling::RateVector expand(std::span<const double> x) const;

  /// Compresses a full link-indexed rate vector into candidate space.
  std::vector<double> compress(const sampling::RateVector& rates) const;

  const MeasurementTask& task() const noexcept { return task_; }
  const traffic::LinkLoads& loads() const noexcept { return loads_; }
  const topo::Graph& graph() const noexcept { return graph_; }
  double theta() const noexcept { return options_.theta; }
  double interval_sec() const noexcept { return task_.interval_sec; }

  /// Budget (packets per interval) consumed by a full rate vector.
  double budget_used(const sampling::RateVector& rates) const;

 private:
  const topo::Graph& graph_;
  MeasurementTask task_;
  traffic::LinkLoads loads_;
  ProblemOptions options_;
  routing::RoutingMatrix matrix_;
  std::vector<topo::LinkId> candidates_;
  std::vector<std::optional<std::size_t>> candidate_index_;  // link -> idx
  std::vector<std::shared_ptr<const opt::Concave1d>> utilities_;
  std::unique_ptr<opt::SeparableConcaveObjective> objective_;
  std::unique_ptr<opt::BoxBudgetConstraints> constraints_;
};

}  // namespace netmon::core
