// The measurement controller: the operational loop around the optimizer.
//
// Every measurement cycle the controller takes the current link loads
// (telemetry) and failed-link view (IS-IS LSDB), rebuilds the placement
// problem, re-solves it warm-started from the running configuration, and
// decides whether to push new sampling rates to the routers. A hysteresis
// threshold avoids reconfiguring the network for negligible gains — the
// practical concern behind the paper's "low resource consumption" goal.
//
// This is the simple synchronous entry point: it re-solves every cycle
// unconditionally and tracks nothing between cycles. New code driving a
// live feed of measurement bins should use control::ControlLoop
// (src/control/loop.hpp) instead — it adds per-OD Kalman tracking, a
// trigger policy that skips needless re-solves, solve deadlines, and
// obs/ instrumentation, and it shares this controller's hysteresis
// implementation (control::Actuator).
#pragma once

#include <optional>

#include "core/problem.hpp"
#include "core/reoptimize.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// Controller configuration.
struct ControllerOptions {
  /// Budget theta handed to every cycle's problem.
  double theta = 100000.0;
  /// Per-link rate cap.
  double default_alpha = 1.0;
  /// Reconfigure only when the re-optimized utility beats the running
  /// configuration (evaluated on the new network state) by at least this.
  double min_utility_gain = 1e-3;
  /// Reconfigure whenever the running rates consume more or less than
  /// theta by this relative margin on the new loads (the resource
  /// contract is broken, whatever the utility says).
  double budget_tolerance = 0.02;
  /// Solver settings for each cycle.
  opt::SolverOptions solver;
};

/// Outcome of one controller cycle.
struct CycleResult {
  /// The configuration in force after the cycle (new or kept).
  PlacementSolution solution;
  /// Whether new rates were adopted this cycle.
  bool reconfigured = false;
  /// Utility of the fresh optimum minus utility of the previous rates on
  /// the new network state. Can be negative when the previous rates
  /// over-spend the budget on the new loads (they buy utility the
  /// operator has not paid for).
  double utility_gain = 0.0;
  /// Whether the running rates violated the budget on the new loads.
  bool budget_violated = false;
  /// 1-based cycle number.
  int cycle = 0;
};

/// Drives re-optimization across measurement cycles.
class MonitorController {
 public:
  /// The graph must outlive the controller.
  MonitorController(const topo::Graph& graph, MeasurementTask task,
                    ControllerOptions options = {});

  /// Runs one cycle against the current network state.
  CycleResult run_cycle(const traffic::LinkLoads& loads,
                        const routing::LinkSet& failed = {});

  /// Replaces the measurement task (e.g. new OD set) for future cycles.
  void update_task(MeasurementTask task);

  /// The rates currently pushed to the network (empty before cycle 1).
  const sampling::RateVector& current_rates() const noexcept {
    return rates_;
  }

  int cycles() const noexcept { return cycle_; }
  int reconfigurations() const noexcept { return reconfigurations_; }

 private:
  const topo::Graph& graph_;
  MeasurementTask task_;
  ControllerOptions options_;
  sampling::RateVector rates_;
  routing::LinkSet last_failed_;
  bool have_rates_ = false;
  int cycle_ = 0;
  int reconfigurations_ = 0;
};

}  // namespace netmon::core
