#include "core/scenario.hpp"

#include "util/error.hpp"

namespace netmon::core {

GeantScenario make_geant_scenario(const ScenarioOptions& options) {
  GeantScenario scenario;
  scenario.net = topo::make_geant();
  scenario.task = janet_task(scenario.net);

  traffic::GravityOptions gravity;
  gravity.total_pkt_per_sec = options.background_pkt_per_sec;
  scenario.demands = traffic::gravity_matrix(scenario.net.graph, gravity);
  for (const traffic::Demand& d : janet_demands(scenario.net))
    scenario.demands.push_back(d);

  scenario.loads =
      traffic::link_loads(scenario.net.graph, scenario.demands,
                          options.failed);
  return scenario;
}

PlacementProblem make_problem(const GeantScenario& scenario,
                              ProblemOptions options) {
  return PlacementProblem(scenario.net.graph, scenario.task, scenario.loads,
                          std::move(options));
}

std::vector<topo::LinkId> uk_links(const topo::GeantNetwork& net) {
  std::vector<topo::LinkId> links;
  for (topo::LinkId id : net.graph.out_links(net.uk)) {
    if (!net.graph.link(id).monitorable) continue;  // skip the access link
    links.push_back(id);
  }
  NETMON_REQUIRE(links.size() == 6,
                 "expected the six UK inter-PoP links of the reference "
                 "topology");
  return links;
}

}  // namespace netmon::core
