// The paper's utility function M (§IV-C).
//
// For an OD pair with c = E[1/S] (S = OD size in packets per measurement
// interval), the mean squared relative accuracy of the estimator X/rho is
//   A(rho) = 1 - E[SRE](rho) = 1 - c (1 - rho)/rho,
// strictly increasing and concave, but undefined at rho = 0. Below the
// pivot x0 — chosen so the quadratic Taylor expansion A* of A at x0
// passes through the origin — M switches to that expansion, giving a C^2,
// strictly increasing, strictly concave utility with M(0) = 0:
//   x0 = 3c / (1 + c),   M(x0) = (2/3)(1 + c),
//   A*(rho) = (3c/x0^2) rho - (c/x0^3) rho^2.
#pragma once

#include <memory>

#include "opt/objective.hpp"

namespace netmon::core {

/// The accuracy-based utility of the paper.
class SreUtility final : public opt::Concave1d {
 public:
  /// `inv_mean_size` is c = E[1/S]; requires 0 < c <= 0.5 so that the
  /// pivot x0 = 3c/(1+c) stays inside (0, 1].
  explicit SreUtility(double inv_mean_size);

  /// The pivot x0 below which the quadratic expansion is used.
  double pivot() const noexcept { return x0_; }
  /// c = E[1/S].
  double inv_mean_size() const noexcept { return c_; }

  double value(double x) const override;
  double deriv(double x) const override;
  double second(double x) const override;
  const opt::Concave1d::BatchKernel* batch_kernel(
      BatchParams& params) const override;

  /// Convenience: the pivot for a given c (3c/(1+c)).
  static double pivot_for(double c) noexcept { return 3.0 * c / (1.0 + c); }

 private:
  double c_;
  double x0_;
  double a1_;  // quadratic expansion: a1 x + a2 x^2
  double a2_;
};

/// A simple alternative utility, M(x) = log(1 + x/eps): strictly
/// increasing, strictly concave, M(0) = 0. Used by the extension benches
/// to show the framework is not tied to the SRE utility (paper §VI).
class LogUtility final : public opt::Concave1d {
 public:
  explicit LogUtility(double eps);

  double value(double x) const override;
  double deriv(double x) const override;
  double second(double x) const override;
  const opt::Concave1d::BatchKernel* batch_kernel(
      BatchParams& params) const override;

 private:
  double eps_;
};

/// Scales another utility by a positive weight: w * M(x). Strictly
/// increasing and concave whenever M is, so per-OD weights (operator
/// priorities among the task's OD pairs) drop into the sum objective
/// without touching the solver.
class WeightedUtility final : public opt::Concave1d {
 public:
  /// `base` must outlive this object; weight > 0.
  WeightedUtility(std::shared_ptr<const opt::Concave1d> base, double weight);

  double value(double x) const override;
  double deriv(double x) const override;
  double second(double x) const override;

  double weight() const noexcept { return w_; }

 private:
  std::shared_ptr<const opt::Concave1d> base_;
  double w_;
};

/// Anomaly-detection utility (paper §VI lists anomaly detection as the
/// next application of the framework): the probability that an anomalous
/// flow of `flow_packets` packets is seen by at least one monitor,
///   M(rho) = 1 - (1 - rho)^S.
/// Strictly increasing and strictly concave on [0,1) with M(0) = 0 — it
/// drops into the optimization untouched. The argument is clamped just
/// below 1 so the linearized effective rate (which can exceed 1) stays in
/// the domain.
class DetectionUtility final : public opt::Concave1d {
 public:
  /// Requires flow_packets >= 2 (S = 1 would be linear, not strictly
  /// concave).
  explicit DetectionUtility(double flow_packets);

  double value(double x) const override;
  double deriv(double x) const override;
  double second(double x) const override;
  const opt::Concave1d::BatchKernel* batch_kernel(
      BatchParams& params) const override;

  double flow_packets() const noexcept { return s_; }

 private:
  double s_;
};

}  // namespace netmon::core
