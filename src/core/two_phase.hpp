// Two-phase baseline: first choose monitor locations, then set rates.
//
// Suh et al. (paper ref. [10]) "address the problem of placing monitors
// and set their sampling rates ... They propose a two phase approach
// where they first find the links that should be monitored and then run
// a second optimization algorithm to set the sampling rates. ... Their
// formulation leads to a set of heuristics that find near-optimal
// solutions", whereas the paper's joint formulation certifies the global
// optimum. This module implements that baseline so the gap can be
// measured: phase 1 greedily selects up to K links by covered task volume
// per unit load; phase 2 runs the (optimal) rate assignment restricted to
// the selected links.
#pragma once

#include "core/problem.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// Two-phase options.
struct TwoPhaseOptions {
  /// Maximum number of monitors phase 1 may select.
  std::size_t max_monitors = 4;
};

/// Outcome: the selected monitor set and the resulting placement.
struct TwoPhaseResult {
  std::vector<topo::LinkId> selected;
  PlacementSolution solution;
  /// Fraction of the task's packet volume crossing >= 1 selected link.
  double covered_fraction = 0.0;
};

/// Runs the two-phase heuristic on the same inputs as PlacementProblem.
/// Phase 1 greedy score: (task packets newly covered) / (link load) —
/// coverage per unit budget cost, the natural analogue of [10]'s
/// maximize-sampled-flows goal. Phase 2 reuses the gradient-projection
/// solver restricted to the selection, so any remaining gap to the joint
/// optimum is attributable to the placement split, not to rate tuning.
TwoPhaseResult two_phase_placement(const topo::Graph& graph,
                                   const MeasurementTask& task,
                                   const traffic::LinkLoads& loads,
                                   ProblemOptions options,
                                   const TwoPhaseOptions& two_phase = {},
                                   const opt::SolverOptions& solver = {});

}  // namespace netmon::core
