#include "core/exact_rate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::core {

double exact_total_utility(const PlacementProblem& problem,
                           const sampling::RateVector& rates) {
  double total = 0.0;
  for (std::size_t k = 0; k < problem.routing().od_count(); ++k) {
    const double rho =
        sampling::effective_rate_exact(problem.routing(), k, rates);
    total += problem.utilities()[k]->value(rho);
  }
  return total;
}

ExactRateResult solve_exact_placement(const PlacementProblem& problem,
                                      const ExactRateOptions& options) {
  NETMON_REQUIRE(options.max_rounds >= 1, "need >= 1 SCP round");

  // Round 0: the paper's linearized problem.
  const PlacementSolution linearized = solve_placement(problem,
                                                       options.solver);
  ExactRateResult result;
  result.exact_utility_linearized =
      exact_total_utility(problem, linearized.rates);

  std::vector<double> p = problem.compress(linearized.rates);
  const auto& candidates = problem.candidates();
  const auto& matrix = problem.routing();

  // Candidate index per link for row translation.
  std::vector<std::ptrdiff_t> index(problem.graph().link_count(), -1);
  for (std::size_t j = 0; j < candidates.size(); ++j)
    index[candidates[j]] = static_cast<std::ptrdiff_t>(j);

  for (int round = 1; round <= options.max_rounds; ++round) {
    result.rounds = round;
    const sampling::RateVector rates = problem.expand(p);

    // Tangent plane of rho_exact at p:
    //   rho(q) ~ rho0 + sum_i c_i (q_i - p_i),
    //   c_i = r_i (1 - rho0) / (1 - p_i)   (d rho / d p_i).
    linalg::CsrBuilder builder(candidates.size());
    builder.reserve(matrix.od_count(), matrix.csr().nnz());
    std::vector<double> offsets(matrix.od_count(), 0.0);
    for (std::size_t k = 0; k < matrix.od_count(); ++k) {
      const double rho0 =
          sampling::effective_rate_exact(matrix, k, rates);
      double affine = rho0;
      for (const auto& [link, frac] : matrix.row(k)) {
        if (index[link] < 0) continue;  // not a candidate: fixed at 0
        const std::size_t j = static_cast<std::size_t>(index[link]);
        // Guard the tangent slope against saturated rates (p_i -> 1 or
        // rho0 -> 1 make the exact rate flat/undefined to first order).
        const double miss = std::max(1.0 - rates[link], 1e-9);
        const double c =
            std::max(0.0, frac * (1.0 - rho0) / miss);
        builder.push(j, c);
        affine -= c * p[j];
      }
      builder.finish_row();
      offsets[k] = affine;
    }
    const opt::SeparableConcaveObjective objective(
        builder.build(), problem.utilities(), std::move(offsets));

    const opt::SolveResult inner = opt::maximize(
        objective, problem.constraints(), options.solver, &p);

    // Safeguard: the tangent model can overshoot, so accept the step only
    // if it improves the TRUE (exact-rate) objective; otherwise damp it
    // towards the current iterate (still feasible: the set is convex).
    const double current_exact = exact_total_utility(problem,
                                                     problem.expand(p));
    std::vector<double> candidate = inner.p;
    double step = 1.0;
    bool accepted = false;
    for (int back = 0; back < 6; ++back) {
      if (exact_total_utility(problem, problem.expand(candidate)) >=
          current_exact) {
        accepted = true;
        break;
      }
      step *= 0.5;
      for (std::size_t j = 0; j < p.size(); ++j)
        candidate[j] = p[j] + step * (inner.p[j] - p[j]);
    }
    if (!accepted) break;  // no improving step along this direction

    double move = 0.0, scale = 0.0;
    for (std::size_t j = 0; j < p.size(); ++j) {
      move = std::max(move, std::abs(candidate[j] - p[j]));
      scale = std::max(scale, std::abs(candidate[j]));
    }
    p = std::move(candidate);
    if (move <= options.tolerance * std::max(scale, 1e-12)) break;
  }

  result.solution = evaluate_rates(problem, problem.expand(p));
  result.exact_utility_scp =
      exact_total_utility(problem, result.solution.rates);
  return result;
}

}  // namespace netmon::core
