#include "core/two_phase.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::core {

TwoPhaseResult two_phase_placement(const topo::Graph& graph,
                                   const MeasurementTask& task,
                                   const traffic::LinkLoads& loads,
                                   ProblemOptions options,
                                   const TwoPhaseOptions& two_phase,
                                   const opt::SolverOptions& solver) {
  NETMON_REQUIRE(two_phase.max_monitors >= 1,
                 "two-phase needs >= 1 monitor");

  // Build the unrestricted problem once to get candidates and routing.
  ProblemOptions unrestricted = options;
  unrestricted.restrict_to.clear();
  const PlacementProblem probe(graph, task, loads, unrestricted);
  const routing::RoutingMatrix& matrix = probe.routing();

  // --- Phase 1: greedy coverage per unit load. ---
  std::vector<bool> covered(matrix.od_count(), false);
  std::vector<topo::LinkId> selected;
  while (selected.size() < two_phase.max_monitors) {
    topo::LinkId best = topo::kInvalidId;
    double best_score = 0.0;
    for (topo::LinkId link : probe.candidates()) {
      if (std::find(selected.begin(), selected.end(), link) !=
          selected.end())
        continue;
      double gain = 0.0;
      for (const auto& [k, frac] : matrix.ods_on_link(link)) {
        (void)frac;
        if (!covered[k]) gain += task.expected_packets[k];
      }
      if (gain <= 0.0) continue;
      const double score = gain / loads[link];
      if (score > best_score) {
        best_score = score;
        best = link;
      }
    }
    if (best == topo::kInvalidId) break;  // nothing new to cover
    selected.push_back(best);
    for (const auto& [k, frac] : matrix.ods_on_link(best)) {
      (void)frac;
      covered[k] = true;
    }
  }
  NETMON_REQUIRE(!selected.empty(), "phase 1 selected no monitor");

  // --- Phase 2: optimal rates on the selected links only. ---
  // ODs not covered by the selection would make the restricted problem
  // report zero effective rate for them — that is exactly the penalty of
  // a bad phase-1 choice, and it must show in the evaluation.
  options.restrict_to = selected;
  // A small selection may be unable to absorb the full budget (theta
  // exceeds what the chosen links can sample): the surplus is simply
  // wasted, another cost of splitting placement from rate assignment.
  double absorbable = 0.0;
  for (topo::LinkId link : selected)
    absorbable += loads[link] * task.interval_sec * options.default_alpha;
  options.theta = std::min(options.theta, absorbable * (1.0 - 1e-9));
  const PlacementProblem restricted(graph, task, loads, options);
  TwoPhaseResult result;
  result.selected = std::move(selected);
  result.solution = solve_placement(restricted, solver);

  double total = 0.0, covered_packets = 0.0;
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    total += task.expected_packets[k];
    if (covered[k]) covered_packets += task.expected_packets[k];
  }
  result.covered_fraction = total > 0.0 ? covered_packets / total : 0.0;
  return result;
}

}  // namespace netmon::core
