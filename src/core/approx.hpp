// The approximation tier: partitioned block solves with a certified
// optimality-gap bound, for instances where one exact gradient-projection
// solve is too slow even parallelized.
//
// The decomposition exploits the problem's structure: the objective
// f(p) = sum_k M_k((Rp)_k) couples groups only through terms whose paths
// cross group boundaries, and the single budget equality couples them
// through the shared theta. solve_approx runs block-Jacobi rounds:
//
//   1. Split theta across groups proportionally to each group's budget
//      capacity cap_g = sum_{j in g} u_j alpha_j (theta_g <= cap_g holds
//      automatically because theta <= sum cap_g).
//   2. Per round, build each group's subproblem with FROZEN offsets: for
//      every term k touching group g, a_k = x_k - (R_g p_g)_k under the
//      current stitched iterate, so the subobjective sees the rest of
//      the network as a constant. Solve all groups independently in
//      parallel (runtime::ThreadPool). Each subsolve meets its own
//      budget equality sum_{j in g} u_j p_j = theta_g, so the stitched
//      point satisfies the full budget exactly.
//   3. Between rounds, rebalance theta_g by the groups' budget duals
//      lambda_g (marginal utility per unit of budget) — a capped
//      water-fill toward equalized marginals, the optimality condition
//      of the budget split.
//   4. Polish: a bounded number of full-problem gradient-projection
//      iterations warm-started from the stitched point (intra-solve
//      parallel when a pool is given) restores cross-group budget
//      optimality beyond what the water-fill reached.
//
// The returned solution carries a Frank-Wolfe certificate
// (opt/certificate.hpp): f* <= f(p_hat) + gap, computed from one full
// gradient — so the tier's accuracy is *measured*, never assumed.
#pragma once

#include <cstddef>

#include "core/partition.hpp"
#include "core/problem.hpp"
#include "core/solver.hpp"
#include "opt/certificate.hpp"
#include "opt/gradient_projection.hpp"
#include "runtime/thread_pool.hpp"

namespace netmon::core {

/// Approximation-tier knobs.
struct ApproxOptions {
  /// Block-Jacobi rounds before the polish (>= 1).
  std::size_t rounds = 2;
  /// Solver configuration for the per-group subsolves.
  opt::SolverOptions subsolver;
  /// Iteration cap of the full-problem polish; 0 disables polishing.
  int polish_iterations = 100;
  /// Solver configuration for the polish (max_iterations is overridden
  /// by polish_iterations; pool by `pool`).
  opt::SolverOptions polish;
  /// Fans group subsolves out and parallelizes the polish. Null = serial.
  runtime::ThreadPool* pool = nullptr;
  /// Warm start (candidate space, feasible); null = initial point.
  const std::vector<double>* warm = nullptr;
};

/// Outcome of an approximate solve.
struct ApproxResult {
  PlacementSolution solution;
  opt::GapCertificate certificate;
  /// Groups actually solved (after empty-group compaction).
  std::size_t groups = 0;
  /// Total subsolve iterations across all groups and rounds.
  long long subsolve_iterations = 0;
};

/// Solves `problem` approximately over `partition`. The solution's
/// tier/certified_gap fields carry the certificate.
ApproxResult solve_approx(const PlacementProblem& problem,
                          const Partition& partition,
                          const ApproxOptions& options = {});

/// Tier selection policy: when does an instance leave the exact path?
struct TierPolicy {
  /// Candidate-count threshold at or above which the approximate tier is
  /// chosen. Paper-scale instances (GEANT: dozens of candidates) always
  /// stay exact.
  std::size_t approx_min_candidates = 4096;
  /// Optional deadline (ms). When positive, instances whose predicted
  /// exact solve exceeds it also route to the approximate tier.
  double deadline_ms = 0.0;
  /// Predicted exact-solve throughput used against the deadline:
  /// candidates processed per millisecond per iteration budget. The
  /// default is deliberately conservative (measured two-orders below
  /// typical hardware) so deadline routing only fires on clearly
  /// oversized instances.
  double exact_candidates_per_ms = 50.0;
};

/// Picks the tier for an instance of `candidates` variables.
SolveTier choose_tier(std::size_t candidates, const TierPolicy& policy);

}  // namespace netmon::core
