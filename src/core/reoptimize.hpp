// Warm-started re-optimization.
//
// The paper's operational story is continuous: traffic shifts, links
// fail, and the placement is recomputed. Successive problems are close to
// each other, so starting the gradient projection from the previous rates
// (projected onto the new feasible set) converges in far fewer iterations
// than the cold start — the ablation bench quantifies this.
#pragma once

#include <span>
#include <vector>

#include "core/batch_solver.hpp"
#include "core/problem.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// Projects `previous` rates (full link-id space, e.g. from the placement
/// that was running before the change) onto the new problem's feasible
/// set — Euclidean projection onto {sum u p = theta, 0 <= p <= alpha} in
/// candidate space — and returns the feasible candidate-space start.
std::vector<double> warm_start_point(const PlacementProblem& problem,
                                     const sampling::RateVector& previous);

/// Solves the problem starting from the projected previous rates.
/// `workspace` as in solve_placement: shared iteration scratch for
/// repeated calls.
PlacementSolution resolve_warm(const PlacementProblem& problem,
                               const sampling::RateVector& previous,
                               const opt::SolverOptions& options = {},
                               opt::SolverWorkspace* workspace = nullptr);

/// What-if fan-out: warm-solves every candidate problem (failure
/// scenarios, perturbed loads, alternative budgets) from the same
/// currently-running rates, across the thread pool. result[i] matches
/// problems[i]; outputs are bit-identical at every thread count because
/// each solve is a pure function of (problem, previous).
std::vector<PlacementSolution> resolve_warm_batch(
    std::span<const PlacementProblem* const> problems,
    const sampling::RateVector& previous, const BatchOptions& options = {});

}  // namespace netmon::core
