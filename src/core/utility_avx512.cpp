// Explicit AVX-512F/DQ instantiations of the SRE batch kernels.
//
// Compiled with -O3 -mavx512f -mavx512dq -ffp-contract=off (see
// src/CMakeLists.txt); only called after opt::simd_max_level() has
// confirmed AVX-512F+DQ via CPUID. Same frozen-sequence bit-exactness
// contract as core/utility_avx2.cpp, with three AVX-512 twists:
//
//  - regime selection uses __mmask8 compares (_mm512_cmp_pd_mask) and
//    _mm512_mask_blend_pd instead of sign-bit blendv;
//  - remainders run through the SAME vector body under a tail mask
//    (_mm512_maskz_loadu_pd / _mm512_mask_storeu_pd) — masked-off lanes
//    load 0.0, whose worst case is an inf in the discarded rational leg;
//  - the fast-math reciprocal starts from _mm512_rcp14_pd (14 bits), so
//    two Newton–Raphson steps reach full double precision instead of the
//    three the 12-bit float estimate needs on AVX2.
#ifdef NETMON_HAVE_AVX512

#include <immintrin.h>

#include "core/utility_kernels.hpp"

namespace netmon::core::kernels {

namespace {

/// inv = 1/x, exact (vdivpd).
inline __m512d recip_exact(__m512d x) {
  return _mm512_div_pd(_mm512_set1_pd(1.0), x);
}

/// inv ~= 1/x via vrcp14pd + 2 Newton steps (14 -> 28 -> ~53 bits).
/// NOT bit-exact; gated on relative error by the perf gate.
inline __m512d recip_newton(__m512d x) {
  __m512d r = _mm512_rcp14_pd(x);
  const __m512d one = _mm512_set1_pd(1.0);
  for (int it = 0; it < 2; ++it) {
    const __m512d e = _mm512_fnmadd_pd(x, r, one);  // 1 - x*r
    r = _mm512_fmadd_pd(r, e, r);                   // r + r*e
  }
  return r;
}

/// One 8-lane step of the frozen SreOps sequence under lane mask `active`
/// (0xFF for full vectors, the tail mask for the remainder).
template <__m512d (*Recip)(__m512d), bool kWantValue>
inline void sre_step(const double* cp, const double* x0p, const double* a1p,
                     const double* a2p, const double* x, double* v,
                     double* m1, double* m2, std::size_t i, __mmask8 active,
                     __mmask8& dom_bad) {
  const __m512d one = _mm512_set1_pd(1.0);
  const __m512d neg_two = _mm512_set1_pd(-2.0);
  const __m512d xi = _mm512_maskz_loadu_pd(active, x + i);
  // Domain: ok lanes satisfy x >= -1.0 (quiet compare, so NaN lanes read
  // as violations, matching the scalar reference).
  const __mmask8 ok =
      _mm512_cmp_pd_mask(xi, _mm512_set1_pd(-1.0), _CMP_GE_OQ);
  dom_bad |= static_cast<__mmask8>(active & ~ok);
  const __m512d x0 = _mm512_maskz_loadu_pd(active, x0p + i);
  const __m512d a1 = _mm512_maskz_loadu_pd(active, a1p + i);
  const __m512d a2 = _mm512_maskz_loadu_pd(active, a2p + i);
  const __mmask8 lt = _mm512_cmp_pd_mask(xi, x0, _CMP_LT_OQ);
  const __m512d two_a2 = _mm512_add_pd(a2, a2);
  if (static_cast<__mmask8>(lt | ~active) == 0xFF) {
    // Uniform quadratic block: no reciprocal needed at all.
    if constexpr (kWantValue) {
      _mm512_mask_storeu_pd(v + i, active,
                            _mm512_mul_pd(_mm512_fmadd_pd(a2, xi, a1), xi));
    }
    _mm512_mask_storeu_pd(m1 + i, active, _mm512_fmadd_pd(two_a2, xi, a1));
    _mm512_mask_storeu_pd(m2 + i, active, two_a2);
    return;
  }
  const __m512d c = _mm512_maskz_loadu_pd(active, cp + i);
  const __m512d inv = Recip(xi);
  const __m512d rat_m1 = _mm512_mul_pd(_mm512_mul_pd(c, inv), inv);
  const __m512d rat_m2 = _mm512_mul_pd(neg_two, _mm512_mul_pd(rat_m1, inv));
  if (static_cast<__mmask8>(lt & active) == 0) {
    // Uniform rational block: skip the quadratic leg.
    if constexpr (kWantValue) {
      _mm512_mask_storeu_pd(
          v + i, active, _mm512_fnmadd_pd(c, inv, _mm512_add_pd(one, c)));
    }
    _mm512_mask_storeu_pd(m1 + i, active, rat_m1);
    _mm512_mask_storeu_pd(m2 + i, active, rat_m2);
    return;
  }
  if constexpr (kWantValue) {
    const __m512d quad_v = _mm512_mul_pd(_mm512_fmadd_pd(a2, xi, a1), xi);
    const __m512d rat_v = _mm512_fnmadd_pd(c, inv, _mm512_add_pd(one, c));
    _mm512_mask_storeu_pd(v + i, active,
                          _mm512_mask_blend_pd(lt, rat_v, quad_v));
  }
  _mm512_mask_storeu_pd(
      m1 + i, active,
      _mm512_mask_blend_pd(lt, rat_m1, _mm512_fmadd_pd(two_a2, xi, a1)));
  _mm512_mask_storeu_pd(m2 + i, active,
                        _mm512_mask_blend_pd(lt, rat_m2, two_a2));
}

template <__m512d (*Recip)(__m512d), bool kWantValue>
inline void sre_kernel(const double* soa, std::size_t stride,
                       const double* __restrict x, double* __restrict v,
                       double* __restrict m1, double* __restrict m2,
                       std::size_t n) {
  const double* __restrict cp = soa;
  const double* __restrict x0p = soa + stride;
  const double* __restrict a1p = soa + 2 * stride;
  const double* __restrict a2p = soa + 3 * stride;
  __mmask8 dom_bad = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    sre_step<Recip, kWantValue>(cp, x0p, a1p, a2p, x, v, m1, m2, i, 0xFF,
                                dom_bad);
  }
  if (i < n) {
    const __mmask8 tail =
        static_cast<__mmask8>((1u << (n - i)) - 1u);
    sre_step<Recip, kWantValue>(cp, x0p, a1p, a2p, x, v, m1, m2, i, tail,
                                dom_bad);
  }
  NETMON_REQUIRE(dom_bad == 0, "utility argument out of domain");
}

}  // namespace

void sre_fused_avx512(const double* soa, std::size_t stride, const double* x,
                      double* v, double* m1, double* m2, std::size_t n) {
  sre_kernel<recip_exact, true>(soa, stride, x, v, m1, m2, n);
}

void sre_deriv2_avx512(const double* soa, std::size_t stride,
                       const double* x, double* m1, double* m2,
                       std::size_t n) {
  sre_kernel<recip_exact, false>(soa, stride, x, nullptr, m1, m2, n);
}

void sre_fused_avx512_fm(const double* soa, std::size_t stride,
                         const double* x, double* v, double* m1, double* m2,
                         std::size_t n) {
  sre_kernel<recip_newton, true>(soa, stride, x, v, m1, m2, n);
}

void sre_deriv2_avx512_fm(const double* soa, std::size_t stride,
                          const double* x, double* m1, double* m2,
                          std::size_t n) {
  sre_kernel<recip_newton, false>(soa, stride, x, nullptr, m1, m2, n);
}

void fill_affine_avx512(double* dst, const double* x0, const double* rd,
                        double t, std::size_t n) {
  const __m512d tv = _mm512_set1_pd(t);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i,
                     _mm512_fmadd_pd(tv, _mm512_loadu_pd(rd + i),
                                     _mm512_loadu_pd(x0 + i)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(
        dst + i, tail,
        _mm512_fmadd_pd(tv, _mm512_maskz_loadu_pd(tail, rd + i),
                        _mm512_maskz_loadu_pd(tail, x0 + i)));
  }
}

}  // namespace netmon::core::kernels

#endif  // NETMON_HAVE_AVX512
