// Internet-scale evaluation scenario: a hierarchical topology (topo/
// hierarchical) carrying capacity-proportional background traffic plus a
// gravity fan-out measurement task (traffic/fanout). This is the
// synthetic counterpart of GeantScenario for instances three orders of
// magnitude larger — thousands of nodes, 100k+ links — where the exact
// solver is exercised through the intra-solve parallel path and the
// partitioned approximation tier (core/approx).
#pragma once

#include "core/problem.hpp"
#include "core/task.hpp"
#include "topo/hierarchical.hpp"
#include "traffic/fanout.hpp"
#include "traffic/link_load.hpp"

namespace netmon::core {

/// Scenario knobs.
struct ScaleScenarioOptions {
  /// Topology shape; the default is a small pod fabric usable in tests.
  /// hierarchy_scale_options() yields the 100k+-link instance.
  topo::HierarchyOptions hierarchy;
  /// Measurement-task fan-out shape.
  traffic::FanoutOptions fanout;
  /// Background transit load as a fraction of link capacity. Keeps every
  /// candidate link loaded (u_j > 0) even where no task OD travels.
  double background_utilization = 0.02;
  /// Measurement interval (paper: 5 minutes).
  double interval_sec = 300.0;
};

/// The assembled scenario. Keep it alive while problems built from it
/// are in use (they reference its graph).
struct ScaleScenario {
  topo::HierarchicalNetwork net;
  MeasurementTask task;
  /// The fan-out demands routed to produce the task's share of `loads`.
  traffic::TrafficMatrix demands;
  /// Per-link loads (pkt/s): background plus routed task demands.
  traffic::LinkLoads loads;
};

/// Builds the scenario: topology, fan-out task, loads.
ScaleScenario make_scale_scenario(const ScaleScenarioOptions& options = {});

/// A theta that keeps the instance interesting: `fraction` of the maximum
/// feasible budget sum_j u_j alpha_j over the task's candidate links
/// (alpha = 1). Scale instances have no Table-I calibration, so the
/// budget must be derived from the generated loads.
double default_scale_theta(const ScaleScenario& scenario,
                           double fraction = 0.01);

/// Builds the placement problem of the scenario. When options.theta is
/// unset (<= 0), default_scale_theta(scenario) is used.
PlacementProblem make_problem(const ScaleScenario& scenario,
                              ProblemOptions options);

}  // namespace netmon::core
