#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "util/json.hpp"

namespace netmon::core {

void write_report(std::ostream& out, const PlacementSolution& solution,
                  const topo::Graph& graph) {
  JsonWriter json(out);
  json.begin_object();
  json.key("status").value(solution.status == opt::SolveStatus::kOptimal
                               ? "optimal"
                               : solution.status == opt::SolveStatus::kCancelled
                                     ? "cancelled"
                                     : "iteration_limit");
  json.key("iterations").value(solution.iterations);
  json.key("release_events").value(solution.release_events);
  json.key("lambda").value(solution.lambda);
  json.key("budget_used").value(solution.budget_used);
  json.key("total_utility").value(solution.total_utility);

  json.key("monitors").begin_array();
  for (topo::LinkId id : solution.active_monitors) {
    json.begin_object();
    json.key("link").value(graph.link_name(id));
    json.key("link_id").value(static_cast<std::uint64_t>(id));
    json.key("rate").value(solution.rates[id]);
    json.end_object();
  }
  json.end_array();

  json.key("od_pairs").begin_array();
  for (const OdReport& od : solution.per_od) {
    json.begin_object();
    json.key("src").value(graph.node(od.od.src).name);
    json.key("dst").value(graph.node(od.od.dst).name);
    json.key("expected_packets").value(od.expected_packets);
    json.key("rho_approx").value(od.rho_approx);
    json.key("rho_exact").value(od.rho_exact);
    json.key("utility").value(od.utility);
    json.key("monitored_on").begin_array();
    for (topo::LinkId id : od.monitored_links)
      json.value(graph.link_name(id));
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

std::string report_json(const PlacementSolution& solution,
                        const topo::Graph& graph) {
  std::ostringstream out;
  write_report(out, solution, graph);
  return out.str();
}

}  // namespace netmon::core
