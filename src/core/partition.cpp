#include "core/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>

#include "util/error.hpp"

namespace netmon::core {

namespace {

/// Builds a Partition from a per-candidate group label, compacting
/// empty groups so group indices are dense.
Partition from_labels(const std::vector<std::size_t>& label,
                      std::size_t label_count) {
  std::vector<std::size_t> remap(label_count, SIZE_MAX);
  Partition part;
  part.group_of_candidate.resize(label.size());
  for (std::size_t j = 0; j < label.size(); ++j) {
    std::size_t& slot = remap[label[j]];
    if (slot == SIZE_MAX) {
      slot = part.groups.size();
      part.groups.emplace_back();
    }
    part.groups[slot].push_back(j);
    part.group_of_candidate[j] = slot;
  }
  return part;
}

}  // namespace

Partition partition_by_region(const PlacementProblem& problem,
                              const topo::HierarchicalNetwork& net) {
  NETMON_REQUIRE(net.region_of_node.size() == problem.graph().node_count(),
                 "hierarchy does not match the problem's graph");
  const std::vector<topo::LinkId>& candidates = problem.candidates();
  std::vector<std::size_t> label(candidates.size());
  std::size_t max_region = 0;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const topo::Link& link = problem.graph().link(candidates[j]);
    label[j] = net.region_of_node[link.src];
    max_region = std::max(max_region, label[j]);
  }
  return from_labels(label, max_region + 1);
}

Partition partition_bfs(const PlacementProblem& problem,
                        std::size_t target_groups) {
  NETMON_REQUIRE(target_groups >= 1, "need at least one group");
  const topo::Graph& graph = problem.graph();
  const std::size_t nodes = graph.node_count();
  NETMON_REQUIRE(nodes >= 1, "graph is empty");

  // BFS order over all components, lowest unvisited node first.
  std::vector<topo::NodeId> order;
  order.reserve(nodes);
  std::vector<bool> visited(nodes, false);
  std::deque<topo::NodeId> frontier;
  for (topo::NodeId start = 0; start < nodes; ++start) {
    if (visited[start]) continue;
    visited[start] = true;
    frontier.push_back(start);
    while (!frontier.empty()) {
      const topo::NodeId v = frontier.front();
      frontier.pop_front();
      order.push_back(v);
      for (topo::LinkId id : graph.out_links(v)) {
        const topo::NodeId w = graph.link(id).dst;
        if (!visited[w]) {
          visited[w] = true;
          frontier.push_back(w);
        }
      }
    }
  }

  // Contiguous BFS slices of roughly equal node count.
  const std::size_t groups = std::min(target_groups, nodes);
  std::vector<std::size_t> group_of_node(nodes);
  for (std::size_t i = 0; i < order.size(); ++i)
    group_of_node[order[i]] = i * groups / nodes;

  const std::vector<topo::LinkId>& candidates = problem.candidates();
  std::vector<std::size_t> label(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j)
    label[j] = group_of_node[graph.link(candidates[j]).src];
  return from_labels(label, groups);
}

Partition partition_auto(const PlacementProblem& problem,
                         const topo::HierarchicalNetwork* net,
                         std::size_t target_groups) {
  if (net != nullptr) return partition_by_region(problem, *net);
  return partition_bfs(problem, target_groups);
}

}  // namespace netmon::core
