// Naive monitoring strategies the paper compares against (§V-C), plus
// helpers to size the capacity they would need.
#pragma once

#include "core/problem.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// "Enable NetFlow on all routers with a very low rate" (paper §I,
/// option (i)): one uniform rate on every candidate link, chosen so the
/// whole budget theta is consumed: p = theta / sum_j u_j (capped at the
/// alpha bound, in which case part of the budget goes unused).
sampling::RateVector uniform_rates(const PlacementProblem& problem);

/// All the budget on one link: p_link = min(theta/u_link, alpha, 1).
/// The link may be any link of the graph — including the (non-candidate)
/// access link, which is exactly the first naive solution of §V-C.
sampling::RateVector single_link_rates(const PlacementProblem& problem,
                                       topo::LinkId link);

/// Capacity theta (packets per interval) that a single-link strategy
/// needs to give every OD pair crossing that link an effective rate
/// target_rho: theta = target_rho * U_link * interval.
double theta_for_single_link(const PlacementProblem& problem,
                             topo::LinkId link, double target_rho);

/// Convenience for Fig. 2: solve the problem restricted to a monitor set
/// (e.g. the six UK links). Equivalent to rebuilding the problem with
/// ProblemOptions::restrict_to and solving.
PlacementSolution solve_restricted(const topo::Graph& graph,
                                   const MeasurementTask& task,
                                   const traffic::LinkLoads& loads,
                                   ProblemOptions options,
                                   std::vector<topo::LinkId> monitor_set,
                                   const opt::SolverOptions& solver = {});

}  // namespace netmon::core
