#include "core/strategies.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::core {

sampling::RateVector uniform_rates(const PlacementProblem& problem) {
  const auto& constraints = problem.constraints();
  const auto& u = constraints.loads();
  double total = 0.0;
  for (double uj : u) total += uj;
  const double p = constraints.theta() / total;
  std::vector<double> x(u.size());
  for (std::size_t j = 0; j < u.size(); ++j)
    x[j] = std::min(p, constraints.upper()[j]);
  return problem.expand(x);
}

sampling::RateVector single_link_rates(const PlacementProblem& problem,
                                       topo::LinkId link) {
  NETMON_REQUIRE(link < problem.graph().link_count(), "link out of range");
  NETMON_REQUIRE(problem.loads()[link] > 0.0,
                 "single-link strategy on an unloaded link");
  const double u = problem.loads()[link] * problem.interval_sec();
  const double p = std::min(1.0, problem.theta() / u);
  sampling::RateVector rates(problem.graph().link_count(), 0.0);
  rates[link] = p;
  return rates;
}

double theta_for_single_link(const PlacementProblem& problem,
                             topo::LinkId link, double target_rho) {
  NETMON_REQUIRE(link < problem.graph().link_count(), "link out of range");
  NETMON_REQUIRE(target_rho > 0.0 && target_rho <= 1.0,
                 "target effective rate out of (0,1]");
  return target_rho * problem.loads()[link] * problem.interval_sec();
}

PlacementSolution solve_restricted(const topo::Graph& graph,
                                   const MeasurementTask& task,
                                   const traffic::LinkLoads& loads,
                                   ProblemOptions options,
                                   std::vector<topo::LinkId> monitor_set,
                                   const opt::SolverOptions& solver) {
  options.restrict_to = std::move(monitor_set);
  const PlacementProblem problem(graph, task, loads, options);
  return solve_placement(problem, solver);
}

}  // namespace netmon::core
