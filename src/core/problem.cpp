#include "core/problem.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/utility.hpp"
#include "util/error.hpp"

namespace netmon::core {

namespace {

routing::RoutingMatrix build_matrix(const topo::Graph& graph,
                                    const MeasurementTask& task,
                                    const ProblemOptions& options) {
  return options.ecmp
             ? routing::RoutingMatrix::ecmp(graph, task.ods, options.failed)
             : routing::RoutingMatrix::single_path(graph, task.ods,
                                                   options.failed);
}

}  // namespace

PlacementProblem::PlacementProblem(const topo::Graph& graph,
                                   MeasurementTask task,
                                   traffic::LinkLoads loads,
                                   ProblemOptions options)
    : graph_(graph),
      task_(std::move(task)),
      loads_(std::move(loads)),
      options_(std::move(options)),
      matrix_(build_matrix(graph_, task_, options_)) {
  NETMON_REQUIRE(task_.ods.size() == task_.expected_packets.size(),
                 "task OD/size vectors must be aligned");
  NETMON_REQUIRE(!task_.ods.empty(), "task must contain >= 1 OD pair");
  NETMON_REQUIRE(loads_.size() == graph_.link_count(),
                 "one load per link required");
  NETMON_REQUIRE(task_.interval_sec > 0.0, "interval must be positive");

  // Candidate monitors: links of L (traversed by F), monitorable, loaded,
  // and inside the restriction set when one is given.
  std::unordered_set<topo::LinkId> allowed(options_.restrict_to.begin(),
                                           options_.restrict_to.end());
  for (topo::LinkId id : matrix_.links_used()) {
    if (!graph_.link(id).monitorable) continue;
    if (!allowed.empty() && !allowed.count(id)) continue;
    NETMON_REQUIRE(loads_[id] > 0.0,
                   "candidate link with zero load: " + graph_.link_name(id));
    candidates_.push_back(id);
  }
  NETMON_REQUIRE(!candidates_.empty(),
                 "no candidate monitor can observe the task");

  candidate_index_.assign(graph_.link_count(), std::nullopt);
  for (std::size_t j = 0; j < candidates_.size(); ++j)
    candidate_index_[candidates_[j]] = j;

  // Per-OD utilities: c_k = 1 / expected interval size, optionally scaled
  // by the task's priority weights.
  NETMON_REQUIRE(task_.weights.empty() ||
                     task_.weights.size() == task_.ods.size(),
                 "one weight per OD pair required when weights are given");
  utilities_.reserve(task_.ods.size());
  for (std::size_t k = 0; k < task_.expected_packets.size(); ++k) {
    const double s = task_.expected_packets[k];
    NETMON_REQUIRE(s >= 2.0, "expected OD size must be >= 2 packets");
    std::shared_ptr<const opt::Concave1d> u =
        std::make_shared<SreUtility>(1.0 / s);
    if (!task_.weights.empty() && task_.weights[k] != 1.0) {
      u = std::make_shared<WeightedUtility>(std::move(u), task_.weights[k]);
    }
    utilities_.push_back(std::move(u));
  }

  // Objective rows in candidate space (non-candidate links dropped: no
  // monitor can be activated there), built straight into a CSR arena.
  linalg::CsrBuilder builder(candidates_.size());
  builder.reserve(task_.ods.size(), matrix_.csr().nnz());
  for (std::size_t k = 0; k < task_.ods.size(); ++k) {
    for (const auto& [link, frac] : matrix_.row(k)) {
      if (candidate_index_[link]) builder.push(*candidate_index_[link], frac);
    }
    builder.finish_row();
  }
  objective_ = std::make_unique<opt::SeparableConcaveObjective>(
      builder.build(), utilities_);

  // Constraints: budget in packets per interval.
  std::vector<double> u(candidates_.size());
  std::vector<double> alpha(candidates_.size());
  for (std::size_t j = 0; j < candidates_.size(); ++j) {
    u[j] = loads_[candidates_[j]] * task_.interval_sec;
    alpha[j] = options_.default_alpha;
  }
  constraints_ = std::make_unique<opt::BoxBudgetConstraints>(
      std::move(u), std::move(alpha), options_.theta);
}

sampling::RateVector PlacementProblem::expand(
    std::span<const double> x) const {
  NETMON_REQUIRE(x.size() == candidates_.size(),
                 "candidate-space dimension mismatch");
  sampling::RateVector rates(graph_.link_count(), 0.0);
  for (std::size_t j = 0; j < candidates_.size(); ++j)
    rates[candidates_[j]] = x[j];
  return rates;
}

std::vector<double> PlacementProblem::compress(
    const sampling::RateVector& rates) const {
  NETMON_REQUIRE(rates.size() == graph_.link_count(),
                 "full rate vector dimension mismatch");
  std::vector<double> x(candidates_.size());
  for (std::size_t j = 0; j < candidates_.size(); ++j)
    x[j] = rates[candidates_[j]];
  return x;
}

double PlacementProblem::budget_used(const sampling::RateVector& rates) const {
  NETMON_REQUIRE(rates.size() == graph_.link_count(),
                 "full rate vector dimension mismatch");
  double sum = 0.0;
  for (topo::LinkId id = 0; id < rates.size(); ++id)
    sum += rates[id] * loads_[id] * task_.interval_sec;
  return sum;
}

}  // namespace netmon::core
