// Router configuration generation.
//
// The output a network operator actually deploys: per-router sampling
// stanzas derived from a PlacementSolution. Rates are quantized to the
// 1-in-N form router implementations accept (NetFlow/J-Flow sample one
// packet every N), which introduces a small, reported, quantization error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace netmon::core {

/// One router's sampling configuration.
struct RouterConfig {
  topo::NodeId router = topo::kInvalidId;
  struct Interface {
    topo::LinkId link = topo::kInvalidId;
    /// 1-in-N packet sampling (N = round(1/p)).
    std::uint32_t sample_one_in = 0;
    /// The exact optimal rate, for reference.
    double exact_rate = 0.0;
    /// Relative error introduced by quantizing to 1/N.
    double quantization_error = 0.0;
  };
  std::vector<Interface> interfaces;
};

/// Groups the solution's active monitors by their router (the link's
/// source node) and quantizes rates to 1-in-N. Rates that would quantize
/// to N > max_interval are clamped (and flagged by a larger error).
std::vector<RouterConfig> router_configs(const PlacementSolution& solution,
                                         const topo::Graph& graph,
                                         std::uint32_t max_interval = 16000);

/// Renders one router's config as a Juniper-flavoured text stanza.
std::string render_config(const RouterConfig& config,
                          const topo::Graph& graph);

/// Worst quantization error across all interfaces of all routers.
double worst_quantization_error(const std::vector<RouterConfig>& configs);

}  // namespace netmon::core
