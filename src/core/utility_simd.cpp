// Vectorized instantiations of the fused utility kernels.
//
// This TU (and only this TU) is compiled with the auto-vectorization
// flag set — -O3 -ftree-vectorize -fno-trapping-math -fno-math-errno —
// wired up in src/CMakeLists.txt when the NETMON_SIMD option is ON. The
// loop bodies are the exact templates the scalar reference kernels
// instantiate (core/utility_kernels.hpp); the VectorPath tag only forces
// a distinct symbol so this TU's codegen is actually used. None of the
// extra flags change floating-point results (no -ffast-math, no FMA
// contraction on the SSE2 baseline), so the vectorized kernels are
// bit-identical to the scalar ones — enforced by tests/opt_fused_eval_
// test.cpp across utility families and pivot regimes.
#ifdef NETMON_HAVE_SIMD

#include "core/utility_kernels.hpp"

namespace netmon::core::kernels {

void sre_fused_simd(const double* soa, std::size_t stride, const double* x,
                    double* v, double* m1, double* m2, std::size_t n) {
  fused<SreOps, VectorPath>(soa, stride, x, v, m1, m2, n);
}

void sre_deriv2_simd(const double* soa, std::size_t stride, const double* x,
                     double* m1, double* m2, std::size_t n) {
  deriv2<SreOps, VectorPath>(soa, stride, x, m1, m2, n);
}

}  // namespace netmon::core::kernels

#endif  // NETMON_HAVE_SIMD
