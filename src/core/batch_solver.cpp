#include "core/batch_solver.hpp"

#include "core/reoptimize.hpp"
#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::core {

BatchSolver::BatchSolver(BatchOptions options) : options_(std::move(options)) {
  NETMON_REQUIRE(options_.chain_chunk >= 1, "chain_chunk must be >= 1");
  if (options_.metrics != nullptr) {
    counters_ = obs::register_solver_counters(*options_.metrics);
    iterations_hist_ = options_.metrics->histogram(
        "netmon_solver_iterations",
        {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0},
        "Gradient-projection iterations per solve");
  }
  instrumented_ = options_.metrics != nullptr || options_.trace != nullptr;
  effective_solver_ = options_.solver;
  if (instrumented_) {
    if (effective_solver_.trace == nullptr)
      effective_solver_.trace = options_.trace;
    effective_solver_.counters = counters_;
  }
}

std::vector<PlacementSolution> BatchSolver::solve(
    std::span<const PlacementProblem* const> problems) const {
  const std::size_t n = problems.size();
  std::vector<PlacementSolution> solutions(n);
  for (std::size_t i = 0; i < n; ++i)
    NETMON_REQUIRE(problems[i] != nullptr, "null problem in batch");
  if (n == 0) return solutions;

  runtime::ThreadPool pool(options_.threads);

  if (!options_.warm_chain) {
    // Chunked fan-out with one solver workspace per chunk: each chunk
    // runs on one worker, so its solves reuse the same iteration scratch
    // (satellite of the zero-allocation hot path). Chunk layout is a pure
    // function of n — results stay bit-identical at every thread count.
    const auto chunks = runtime::make_chunks(n);
    runtime::parallel_for(pool, chunks.size(), [&](std::size_t c) {
      opt::SolverWorkspace workspace;
      for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i) {
        solutions[i] =
            solve_placement(*problems[i], effective_solver_, &workspace);
        solves_.fetch_add(1, std::memory_order_relaxed);
        iterations_hist_.observe(
            static_cast<double>(solutions[i].iterations));
      }
    });
    return solutions;
  }

  // Warm chaining: chunks of chain_chunk consecutive problems run
  // serially (problem i warm-starts from i-1's rates); distinct chunks
  // run in parallel. The chunk layout depends only on chain_chunk, so
  // the outputs are thread-count independent.
  const std::size_t chunk = options_.chain_chunk;
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  runtime::parallel_for(pool, chunk_count, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    opt::SolverWorkspace workspace;
    solutions[begin] =
        solve_placement(*problems[begin], effective_solver_, &workspace);
    solves_.fetch_add(1, std::memory_order_relaxed);
    iterations_hist_.observe(static_cast<double>(solutions[begin].iterations));
    for (std::size_t i = begin + 1; i < end; ++i) {
      solutions[i] = resolve_warm(*problems[i], solutions[i - 1].rates,
                                  effective_solver_, &workspace);
      solves_.fetch_add(1, std::memory_order_relaxed);
      iterations_hist_.observe(static_cast<double>(solutions[i].iterations));
    }
  });
  return solutions;
}

std::vector<PlacementSolution> BatchSolver::solve_items(
    std::span<const BatchItem> items) const {
  runtime::ThreadPool pool(options_.threads);
  return solve_items(pool, items);
}

std::vector<PlacementSolution> BatchSolver::solve_items(
    runtime::ThreadPool& pool, std::span<const BatchItem> items) const {
  const std::size_t n = items.size();
  std::vector<PlacementSolution> solutions(n);
  for (const BatchItem& item : items)
    NETMON_REQUIRE(item.problem != nullptr, "null problem in batch item");
  if (n == 0) return solutions;

  // Chunked fan-out with one solver workspace per chunk, exactly like
  // solve(): the chunk layout is a pure function of n, and each item is
  // solved by a pure function of (problem, warm, options), so the batch
  // composition never leaks into the results.
  const auto chunks = runtime::make_chunks(n);
  runtime::parallel_for(pool, chunks.size(), [&](std::size_t c) {
    opt::SolverWorkspace workspace;
    opt::SolverOptions overlay;  // per-item options + instrumentation
    for (std::size_t i = chunks[c].first; i < chunks[c].second; ++i) {
      const BatchItem& item = items[i];
      // Tier selection: items carrying a partition may route to the
      // approximation tier by size or deadline. The approx solve runs on
      // the chunk worker (its own subsolve fan-out, if configured, is a
      // nested TaskGroup whose waits help, so any pool size is safe).
      if (item.partition != nullptr || options_.approx_groups > 0) {
        TierPolicy policy = options_.tier;
        if (item.deadline_ms > 0.0) policy.deadline_ms = item.deadline_ms;
        if (choose_tier(item.problem->candidates().size(), policy) ==
            SolveTier::kApprox) {
          if (item.partition != nullptr) {
            solutions[i] =
                solve_approx(*item.problem, *item.partition, options_.approx)
                    .solution;
          } else {
            const Partition part =
                partition_bfs(*item.problem, options_.approx_groups);
            solutions[i] =
                solve_approx(*item.problem, part, options_.approx).solution;
          }
          solves_.fetch_add(1, std::memory_order_relaxed);
          iterations_hist_.observe(
              static_cast<double>(solutions[i].iterations));
          continue;
        }
      }
      const opt::SolverOptions* solver = &effective_solver_;
      if (item.solver != nullptr) {
        if (instrumented_) {
          overlay = *item.solver;
          if (overlay.trace == nullptr) overlay.trace = options_.trace;
          overlay.counters = counters_;
          solver = &overlay;
        } else {
          solver = item.solver;
        }
      }
      solutions[i] =
          item.warm
              ? resolve_warm(*item.problem, *item.warm, *solver, &workspace)
              : solve_placement(*item.problem, *solver, &workspace);
      solves_.fetch_add(1, std::memory_order_relaxed);
      iterations_hist_.observe(static_cast<double>(solutions[i].iterations));
    }
  });
  return solutions;
}

std::vector<PlacementSolution> BatchSolver::solve(
    const std::vector<PlacementProblem>& problems) const {
  std::vector<const PlacementProblem*> pointers;
  pointers.reserve(problems.size());
  for (const PlacementProblem& problem : problems)
    pointers.push_back(&problem);
  return solve(std::span<const PlacementProblem* const>(pointers));
}

std::vector<PlacementProblem> make_theta_sweep(
    const topo::Graph& graph, const MeasurementTask& task,
    const traffic::LinkLoads& loads, const ProblemOptions& base,
    std::span<const double> thetas) {
  std::vector<PlacementProblem> problems;
  problems.reserve(thetas.size());
  for (const double theta : thetas) {
    ProblemOptions options = base;
    options.theta = theta;
    problems.emplace_back(graph, task, loads, options);
  }
  return problems;
}

}  // namespace netmon::core
