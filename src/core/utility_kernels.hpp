// Per-family utility math shared by the scalar virtuals, the scalar
// batch kernels and the vectorized batch kernels — one source of truth,
// so every dispatch path is bit-identical by construction.
//
// Layout contract (see opt::Concave1d::BatchKernel): parameters are
// structure-of-arrays, parameter j of term i at soa[j * stride + i].
// Each Ops struct gathers its pack with load(), states its domain with
// in_domain(), and computes value/deriv/second as BRANCH-FREE selects:
// both sides of the pivot are evaluated and the comparison picks one,
// which is what lets the compiler if-convert and vectorize the loops.
// The discarded lane may divide by zero — that is well-defined IEEE
// arithmetic (inf) and the result is never selected.
//
// The loop templates take a Tag type parameter solely to force DISTINCT
// instantiations in the scalar TU (core/utility.cpp, default flags) and
// the SIMD TU (core/utility_simd.cpp, -O3 + vectorization flags): with a
// shared inline symbol the linker would merge the two and the dispatch
// knob would be a no-op. None of the enabled flags change floating-point
// results (-fno-trapping-math / -fno-math-errno only licence speculation
// and drop errno), so the two instantiations stay bit-identical.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/error.hpp"

namespace netmon::core::kernels {

struct ScalarPath;  // tag: reference instantiation (core/utility.cpp)
struct VectorPath;  // tag: vectorized instantiation (core/utility_simd.cpp)

/// SRE utility (paper eq. 7 linearized below the pivot x0):
///   M(x) = (a1 + a2 x) x        for x < x0
///   M(x) = 1 + c - c / x        for x >= x0
/// Pack layout {c, x0, a1, a2}.
struct SreOps {
  struct P {
    double c, x0, a1, a2;
  };
  static inline P load(const double* soa, std::size_t stride,
                       std::size_t i) {
    return {soa[i], soa[stride + i], soa[2 * stride + i],
            soa[3 * stride + i]};
  }
  static inline bool in_domain(const P&, double x) { return x >= -1.0; }
  static inline double value(const P& q, double x) {
    const double quad = (q.a1 + q.a2 * x) * x;
    const double rat = 1.0 + q.c - q.c / x;  // = 1 - c(1-x)/x
    return x < q.x0 ? quad : rat;
  }
  static inline double deriv(const P& q, double x) {
    const double quad = q.a1 + 2.0 * q.a2 * x;
    const double rat = q.c / (x * x);
    return x < q.x0 ? quad : rat;
  }
  static inline double second(const P& q, double x) {
    const double quad = 2.0 * q.a2;
    const double rat = -2.0 * q.c / (x * x * x);
    return x < q.x0 ? quad : rat;
  }
};

/// Logarithmic utility M(x) = ln(1 + x/eps). Pack layout {eps}.
struct LogOps {
  struct P {
    double eps;
  };
  static inline P load(const double* soa, std::size_t /*stride*/,
                       std::size_t i) {
    return {soa[i]};
  }
  static inline bool in_domain(const P& q, double x) { return x > -q.eps; }
  static inline double value(const P& q, double x) {
    return std::log1p(x / q.eps);
  }
  static inline double deriv(const P& q, double x) {
    return 1.0 / (q.eps + x);
  }
  static inline double second(const P& q, double x) {
    return -1.0 / ((q.eps + x) * (q.eps + x));
  }
};

/// Detection utility M(x) = 1 - (1-x)^S on the clamped rate. Pack {s}.
struct DetectOps {
  struct P {
    double s;
  };
  static inline P load(const double* soa, std::size_t /*stride*/,
                       std::size_t i) {
    return {soa[i]};
  }
  static inline bool in_domain(const P&, double x) { return x >= -1e-9; }
  static inline double clamp_rate(double x) {
    return std::min(std::max(x, 0.0), 1.0 - 1e-12);
  }
  static inline double value(const P& q, double x) {
    const double c = clamp_rate(x);
    return -std::expm1(q.s * std::log1p(-c));  // 1 - (1-c)^S
  }
  static inline double deriv(const P& q, double x) {
    const double c = clamp_rate(x);
    return q.s * std::exp((q.s - 1.0) * std::log1p(-c));
  }
  static inline double second(const P& q, double x) {
    const double c = clamp_rate(x);
    return -q.s * (q.s - 1.0) * std::exp((q.s - 2.0) * std::log1p(-c));
  }
};

/// Domain pre-check over a whole run: a single fold the vectorizer
/// handles, then one NETMON_REQUIRE. (The historical per-element check
/// threw mid-run; a domain violation is fatal either way.)
template <typename Ops>
inline void check_domain(const double* soa, std::size_t stride,
                         const double* x, std::size_t n) {
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i)
    ok &= Ops::in_domain(Ops::load(soa, stride, i), x[i]);
  NETMON_REQUIRE(ok, "utility argument out of domain");
}

template <typename Ops, typename Tag>
void map_value(const double* soa, std::size_t stride,
               const double* __restrict x, double* __restrict out,
               std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::value(Ops::load(soa, stride, i), x[i]);
}

template <typename Ops, typename Tag>
void map_deriv(const double* soa, std::size_t stride,
               const double* __restrict x, double* __restrict out,
               std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::deriv(Ops::load(soa, stride, i), x[i]);
}

template <typename Ops, typename Tag>
void map_second(const double* soa, std::size_t stride,
                const double* __restrict x, double* __restrict out,
                std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::second(Ops::load(soa, stride, i), x[i]);
}

/// M, M', M'' from one pass over x — the fused evaluation kernel.
template <typename Ops, typename Tag>
void fused(const double* soa, std::size_t stride,
           const double* __restrict x, double* __restrict v,
           double* __restrict m1, double* __restrict m2, std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i) {
    const typename Ops::P q = Ops::load(soa, stride, i);
    const double xi = x[i];
    v[i] = Ops::value(q, xi);
    m1[i] = Ops::deriv(q, xi);
    m2[i] = Ops::second(q, xi);
  }
}

/// M', M'' only (line-search probes skip the value).
template <typename Ops, typename Tag>
void deriv2(const double* soa, std::size_t stride,
            const double* __restrict x, double* __restrict m1,
            double* __restrict m2, std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i) {
    const typename Ops::P q = Ops::load(soa, stride, i);
    const double xi = x[i];
    m1[i] = Ops::deriv(q, xi);
    m2[i] = Ops::second(q, xi);
  }
}

#ifdef NETMON_HAVE_SIMD
// Vectorized instantiations, defined in core/utility_simd.cpp (the TU
// compiled with -O3 and the vectorization flags). SRE is the family
// whose math is pure arithmetic and actually vectorizes; the log and
// detection families are libm-bound, so their fused kernels stay in the
// scalar TU and the dispatch falls through.
void sre_fused_simd(const double* soa, std::size_t stride, const double* x,
                    double* v, double* m1, double* m2, std::size_t n);
void sre_deriv2_simd(const double* soa, std::size_t stride, const double* x,
                     double* m1, double* m2, std::size_t n);
#endif

}  // namespace netmon::core::kernels
