// Per-family utility math shared by the scalar virtuals, the scalar
// batch kernels and the explicit-SIMD batch kernels — one source of
// truth, so every dispatch level is bit-identical by construction.
//
// Layout contract (see opt::Concave1d::BatchKernel): parameters are
// structure-of-arrays, parameter j of term i at soa[j * stride + i].
// Each Ops struct gathers its pack with load(), states its domain with
// in_domain(), and computes value/deriv/second as BRANCH-FREE selects:
// both sides of the pivot are evaluated and the comparison picks one.
// The discarded lane may divide by zero — that is well-defined IEEE
// arithmetic (inf) and the result is never selected.
//
// Bit-exactness contract. The vector kernels (core/utility_avx2.cpp,
// core/utility_avx512.cpp) replay EXACTLY the operation sequence the Ops
// structs define, lane for lane: same divisions, same multiplication
// association, fused multiply-adds written explicitly as std::fma here
// and as vfmadd/vfnmadd intrinsics there (both correctly rounded, hence
// bitwise equal). Because of that the sequence below is a frozen
// contract — reassociating it changes results on every dispatch path at
// once (fine), but changing it in ONE path breaks the EXPECT_EQ gates in
// tests/opt_simd_dispatch_test.cpp. All three TUs that instantiate this
// math are compiled with -ffp-contract=off so the compiler can neither
// add nor remove fusions behind the source's back (relevant for the
// -march=x86-64-v3 CI leg, where contraction would otherwise kick in).
//
// The SRE family is restructured around ONE reciprocal: inv = 1/x is the
// only division, and value/deriv/second of the rational leg are derived
// from it multiplicatively. That single division is what the AVX kernels
// amortize (one vdivpd per 4/8 lanes — or a rcp14+Newton refinement on
// the fast-math leg, which is NOT bit-exact and gated on relative error
// instead; see DESIGN.md §8).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "util/error.hpp"

namespace netmon::core::kernels {

/// SRE utility (paper eq. 7 linearized below the pivot x0):
///   M(x) = (a1 + a2 x) x        for x < x0
///   M(x) = 1 + c - c / x        for x >= x0
/// Pack layout {c, x0, a1, a2}; pivot parameter index 1 (x0).
///
/// Frozen operation sequence (shared with the vector kernels):
///   inv     = 1 / x                      — the only division
///   quad_v  = fma(a2, x, a1) * x
///   rat_v   = fma(-c, inv, 1 + c)        — = 1 + c - c/x up to rounding
///   quad_m1 = fma(a2 + a2, x, a1)
///   rat_m1  = (c * inv) * inv
///   quad_m2 = a2 + a2
///   rat_m2  = -2 * (rat_m1 * inv)
/// selected by the quiet ordered compare x < x0.
struct SreOps {
  struct P {
    double c, x0, a1, a2;
  };
  static inline P load(const double* soa, std::size_t stride,
                       std::size_t i) {
    return {soa[i], soa[stride + i], soa[2 * stride + i],
            soa[3 * stride + i]};
  }
  static inline bool in_domain(const P&, double x) { return x >= -1.0; }
  static inline double value(const P& q, double x) {
    const double inv = 1.0 / x;
    const double quad = std::fma(q.a2, x, q.a1) * x;
    const double rat = std::fma(-q.c, inv, 1.0 + q.c);
    return x < q.x0 ? quad : rat;
  }
  static inline double deriv(const P& q, double x) {
    const double inv = 1.0 / x;
    const double quad = std::fma(q.a2 + q.a2, x, q.a1);
    const double rat = (q.c * inv) * inv;
    return x < q.x0 ? quad : rat;
  }
  static inline double second(const P& q, double x) {
    const double inv = 1.0 / x;
    const double quad = q.a2 + q.a2;
    const double rat = -2.0 * (((q.c * inv) * inv) * inv);
    return x < q.x0 ? quad : rat;
  }
  /// All three from one reciprocal — what the fused kernels run. Each
  /// output is bit-identical to its standalone entry point above (the
  /// per-entry op sequences are the same; only the division is shared,
  /// and 1/x is a pure function of x).
  static inline void fused1(const P& q, double x, double& v, double& m1,
                            double& m2) {
    const double inv = 1.0 / x;
    const bool lt = x < q.x0;
    const double two_a2 = q.a2 + q.a2;
    v = lt ? std::fma(q.a2, x, q.a1) * x : std::fma(-q.c, inv, 1.0 + q.c);
    const double rat_m1 = (q.c * inv) * inv;
    m1 = lt ? std::fma(two_a2, x, q.a1) : rat_m1;
    m2 = lt ? two_a2 : -2.0 * (rat_m1 * inv);
  }
  static inline void deriv2_1(const P& q, double x, double& m1, double& m2) {
    const double inv = 1.0 / x;
    const bool lt = x < q.x0;
    const double two_a2 = q.a2 + q.a2;
    const double rat_m1 = (q.c * inv) * inv;
    m1 = lt ? std::fma(two_a2, x, q.a1) : rat_m1;
    m2 = lt ? two_a2 : -2.0 * (rat_m1 * inv);
  }
};

/// Logarithmic utility M(x) = ln(1 + x/eps). Pack layout {eps}.
/// Libm-bound (log1p): scalar-only, no vector variants.
struct LogOps {
  struct P {
    double eps;
  };
  static inline P load(const double* soa, std::size_t /*stride*/,
                       std::size_t i) {
    return {soa[i]};
  }
  static inline bool in_domain(const P& q, double x) { return x > -q.eps; }
  static inline double value(const P& q, double x) {
    return std::log1p(x / q.eps);
  }
  static inline double deriv(const P& q, double x) {
    return 1.0 / (q.eps + x);
  }
  static inline double second(const P& q, double x) {
    return -1.0 / ((q.eps + x) * (q.eps + x));
  }
  static inline void fused1(const P& q, double x, double& v, double& m1,
                            double& m2) {
    v = value(q, x);
    m1 = deriv(q, x);
    m2 = second(q, x);
  }
  static inline void deriv2_1(const P& q, double x, double& m1, double& m2) {
    m1 = deriv(q, x);
    m2 = second(q, x);
  }
};

/// Detection utility M(x) = 1 - (1-x)^S on the clamped rate. Pack {s}.
/// Libm-bound (expm1/exp/log1p): scalar-only, no vector variants.
struct DetectOps {
  struct P {
    double s;
  };
  static inline P load(const double* soa, std::size_t /*stride*/,
                       std::size_t i) {
    return {soa[i]};
  }
  static inline bool in_domain(const P&, double x) { return x >= -1e-9; }
  static inline double clamp_rate(double x) {
    return std::min(std::max(x, 0.0), 1.0 - 1e-12);
  }
  static inline double value(const P& q, double x) {
    const double c = clamp_rate(x);
    return -std::expm1(q.s * std::log1p(-c));  // 1 - (1-c)^S
  }
  static inline double deriv(const P& q, double x) {
    const double c = clamp_rate(x);
    return q.s * std::exp((q.s - 1.0) * std::log1p(-c));
  }
  static inline double second(const P& q, double x) {
    const double c = clamp_rate(x);
    return -q.s * (q.s - 1.0) * std::exp((q.s - 2.0) * std::log1p(-c));
  }
  static inline void fused1(const P& q, double x, double& v, double& m1,
                            double& m2) {
    v = value(q, x);
    m1 = deriv(q, x);
    m2 = second(q, x);
  }
  static inline void deriv2_1(const P& q, double x, double& m1, double& m2) {
    m1 = deriv(q, x);
    m2 = second(q, x);
  }
};

/// Domain pre-check over a whole run: a single fold, then one
/// NETMON_REQUIRE. (A domain violation is fatal either way; the vector
/// kernels fold the same check into their main loop and raise the same
/// error after the pass.)
template <typename Ops>
inline void check_domain(const double* soa, std::size_t stride,
                         const double* x, std::size_t n) {
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i)
    ok &= Ops::in_domain(Ops::load(soa, stride, i), x[i]);
  NETMON_REQUIRE(ok, "utility argument out of domain");
}

// Scalar reference kernels. Instantiated ONLY in core/utility.cpp, which
// is pinned to -fno-tree-vectorize -ffp-contract=off: NETMON_SIMD=scalar
// means genuinely scalar execution, and the compiler cannot fuse or
// vectorize the reference path into something the leveled dispatch would
// then be compared against.

template <typename Ops>
void map_value(const double* soa, std::size_t stride,
               const double* __restrict x, double* __restrict out,
               std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::value(Ops::load(soa, stride, i), x[i]);
}

template <typename Ops>
void map_deriv(const double* soa, std::size_t stride,
               const double* __restrict x, double* __restrict out,
               std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::deriv(Ops::load(soa, stride, i), x[i]);
}

template <typename Ops>
void map_second(const double* soa, std::size_t stride,
                const double* __restrict x, double* __restrict out,
                std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = Ops::second(Ops::load(soa, stride, i), x[i]);
}

/// M, M', M'' from one pass over x — the fused evaluation kernel.
template <typename Ops>
void fused(const double* soa, std::size_t stride,
           const double* __restrict x, double* __restrict v,
           double* __restrict m1, double* __restrict m2, std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    Ops::fused1(Ops::load(soa, stride, i), x[i], v[i], m1[i], m2[i]);
}

/// M', M'' only (line-search probes skip the value).
template <typename Ops>
void deriv2(const double* soa, std::size_t stride,
            const double* __restrict x, double* __restrict m1,
            double* __restrict m2, std::size_t n) {
  check_domain<Ops>(soa, stride, x, n);
  for (std::size_t i = 0; i < n; ++i)
    Ops::deriv2_1(Ops::load(soa, stride, i), x[i], m1[i], m2[i]);
}

/// Line-search probe points: dst[i] = fma(t, rd[i], x0[i]). The scalar
/// reference (core/utility.cpp) uses std::fma so the vector variants'
/// vfmadd produces the same bits; dispatched via fill_affine below.
void fill_affine_scalar(double* __restrict dst, const double* __restrict x0,
                        const double* __restrict rd, double t, std::size_t n);

#ifdef NETMON_HAVE_AVX2
// Explicit AVX2+FMA kernels (core/utility_avx2.cpp, compiled with
// -mavx2 -mfma). Bit-exact variants replay the Ops sequence with vdivpd;
// the _fm (fast-math) variants replace the division with a reciprocal
// estimate + Newton refinement — ≤ ~1e-12 relative error, NOT bit-exact.
void sre_fused_avx2(const double* soa, std::size_t stride, const double* x,
                    double* v, double* m1, double* m2, std::size_t n);
void sre_deriv2_avx2(const double* soa, std::size_t stride, const double* x,
                     double* m1, double* m2, std::size_t n);
void sre_fused_avx2_fm(const double* soa, std::size_t stride,
                       const double* x, double* v, double* m1, double* m2,
                       std::size_t n);
void sre_deriv2_avx2_fm(const double* soa, std::size_t stride,
                        const double* x, double* m1, double* m2,
                        std::size_t n);
void fill_affine_avx2(double* dst, const double* x0, const double* rd,
                      double t, std::size_t n);
#endif

#ifdef NETMON_HAVE_AVX512
// Explicit AVX-512F kernels (core/utility_avx512.cpp, -mavx512f -mavx512dq).
void sre_fused_avx512(const double* soa, std::size_t stride, const double* x,
                      double* v, double* m1, double* m2, std::size_t n);
void sre_deriv2_avx512(const double* soa, std::size_t stride,
                       const double* x, double* m1, double* m2,
                       std::size_t n);
void sre_fused_avx512_fm(const double* soa, std::size_t stride,
                         const double* x, double* v, double* m1, double* m2,
                         std::size_t n);
void sre_deriv2_avx512_fm(const double* soa, std::size_t stride,
                          const double* x, double* m1, double* m2,
                          std::size_t n);
void fill_affine_avx512(double* dst, const double* x0, const double* rd,
                        double t, std::size_t n);
#endif

}  // namespace netmon::core::kernels
