#include "core/utility.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::core {

SreUtility::SreUtility(double inv_mean_size) : c_(inv_mean_size) {
  NETMON_REQUIRE(c_ > 0.0 && c_ <= 0.5,
                 "E[1/S] must lie in (0, 0.5] for a pivot inside (0,1]");
  x0_ = pivot_for(c_);
  // A*(x) = A(x0) + (x-x0)A'(x0) + (x-x0)^2 A''(x0)/2 with
  // A'(x0) = c/x0^2, A''(x0) = -2c/x0^3; the constant term vanishes by
  // the choice of x0, leaving a1 x + a2 x^2.
  a1_ = 3.0 * c_ / (x0_ * x0_);
  a2_ = -c_ / (x0_ * x0_ * x0_);
}

double SreUtility::value(double x) const {
  // Slightly negative arguments arise from floating-point undershoot at
  // the bounds and from the constant term of the sequential exact-rate
  // linearization; the quadratic branch is their analytic extension.
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0_) return (a1_ + a2_ * x) * x;
  return 1.0 + c_ - c_ / x;  // = 1 - c(1-x)/x
}

double SreUtility::deriv(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0_) return a1_ + 2.0 * a2_ * x;
  return c_ / (x * x);
}

double SreUtility::second(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0_) return 2.0 * a2_;
  return -2.0 * c_ / (x * x * x);
}

LogUtility::LogUtility(double eps) : eps_(eps) {
  NETMON_REQUIRE(eps > 0.0, "log utility eps must be positive");
}

double LogUtility::value(double x) const {
  // The natural domain is x > -eps (where the log diverges); slightly
  // negative arguments arise from linearization offsets.
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return std::log1p(x / eps_);
}

double LogUtility::deriv(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return 1.0 / (eps_ + x);
}

double LogUtility::second(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return -1.0 / ((eps_ + x) * (eps_ + x));
}

WeightedUtility::WeightedUtility(std::shared_ptr<const opt::Concave1d> base,
                                 double weight)
    : base_(std::move(base)), w_(weight) {
  NETMON_REQUIRE(base_ != nullptr, "weighted utility needs a base");
  NETMON_REQUIRE(weight > 0.0, "utility weight must be positive");
}

double WeightedUtility::value(double x) const { return w_ * base_->value(x); }

double WeightedUtility::deriv(double x) const { return w_ * base_->deriv(x); }

double WeightedUtility::second(double x) const {
  return w_ * base_->second(x);
}

namespace {
// Clamp the effective rate into the open domain of (1-x)^S.
double clamp_rate(double x) {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return std::min(std::max(x, 0.0), 1.0 - 1e-12);
}
}  // namespace

DetectionUtility::DetectionUtility(double flow_packets) : s_(flow_packets) {
  NETMON_REQUIRE(flow_packets >= 2.0,
                 "detection utility needs flow size >= 2 packets");
}

double DetectionUtility::value(double x) const {
  const double c = clamp_rate(x);
  return -std::expm1(s_ * std::log1p(-c));  // 1 - (1-c)^S
}

double DetectionUtility::deriv(double x) const {
  const double c = clamp_rate(x);
  return s_ * std::exp((s_ - 1.0) * std::log1p(-c));
}

double DetectionUtility::second(double x) const {
  const double c = clamp_rate(x);
  return -s_ * (s_ - 1.0) * std::exp((s_ - 2.0) * std::log1p(-c));
}

}  // namespace netmon::core
