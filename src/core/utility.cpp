#include "core/utility.hpp"

#include <cmath>

#include "core/utility_kernels.hpp"
#include "util/error.hpp"

namespace netmon::core {

namespace {

using BatchParams = opt::Concave1d::BatchParams;
using BatchKernel = opt::Concave1d::BatchKernel;

// The scalar virtuals and every batch kernel route through the Ops
// structs in core/utility_kernels.hpp, so batch (and vector) evaluation
// is bit-identical to scalar evaluation by construction. This TU is the
// scalar reference: it is pinned to -fno-tree-vectorize
// -ffp-contract=off (src/CMakeLists.txt) so NETMON_SIMD=scalar means
// genuinely scalar, contraction-free execution even under -march flags.
// The leveled vector variants live in core/utility_avx2.cpp and
// core/utility_avx512.cpp; which slot runs is a runtime decision
// (opt::simd_dispatch_level).

const BatchKernel kSreKernel{
    .value = kernels::map_value<kernels::SreOps>,
    .deriv = kernels::map_deriv<kernels::SreOps>,
    .second = kernels::map_second<kernels::SreOps>,
    .fused = kernels::fused<kernels::SreOps>,
    .deriv2 = kernels::deriv2<kernels::SreOps>,
    .fused_lvl =
        {
#ifdef NETMON_HAVE_AVX2
            kernels::sre_fused_avx2,
#else
            nullptr,
#endif
#ifdef NETMON_HAVE_AVX512
            kernels::sre_fused_avx512,
#else
            nullptr,
#endif
        },
    .deriv2_lvl =
        {
#ifdef NETMON_HAVE_AVX2
            kernels::sre_deriv2_avx2,
#else
            nullptr,
#endif
#ifdef NETMON_HAVE_AVX512
            kernels::sre_deriv2_avx512,
#else
            nullptr,
#endif
        },
    .fused_fm =
        {
#ifdef NETMON_HAVE_AVX2
            kernels::sre_fused_avx2_fm,
#else
            nullptr,
#endif
#ifdef NETMON_HAVE_AVX512
            kernels::sre_fused_avx512_fm,
#else
            nullptr,
#endif
        },
    .deriv2_fm =
        {
#ifdef NETMON_HAVE_AVX2
            kernels::sre_deriv2_avx2_fm,
#else
            nullptr,
#endif
#ifdef NETMON_HAVE_AVX512
            kernels::sre_deriv2_avx512_fm,
#else
            nullptr,
#endif
        },
    .pivot_param = 1,  // x0 splits the quadratic / rational regimes
};

const BatchKernel kLogKernel{
    .value = kernels::map_value<kernels::LogOps>,
    .deriv = kernels::map_deriv<kernels::LogOps>,
    .second = kernels::map_second<kernels::LogOps>,
    .fused = kernels::fused<kernels::LogOps>,
    .deriv2 = kernels::deriv2<kernels::LogOps>,
    // libm-bound (log1p): no vector variants, every level falls back to
    // the scalar reference; single regime, no pivot.
};

const BatchKernel kDetectKernel{
    .value = kernels::map_value<kernels::DetectOps>,
    .deriv = kernels::map_deriv<kernels::DetectOps>,
    .second = kernels::map_second<kernels::DetectOps>,
    .fused = kernels::fused<kernels::DetectOps>,
    .deriv2 = kernels::deriv2<kernels::DetectOps>,
    // libm-bound (expm1/exp): scalar-only; single regime, no pivot.
};

}  // namespace

void kernels::fill_affine_scalar(double* __restrict dst,
                                 const double* __restrict x0,
                                 const double* __restrict rd, double t,
                                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = std::fma(t, rd[i], x0[i]);
}

SreUtility::SreUtility(double inv_mean_size) : c_(inv_mean_size) {
  NETMON_REQUIRE(c_ > 0.0 && c_ <= 0.5,
                 "E[1/S] must lie in (0, 0.5] for a pivot inside (0,1]");
  x0_ = pivot_for(c_);
  // A*(x) = A(x0) + (x-x0)A'(x0) + (x-x0)^2 A''(x0)/2 with
  // A'(x0) = c/x0^2, A''(x0) = -2c/x0^3; the constant term vanishes by
  // the choice of x0, leaving a1 x + a2 x^2.
  a1_ = 3.0 * c_ / (x0_ * x0_);
  a2_ = -c_ / (x0_ * x0_ * x0_);
}

double SreUtility::value(double x) const {
  // Slightly negative arguments arise from floating-point undershoot at
  // the bounds and from the constant term of the sequential exact-rate
  // linearization; the quadratic branch is their analytic extension.
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::value({c_, x0_, a1_, a2_}, x);
}

double SreUtility::deriv(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::deriv({c_, x0_, a1_, a2_}, x);
}

double SreUtility::second(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::second({c_, x0_, a1_, a2_}, x);
}

const BatchKernel* SreUtility::batch_kernel(BatchParams& params) const {
  params = {c_, x0_, a1_, a2_};
  return &kSreKernel;
}

LogUtility::LogUtility(double eps) : eps_(eps) {
  NETMON_REQUIRE(eps > 0.0, "log utility eps must be positive");
}

double LogUtility::value(double x) const {
  // The natural domain is x > -eps (where the log diverges); slightly
  // negative arguments arise from linearization offsets.
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::value({eps_}, x);
}

double LogUtility::deriv(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::deriv({eps_}, x);
}

double LogUtility::second(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::second({eps_}, x);
}

const BatchKernel* LogUtility::batch_kernel(BatchParams& params) const {
  params = {eps_, 0.0, 0.0, 0.0};
  return &kLogKernel;
}

WeightedUtility::WeightedUtility(std::shared_ptr<const opt::Concave1d> base,
                                 double weight)
    : base_(std::move(base)), w_(weight) {
  NETMON_REQUIRE(base_ != nullptr, "weighted utility needs a base");
  NETMON_REQUIRE(weight > 0.0, "utility weight must be positive");
}

double WeightedUtility::value(double x) const { return w_ * base_->value(x); }

double WeightedUtility::deriv(double x) const { return w_ * base_->deriv(x); }

double WeightedUtility::second(double x) const {
  return w_ * base_->second(x);
}

DetectionUtility::DetectionUtility(double flow_packets) : s_(flow_packets) {
  NETMON_REQUIRE(flow_packets >= 2.0,
                 "detection utility needs flow size >= 2 packets");
}

double DetectionUtility::value(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::value({s_}, x);
}

double DetectionUtility::deriv(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::deriv({s_}, x);
}

double DetectionUtility::second(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::second({s_}, x);
}

const BatchKernel* DetectionUtility::batch_kernel(BatchParams& params) const {
  params = {s_, 0.0, 0.0, 0.0};
  return &kDetectKernel;
}

}  // namespace netmon::core
