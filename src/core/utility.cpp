#include "core/utility.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::core {

namespace {

using BatchParams = opt::Concave1d::BatchParams;
using BatchKernel = opt::Concave1d::BatchKernel;

// The scalar virtuals and the batch kernels below share these inline
// helpers, so batch evaluation is bit-identical to scalar evaluation by
// construction. SRE parameter pack layout: {c, x0, a1, a2}.

inline double sre_value(double c, double x0, double a1, double a2, double x) {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0) return (a1 + a2 * x) * x;
  return 1.0 + c - c / x;  // = 1 - c(1-x)/x
}

inline double sre_deriv(double c, double x0, double a1, double a2, double x) {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0) return a1 + 2.0 * a2 * x;
  return c / (x * x);
}

inline double sre_second(double c, double x0, double /*a1*/, double a2,
                         double x) {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  if (x < x0) return 2.0 * a2;
  return -2.0 * c / (x * x * x);
}

const BatchKernel kSreKernel{
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = sre_value(q[i][0], q[i][1], q[i][2], q[i][3], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = sre_deriv(q[i][0], q[i][1], q[i][2], q[i][3], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = sre_second(q[i][0], q[i][1], q[i][2], q[i][3], x[i]);
    },
};

// Log parameter pack layout: {eps}.

inline double log_value(double eps, double x) {
  // The natural domain is x > -eps (where the log diverges); slightly
  // negative arguments arise from linearization offsets.
  NETMON_REQUIRE(x > -eps, "utility argument out of domain");
  return std::log1p(x / eps);
}

inline double log_deriv(double eps, double x) {
  NETMON_REQUIRE(x > -eps, "utility argument out of domain");
  return 1.0 / (eps + x);
}

inline double log_second(double eps, double x) {
  NETMON_REQUIRE(x > -eps, "utility argument out of domain");
  return -1.0 / ((eps + x) * (eps + x));
}

const BatchKernel kLogKernel{
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) out[i] = log_value(q[i][0], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) out[i] = log_deriv(q[i][0], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) out[i] = log_second(q[i][0], x[i]);
    },
};

// Clamp the effective rate into the open domain of (1-x)^S.
inline double clamp_rate(double x) {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return std::min(std::max(x, 0.0), 1.0 - 1e-12);
}

// Detection parameter pack layout: {s}.

inline double detect_value(double s, double x) {
  const double c = clamp_rate(x);
  return -std::expm1(s * std::log1p(-c));  // 1 - (1-c)^S
}

inline double detect_deriv(double s, double x) {
  const double c = clamp_rate(x);
  return s * std::exp((s - 1.0) * std::log1p(-c));
}

inline double detect_second(double s, double x) {
  const double c = clamp_rate(x);
  return -s * (s - 1.0) * std::exp((s - 2.0) * std::log1p(-c));
}

const BatchKernel kDetectKernel{
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) out[i] = detect_value(q[i][0], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) out[i] = detect_deriv(q[i][0], x[i]);
    },
    [](const BatchParams* q, const double* x, double* out, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = detect_second(q[i][0], x[i]);
    },
};

}  // namespace

SreUtility::SreUtility(double inv_mean_size) : c_(inv_mean_size) {
  NETMON_REQUIRE(c_ > 0.0 && c_ <= 0.5,
                 "E[1/S] must lie in (0, 0.5] for a pivot inside (0,1]");
  x0_ = pivot_for(c_);
  // A*(x) = A(x0) + (x-x0)A'(x0) + (x-x0)^2 A''(x0)/2 with
  // A'(x0) = c/x0^2, A''(x0) = -2c/x0^3; the constant term vanishes by
  // the choice of x0, leaving a1 x + a2 x^2.
  a1_ = 3.0 * c_ / (x0_ * x0_);
  a2_ = -c_ / (x0_ * x0_ * x0_);
}

double SreUtility::value(double x) const {
  // Slightly negative arguments arise from floating-point undershoot at
  // the bounds and from the constant term of the sequential exact-rate
  // linearization; the quadratic branch is their analytic extension.
  return sre_value(c_, x0_, a1_, a2_, x);
}

double SreUtility::deriv(double x) const {
  return sre_deriv(c_, x0_, a1_, a2_, x);
}

double SreUtility::second(double x) const {
  return sre_second(c_, x0_, a1_, a2_, x);
}

const BatchKernel* SreUtility::batch_kernel(BatchParams& params) const {
  params = {c_, x0_, a1_, a2_};
  return &kSreKernel;
}

LogUtility::LogUtility(double eps) : eps_(eps) {
  NETMON_REQUIRE(eps > 0.0, "log utility eps must be positive");
}

double LogUtility::value(double x) const { return log_value(eps_, x); }

double LogUtility::deriv(double x) const { return log_deriv(eps_, x); }

double LogUtility::second(double x) const { return log_second(eps_, x); }

const BatchKernel* LogUtility::batch_kernel(BatchParams& params) const {
  params = {eps_, 0.0, 0.0, 0.0};
  return &kLogKernel;
}

WeightedUtility::WeightedUtility(std::shared_ptr<const opt::Concave1d> base,
                                 double weight)
    : base_(std::move(base)), w_(weight) {
  NETMON_REQUIRE(base_ != nullptr, "weighted utility needs a base");
  NETMON_REQUIRE(weight > 0.0, "utility weight must be positive");
}

double WeightedUtility::value(double x) const { return w_ * base_->value(x); }

double WeightedUtility::deriv(double x) const { return w_ * base_->deriv(x); }

double WeightedUtility::second(double x) const {
  return w_ * base_->second(x);
}

DetectionUtility::DetectionUtility(double flow_packets) : s_(flow_packets) {
  NETMON_REQUIRE(flow_packets >= 2.0,
                 "detection utility needs flow size >= 2 packets");
}

double DetectionUtility::value(double x) const { return detect_value(s_, x); }

double DetectionUtility::deriv(double x) const { return detect_deriv(s_, x); }

double DetectionUtility::second(double x) const {
  return detect_second(s_, x);
}

const BatchKernel* DetectionUtility::batch_kernel(BatchParams& params) const {
  params = {s_, 0.0, 0.0, 0.0};
  return &kDetectKernel;
}

}  // namespace netmon::core
