#include "core/utility.hpp"

#include <cmath>

#include "core/utility_kernels.hpp"
#include "util/error.hpp"

namespace netmon::core {

namespace {

using BatchParams = opt::Concave1d::BatchParams;
using BatchKernel = opt::Concave1d::BatchKernel;

// The scalar virtuals and every batch kernel route through the Ops
// structs in core/utility_kernels.hpp, so batch (and SIMD) evaluation is
// bit-identical to scalar evaluation by construction. The ScalarPath tag
// pins these instantiations to this TU's (default) compile flags; the
// VectorPath instantiations live in core/utility_simd.cpp.

const BatchKernel kSreKernel{
    kernels::map_value<kernels::SreOps, kernels::ScalarPath>,
    kernels::map_deriv<kernels::SreOps, kernels::ScalarPath>,
    kernels::map_second<kernels::SreOps, kernels::ScalarPath>,
    kernels::fused<kernels::SreOps, kernels::ScalarPath>,
    kernels::deriv2<kernels::SreOps, kernels::ScalarPath>,
#ifdef NETMON_HAVE_SIMD
    kernels::sre_fused_simd,
    kernels::sre_deriv2_simd,
#else
    nullptr,
    nullptr,
#endif
};

const BatchKernel kLogKernel{
    kernels::map_value<kernels::LogOps, kernels::ScalarPath>,
    kernels::map_deriv<kernels::LogOps, kernels::ScalarPath>,
    kernels::map_second<kernels::LogOps, kernels::ScalarPath>,
    kernels::fused<kernels::LogOps, kernels::ScalarPath>,
    kernels::deriv2<kernels::LogOps, kernels::ScalarPath>,
    nullptr,  // libm-bound: no vectorized variant
    nullptr,
};

const BatchKernel kDetectKernel{
    kernels::map_value<kernels::DetectOps, kernels::ScalarPath>,
    kernels::map_deriv<kernels::DetectOps, kernels::ScalarPath>,
    kernels::map_second<kernels::DetectOps, kernels::ScalarPath>,
    kernels::fused<kernels::DetectOps, kernels::ScalarPath>,
    kernels::deriv2<kernels::DetectOps, kernels::ScalarPath>,
    nullptr,  // libm-bound: no vectorized variant
    nullptr,
};

}  // namespace

SreUtility::SreUtility(double inv_mean_size) : c_(inv_mean_size) {
  NETMON_REQUIRE(c_ > 0.0 && c_ <= 0.5,
                 "E[1/S] must lie in (0, 0.5] for a pivot inside (0,1]");
  x0_ = pivot_for(c_);
  // A*(x) = A(x0) + (x-x0)A'(x0) + (x-x0)^2 A''(x0)/2 with
  // A'(x0) = c/x0^2, A''(x0) = -2c/x0^3; the constant term vanishes by
  // the choice of x0, leaving a1 x + a2 x^2.
  a1_ = 3.0 * c_ / (x0_ * x0_);
  a2_ = -c_ / (x0_ * x0_ * x0_);
}

double SreUtility::value(double x) const {
  // Slightly negative arguments arise from floating-point undershoot at
  // the bounds and from the constant term of the sequential exact-rate
  // linearization; the quadratic branch is their analytic extension.
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::value({c_, x0_, a1_, a2_}, x);
}

double SreUtility::deriv(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::deriv({c_, x0_, a1_, a2_}, x);
}

double SreUtility::second(double x) const {
  NETMON_REQUIRE(x >= -1.0, "utility argument out of domain");
  return kernels::SreOps::second({c_, x0_, a1_, a2_}, x);
}

const BatchKernel* SreUtility::batch_kernel(BatchParams& params) const {
  params = {c_, x0_, a1_, a2_};
  return &kSreKernel;
}

LogUtility::LogUtility(double eps) : eps_(eps) {
  NETMON_REQUIRE(eps > 0.0, "log utility eps must be positive");
}

double LogUtility::value(double x) const {
  // The natural domain is x > -eps (where the log diverges); slightly
  // negative arguments arise from linearization offsets.
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::value({eps_}, x);
}

double LogUtility::deriv(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::deriv({eps_}, x);
}

double LogUtility::second(double x) const {
  NETMON_REQUIRE(x > -eps_, "utility argument out of domain");
  return kernels::LogOps::second({eps_}, x);
}

const BatchKernel* LogUtility::batch_kernel(BatchParams& params) const {
  params = {eps_, 0.0, 0.0, 0.0};
  return &kLogKernel;
}

WeightedUtility::WeightedUtility(std::shared_ptr<const opt::Concave1d> base,
                                 double weight)
    : base_(std::move(base)), w_(weight) {
  NETMON_REQUIRE(base_ != nullptr, "weighted utility needs a base");
  NETMON_REQUIRE(weight > 0.0, "utility weight must be positive");
}

double WeightedUtility::value(double x) const { return w_ * base_->value(x); }

double WeightedUtility::deriv(double x) const { return w_ * base_->deriv(x); }

double WeightedUtility::second(double x) const {
  return w_ * base_->second(x);
}

DetectionUtility::DetectionUtility(double flow_packets) : s_(flow_packets) {
  NETMON_REQUIRE(flow_packets >= 2.0,
                 "detection utility needs flow size >= 2 packets");
}

double DetectionUtility::value(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::value({s_}, x);
}

double DetectionUtility::deriv(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::deriv({s_}, x);
}

double DetectionUtility::second(double x) const {
  NETMON_REQUIRE(x >= -1e-9, "utility argument must be >= 0");
  return kernels::DetectOps::second({s_}, x);
}

const BatchKernel* DetectionUtility::batch_kernel(BatchParams& params) const {
  params = {s_, 0.0, 0.0, 0.0};
  return &kDetectKernel;
}

}  // namespace netmon::core
