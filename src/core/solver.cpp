#include "core/solver.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::core {

namespace {

PlacementSolution report(const PlacementProblem& problem,
                         sampling::RateVector rates) {
  PlacementSolution solution;
  solution.rates = std::move(rates);
  const routing::RoutingMatrix& matrix = problem.routing();

  for (topo::LinkId id = 0; id < solution.rates.size(); ++id) {
    if (solution.rates[id] > kActiveRateThreshold)
      solution.active_monitors.push_back(id);
  }

  solution.per_od.resize(matrix.od_count());
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    OdReport& od = solution.per_od[k];
    od.od = matrix.od(k);
    od.expected_packets = problem.task().expected_packets[k];
    od.rho_approx =
        sampling::effective_rate_approx(matrix, k, solution.rates);
    od.rho_exact = sampling::effective_rate_exact(matrix, k, solution.rates);
    od.utility = problem.utilities()[k]->value(od.rho_approx);
    if (od.rho_approx > 0.0) {
      const double rel_sigma = std::sqrt(
          (1.0 - std::min(od.rho_approx, 1.0)) /
          (od.expected_packets * od.rho_approx));
      od.predicted_accuracy = 1.0 - std::sqrt(2.0 / M_PI) * rel_sigma;
    }
    for (const auto& [link, frac] : matrix.row(k)) {
      if (solution.rates[link] > kActiveRateThreshold)
        od.monitored_links.push_back(link);
    }
    solution.total_utility += od.utility;
  }
  solution.budget_used = problem.budget_used(solution.rates);
  return solution;
}

}  // namespace

PlacementSolution solve_placement(const PlacementProblem& problem,
                                  const opt::SolverOptions& options,
                                  opt::SolverWorkspace* workspace) {
  const opt::SolveResult raw = opt::maximize(
      problem.objective(), problem.constraints(), options, nullptr, workspace);
  PlacementSolution solution = report(problem, problem.expand(raw.p));
  solution.status = raw.status;
  solution.iterations = raw.iterations;
  solution.release_events = raw.release_events;
  solution.lambda = raw.lambda;
  return solution;
}

PlacementSolution evaluate_rates(const PlacementProblem& problem,
                                 const sampling::RateVector& rates) {
  NETMON_REQUIRE(rates.size() == problem.graph().link_count(),
                 "rate vector must cover every link");
  return report(problem, rates);
}

}  // namespace netmon::core
