#include "core/controller.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::core {

MonitorController::MonitorController(const topo::Graph& graph,
                                     MeasurementTask task,
                                     ControllerOptions options)
    : graph_(graph), task_(std::move(task)), options_(options) {
  NETMON_REQUIRE(options_.min_utility_gain >= 0.0,
                 "hysteresis threshold must be >= 0");
}

CycleResult MonitorController::run_cycle(const traffic::LinkLoads& loads,
                                         const routing::LinkSet& failed) {
  ++cycle_;

  ProblemOptions problem_options;
  problem_options.theta = options_.theta;
  problem_options.default_alpha = options_.default_alpha;
  problem_options.failed = failed;
  const PlacementProblem problem(graph_, task_, loads, problem_options);

  CycleResult result;
  result.cycle = cycle_;

  const bool topology_changed = failed != last_failed_;
  last_failed_ = failed;

  if (!have_rates_) {
    result.solution = solve_placement(problem, options_.solver);
    result.reconfigured = true;
    result.utility_gain = result.solution.total_utility;
  } else {
    const PlacementSolution running = evaluate_rates(problem, rates_);
    const PlacementSolution fresh =
        resolve_warm(problem, rates_, options_.solver);
    result.utility_gain = fresh.total_utility - running.total_utility;
    result.budget_violated =
        std::abs(running.budget_used - options_.theta) >
        options_.budget_tolerance * options_.theta;
    if (topology_changed || result.budget_violated ||
        result.utility_gain >= options_.min_utility_gain) {
      result.solution = fresh;
      result.reconfigured = true;
    } else {
      result.solution = running;  // keep the running configuration
    }
  }

  if (result.reconfigured) {
    rates_ = result.solution.rates;
    have_rates_ = true;
    ++reconfigurations_;
  }
  return result;
}

void MonitorController::update_task(MeasurementTask task) {
  NETMON_REQUIRE(!task.ods.empty(), "task must contain >= 1 OD pair");
  task_ = std::move(task);
}

}  // namespace netmon::core
