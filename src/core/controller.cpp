#include "core/controller.hpp"

#include <cmath>

#include "control/actuator.hpp"
#include "util/error.hpp"

namespace netmon::core {

MonitorController::MonitorController(const topo::Graph& graph,
                                     MeasurementTask task,
                                     ControllerOptions options)
    : graph_(graph), task_(std::move(task)), options_(options) {
  NETMON_REQUIRE(options_.min_utility_gain >= 0.0,
                 "hysteresis threshold must be >= 0");
}

CycleResult MonitorController::run_cycle(const traffic::LinkLoads& loads,
                                         const routing::LinkSet& failed) {
  ++cycle_;

  ProblemOptions problem_options;
  problem_options.theta = options_.theta;
  problem_options.default_alpha = options_.default_alpha;
  problem_options.failed = failed;
  const PlacementProblem problem(graph_, task_, loads, problem_options);

  CycleResult result;
  result.cycle = cycle_;

  const bool topology_changed = failed != last_failed_;
  last_failed_ = failed;

  // The push/hold decision is control::Actuator's — one hysteresis
  // implementation for this legacy per-cycle loop and the streaming
  // control::ControlLoop alike.
  const control::Actuator actuator(
      control::ActuatorConfig{options_.min_utility_gain, 0});

  if (!have_rates_) {
    result.solution = solve_placement(problem, options_.solver);
    result.reconfigured = true;
    result.utility_gain = result.solution.total_utility;
  } else {
    const PlacementSolution running = evaluate_rates(problem, rates_);
    const PlacementSolution fresh =
        resolve_warm(problem, rates_, options_.solver);
    result.budget_violated =
        std::abs(running.budget_used - options_.theta) >
        options_.budget_tolerance * options_.theta;
    control::ActuationInput input;
    input.incumbent_utility = running.total_utility;
    input.fresh_utility = fresh.total_utility;
    input.forced = topology_changed || result.budget_violated;
    const control::Actuation actuation = actuator.decide(input);
    result.utility_gain = actuation.utility_gain;
    if (actuation.push) {
      result.solution = fresh;
      result.reconfigured = true;
    } else {
      result.solution = running;  // keep the running configuration
    }
  }

  if (result.reconfigured) {
    rates_ = result.solution.rates;
    have_rates_ = true;
    ++reconfigurations_;
  }
  return result;
}

void MonitorController::update_task(MeasurementTask task) {
  NETMON_REQUIRE(!task.ods.empty(), "task must contain >= 1 OD pair");
  task_ = std::move(task);
}

}  // namespace netmon::core
