// Batch placement solving: fan a set of PlacementProblem scenarios
// (theta sweeps, randomized instances, sensitivity perturbations,
// failure what-ifs) across the runtime thread pool.
//
// Production monitoring re-optimizes continuously over many candidate
// scenarios, so solve *throughput* — not single-solve latency — is the
// binding constraint (cf. Kallitsis et al., Amjad et al. in PAPERS.md).
// Every fan-out here is deterministic: each problem is solved by a pure
// function of its own inputs, and warm-start chaining happens inside
// fixed-size chunks whose boundaries never depend on the thread count,
// so batch outputs are bit-identical at every pool size.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/approx.hpp"
#include "core/partition.hpp"
#include "core/problem.hpp"
#include "core/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/gradient_projection.hpp"
#include "runtime/thread_pool.hpp"

namespace netmon::core {

/// Knobs of a batch solve.
struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread.
  unsigned threads = 0;
  /// Per-problem solver configuration.
  opt::SolverOptions solver;
  /// Warm-start chaining: inside each chunk of `chain_chunk` consecutive
  /// problems, problem i starts from problem i-1's rates (projected onto
  /// the new feasible set). Pays off when consecutive problems are close
  /// (theta sweeps, perturbations); chunk boundaries are fixed by
  /// chain_chunk alone, so results do not depend on the thread count.
  bool warm_chain = false;
  std::size_t chain_chunk = 8;
  /// Observability (obs/). When set, the solver counter family and a
  /// per-solve iteration histogram are registered on this registry and
  /// every solve in every batch reports into them (sharded per worker
  /// thread, so the fan-out never contends). Borrowed; must outlive the
  /// BatchSolver.
  obs::MetricsRegistry* metrics = nullptr;
  /// When set, every solve appends per-iteration records here (records
  /// carry a solve id, so concurrent chunk workers interleave safely).
  /// A per-item SolverOptions::trace, if any, takes precedence.
  obs::SolverTrace* trace = nullptr;
  /// Tier selection for items that carry a partition: instances at or
  /// above tier.approx_min_candidates (or past the deadline prediction)
  /// route to the partitioned approximation tier instead of the exact
  /// solver. Items without a partition always solve exactly.
  TierPolicy tier;
  /// Approximation-tier configuration for routed items. `approx.pool`
  /// is honored as-is (subsolves of one item then fan out onto it; safe
  /// even from batch workers because TaskGroup waits help).
  ApproxOptions approx;
  /// When > 0, items WITHOUT a partition still participate in tier
  /// selection: an item routed to the approximation tier gets a
  /// deterministic BFS partition of this many groups computed on the
  /// fly (core::partition_bfs). 0 = partition-less items stay exact.
  std::size_t approx_groups = 0;
};

/// One unit of a heterogeneous batch: a problem plus optional per-item
/// overrides. Everything is borrowed and must outlive the solve call.
struct BatchItem {
  const PlacementProblem* problem = nullptr;
  /// Warm-start rates (full link-id space); null = cold start.
  const sampling::RateVector* warm = nullptr;
  /// Per-item solver options (e.g. a deadline hook); null = the batch
  /// default. Must not dangle while the batch runs.
  const opt::SolverOptions* solver = nullptr;
  /// Candidate-space partition enabling the approximation tier for this
  /// item (see BatchOptions::tier). Null = always exact.
  const Partition* partition = nullptr;
  /// Per-item deadline fed into tier selection; 0 = the batch policy's.
  double deadline_ms = 0.0;
};

/// Fans placement problems across a thread pool.
class BatchSolver {
 public:
  explicit BatchSolver(BatchOptions options = {});

  /// Solves every problem; result i corresponds to problems[i]. The
  /// problems are borrowed and must outlive the call.
  std::vector<PlacementSolution> solve(
      std::span<const PlacementProblem* const> problems) const;

  /// Convenience overload for a caller-owned vector of problems.
  std::vector<PlacementSolution> solve(
      const std::vector<PlacementProblem>& problems) const;

  /// Heterogeneous batch: each item may carry its own warm start and
  /// solver options (the serving layer's per-request deadline hooks).
  /// Every solve is a pure function of its item, so results are
  /// bit-identical at every thread count and to the equivalent direct
  /// solve_placement / resolve_warm calls. Spawns a pool per call.
  std::vector<PlacementSolution> solve_items(
      std::span<const BatchItem> items) const;

  /// Same, on a caller-owned pool — the serving layer reuses one
  /// long-lived pool across batches instead of spawning per call.
  std::vector<PlacementSolution> solve_items(
      runtime::ThreadPool& pool, std::span<const BatchItem> items) const;

  const BatchOptions& options() const noexcept { return options_; }

  /// Total problems actually solved (exact or approx tier) across every
  /// batch this solver ran. The serve cache's acceptance test hinges on
  /// this: an exact cache hit must answer without moving this counter.
  std::uint64_t solves() const noexcept {
    return solves_.load(std::memory_order_relaxed);
  }

 private:
  BatchOptions options_;
  /// options_.solver with the trace sink and counter handles installed
  /// (identical copy when uninstrumented) — built once so the fan-out
  /// loops never copy SolverOptions per item.
  opt::SolverOptions effective_solver_;
  bool instrumented_ = false;
  obs::SolverCounters counters_;
  obs::Histogram iterations_hist_;
  /// Lifetime solver-invocation count; see solves(). Relaxed: the count
  /// is a monotone statistic, never a synchronization edge.
  mutable std::atomic<std::uint64_t> solves_{0};
};

/// Builds one problem per theta (the Fig. 2 sweep shape): `base` supplies
/// every option except theta.
std::vector<PlacementProblem> make_theta_sweep(
    const topo::Graph& graph, const MeasurementTask& task,
    const traffic::LinkLoads& loads, const ProblemOptions& base,
    std::span<const double> thetas);

}  // namespace netmon::core
