// Ready-made evaluation scenario: the GEANT network carrying gravity
// background traffic plus the JANET measurement task (paper §V).
#pragma once

#include "core/problem.hpp"
#include "core/task.hpp"
#include "topo/geant.hpp"
#include "traffic/gravity.hpp"
#include "traffic/link_load.hpp"

namespace netmon::core {

/// Scenario knobs.
struct ScenarioOptions {
  /// Total background (gravity) traffic in pkt/s across the whole
  /// network. Calibrated so the busiest links carry a few tens of
  /// thousands of pkt/s, as in GEANT 2004.
  double background_pkt_per_sec = 1.4e6;
  /// Failed links (rerouting studies).
  routing::LinkSet failed;
};

/// The assembled scenario. Keep it alive while problems built from it are
/// in use (they reference its graph).
struct GeantScenario {
  topo::GeantNetwork net;
  MeasurementTask task;
  /// Background gravity demands plus the JANET task demands.
  traffic::TrafficMatrix demands;
  /// Per-link loads (pkt/s) from routing all demands.
  traffic::LinkLoads loads;
};

/// Builds the scenario: topology, task, demands, loads.
GeantScenario make_geant_scenario(const ScenarioOptions& options = {});

/// Builds the placement problem of the scenario with the given options
/// (theta defaults to the paper's 100,000 packets per 5-minute interval).
PlacementProblem make_problem(const GeantScenario& scenario,
                              ProblemOptions options = {});

/// The six UK inter-PoP links (both directions' outbound from UK), the
/// restricted monitor set of the paper's §V-C comparison.
std::vector<topo::LinkId> uk_links(const topo::GeantNetwork& net);

}  // namespace netmon::core
