#include "core/approx.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace netmon::core {

namespace {

/// One group's round-invariant subproblem pieces. The matrix/utilities
/// are built once; only the offsets (frozen cross-group contributions)
/// and theta_g change between rounds.
struct SubProblem {
  opt::SeparableConcaveObjective::SparseRows rows;  // local col indices
  std::vector<std::shared_ptr<const opt::Concave1d>> utilities;
  std::vector<std::size_t> terms;  // global term index per local row
  std::vector<double> u;
  std::vector<double> alpha;
  double cap = 0.0;  // sum u_j alpha_j over the group
};

/// Splits `theta` across groups proportionally to `weight`, capped at
/// each group's capacity; overflow past a cap redistributes across the
/// still-uncapped groups (water-fill). Requires theta <= sum caps.
std::vector<double> water_fill(double theta, const std::vector<double>& caps,
                               const std::vector<double>& weight) {
  const std::size_t n = caps.size();
  std::vector<double> theta_g(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = theta;
  for (std::size_t pass = 0; pass < n; ++pass) {
    double open_weight = 0.0;
    for (std::size_t g = 0; g < n; ++g)
      if (!capped[g]) open_weight += weight[g];
    if (open_weight <= 0.0 || remaining <= 0.0) break;
    bool newly_capped = false;
    for (std::size_t g = 0; g < n; ++g) {
      if (capped[g]) continue;
      const double share = remaining * weight[g] / open_weight;
      if (share >= caps[g]) {
        theta_g[g] = caps[g];
        capped[g] = true;
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      for (std::size_t g = 0; g < n; ++g)
        if (!capped[g]) theta_g[g] = remaining * weight[g] / open_weight;
      return theta_g;
    }
    remaining = theta;
    for (std::size_t g = 0; g < n; ++g)
      if (capped[g]) remaining -= caps[g];
  }
  return theta_g;
}

}  // namespace

SolveTier choose_tier(std::size_t candidates, const TierPolicy& policy) {
  if (candidates >= policy.approx_min_candidates) return SolveTier::kApprox;
  if (policy.deadline_ms > 0.0 &&
      static_cast<double>(candidates) / policy.exact_candidates_per_ms >
          policy.deadline_ms)
    return SolveTier::kApprox;
  return SolveTier::kExact;
}

ApproxResult solve_approx(const PlacementProblem& problem,
                          const Partition& partition,
                          const ApproxOptions& options) {
  NETMON_REQUIRE(options.rounds >= 1, "approx tier needs at least one round");
  const opt::SeparableConcaveObjective& f = problem.objective();
  const opt::BoxBudgetConstraints& cons = problem.constraints();
  const std::size_t n = cons.dimension();
  const std::size_t m = f.term_count();
  NETMON_REQUIRE(partition.group_of_candidate.size() == n,
                 "partition does not match the problem's candidate space");
  const std::size_t G = partition.group_count();

  // ---- Round-invariant subproblems -------------------------------------
  std::vector<std::size_t> local_of(n, 0);
  for (std::size_t g = 0; g < G; ++g)
    for (std::size_t i = 0; i < partition.groups[g].size(); ++i)
      local_of[partition.groups[g][i]] = i;

  std::vector<SubProblem> subs(G);
  const std::vector<double>& u = cons.loads();
  const std::vector<double>& alpha = cons.upper();
  for (std::size_t g = 0; g < G; ++g) {
    SubProblem& sub = subs[g];
    const std::vector<std::size_t>& cols = partition.groups[g];
    sub.u.reserve(cols.size());
    sub.alpha.reserve(cols.size());
    for (std::size_t j : cols) {
      sub.u.push_back(u[j]);
      sub.alpha.push_back(alpha[j]);
      sub.cap += u[j] * alpha[j];
    }
  }
  // One pass over R buckets every row fragment into its group's rows;
  // within a row, global column order implies ascending local columns.
  const linalg::SparseCsr& R = f.matrix();
  std::vector<std::size_t> stamp(G, std::numeric_limits<std::size_t>::max());
  for (std::size_t k = 0; k < m; ++k) {
    for (const auto& [col, coeff] : R.row(k)) {
      const std::size_t g = partition.group_of_candidate[col];
      SubProblem& sub = subs[g];
      if (stamp[g] != k) {
        stamp[g] = k;
        sub.rows.emplace_back();
        sub.terms.push_back(k);
        sub.utilities.push_back(problem.utilities()[k]);
      }
      sub.rows.back().emplace_back(local_of[col], coeff);
    }
  }

  // ---- Budget split ----------------------------------------------------
  std::vector<double> caps(G), weight(G);
  for (std::size_t g = 0; g < G; ++g) caps[g] = weight[g] = subs[g].cap;
  std::vector<double> theta_g = water_fill(cons.theta(), caps, weight);

  // ---- Block-Jacobi rounds ---------------------------------------------
  std::vector<double> p =
      options.warm != nullptr ? *options.warm : cons.initial_point();
  NETMON_REQUIRE(p.size() == n, "warm start dimension mismatch");

  ApproxResult result;
  result.groups = G;
  std::vector<double> lambda_g(G, 0.0);
  std::vector<long long> iters_g(G, 0);
  std::vector<double> x_full(m);

  for (std::size_t round = 0; round < options.rounds; ++round) {
    f.inner_into(p, x_full);

    auto solve_group = [&](std::size_t g) {
      const SubProblem& sub = subs[g];
      const std::vector<std::size_t>& cols = partition.groups[g];
      if (cols.empty() || theta_g[g] <= 0.0) return;
      // Frozen offsets: the rest of the network, as seen by this group's
      // terms, is a constant a_k = x_k - (R_g p_g)_k.
      std::vector<double> offsets(sub.terms.size());
      for (std::size_t r = 0; r < sub.terms.size(); ++r) {
        double own = 0.0;
        for (const auto& [local, coeff] : sub.rows[r])
          own += coeff * p[cols[local]];
        offsets[r] = x_full[sub.terms[r]] - own;
      }
      const opt::SeparableConcaveObjective sub_f(cols.size(), sub.rows,
                                                 sub.utilities, offsets);
      const opt::BoxBudgetConstraints sub_cons(sub.u, sub.alpha, theta_g[g]);
      std::vector<double> start(cols.size());
      for (std::size_t i = 0; i < cols.size(); ++i) start[i] = p[cols[i]];
      start = sub_cons.project(start);
      const opt::SolveResult sr =
          opt::maximize(sub_f, sub_cons, options.subsolver, &start);
      for (std::size_t i = 0; i < cols.size(); ++i) p[cols[i]] = sr.p[i];
      lambda_g[g] = sr.lambda;
      iters_g[g] += sr.iterations;
    };

    if (options.pool != nullptr && G > 1) {
      runtime::TaskGroup group(*options.pool);
      for (std::size_t g = 0; g < G; ++g)
        group.run([&solve_group, g] { solve_group(g); });
      group.wait();
    } else {
      for (std::size_t g = 0; g < G; ++g) solve_group(g);
    }

    // Rebalance theta_g toward equalized budget marginals: each group's
    // lambda is the marginal utility of one more unit of budget, so
    // weight the next split by theta_g * lambda_g (damped by the cap
    // water-fill). Skip when the duals are degenerate.
    if (round + 1 < options.rounds) {
      bool usable = false;
      for (std::size_t g = 0; g < G; ++g)
        if (std::isfinite(lambda_g[g]) && lambda_g[g] > 0.0) usable = true;
      if (usable) {
        for (std::size_t g = 0; g < G; ++g) {
          const double l =
              std::isfinite(lambda_g[g]) ? std::max(lambda_g[g], 0.0) : 0.0;
          weight[g] = theta_g[g] * l;
          if (weight[g] <= 0.0) weight[g] = 1e-12 * subs[g].cap;
        }
        theta_g = water_fill(cons.theta(), caps, weight);
      }
    }
  }
  for (long long it : iters_g) result.subsolve_iterations += it;

  // ---- Stitch + polish --------------------------------------------------
  // The stitched point meets the budget up to float drift; project back
  // onto the exact feasible set before polishing/certifying.
  p = cons.project(p);

  opt::SolveResult polished;
  polished.p = p;
  polished.status = opt::SolveStatus::kIterationLimit;
  if (options.polish_iterations > 0) {
    opt::SolverOptions po = options.polish;
    po.max_iterations = options.polish_iterations;
    po.pool = options.pool;
    polished = opt::maximize(f, cons, po, &p);
    p = polished.p;
  }

  result.certificate = opt::certified_gap(f, cons, p);

  result.solution = evaluate_rates(problem, problem.expand(p));
  result.solution.status = polished.status;
  result.solution.iterations = polished.iterations;
  result.solution.release_events = polished.release_events;
  result.solution.lambda = polished.lambda;
  result.solution.tier = SolveTier::kApprox;
  result.solution.certified_gap = result.certificate.gap;
  result.solution.certified_upper_bound = result.certificate.upper_bound;
  return result;
}

}  // namespace netmon::core
