// Explicit AVX2+FMA instantiations of the SRE batch kernels.
//
// This TU is compiled with -O3 -mavx2 -mfma -ffp-contract=off (see
// src/CMakeLists.txt) and is only ever CALLED after
// opt::simd_max_level() has confirmed AVX2+FMA via CPUID — the compile
// flags license the instructions, the runtime check licenses executing
// them.
//
// Bit-exactness: the exact kernels replay the frozen SreOps operation
// sequence (core/utility_kernels.hpp) lane for lane — one vdivpd for the
// shared reciprocal, vfmadd/vfnmadd where the reference writes std::fma,
// plain vmulpd/vaddpd elsewhere. Each per-lane IEEE operation is
// bitwise identical to its scalar counterpart, so the whole kernel is
// bit-identical to the scalar reference by construction (enforced by
// tests/opt_simd_dispatch_test.cpp and the perf gate).
//
// Both pivot legs are evaluated branch-free and _mm256_blendv_pd on the
// x < x0 mask selects one — except that a movemask check skips the
// division leg entirely when a whole vector sits below the pivot (or the
// quadratic leg when none does). Skipping never changes results (the
// blend would have discarded the skipped leg), it only saves the vdivpd;
// the line-search restriction partitions its terms by regime precisely
// so these uniform fast paths hit on nearly every vector.
//
// The _fm variants are the fast-math leg: the IEEE division is replaced
// by _mm_rcp_ps widened to double plus three Newton–Raphson refinements
// (12 → 24 → 48 → ~53 bits). NOT bit-exact — gated on relative error
// (≤ ~1e-12) by the perf gate's fast-math leg, and dispatched only when
// opt::simd_fastmath_enabled() is set.
#ifdef NETMON_HAVE_AVX2

#include <immintrin.h>

#include "core/utility_kernels.hpp"

namespace netmon::core::kernels {

namespace {

/// inv = 1/x, exact (vdivpd).
inline __m256d recip_exact(__m256d x) {
  return _mm256_div_pd(_mm256_set1_pd(1.0), x);
}

/// inv ~= 1/x via float rcp + 3 Newton steps. Lanes where the result is
/// discarded by the pivot blend may produce NaN (x == 0: the estimate is
/// inf and the refinement folds 0 * inf); the exact path produces inf on
/// those lanes — both are discarded, never selected.
inline __m256d recip_newton(__m256d x) {
  __m256d r = _mm256_cvtps_pd(_mm_rcp_ps(_mm256_cvtpd_ps(x)));
  const __m256d one = _mm256_set1_pd(1.0);
  for (int it = 0; it < 3; ++it) {
    const __m256d e = _mm256_fnmadd_pd(x, r, one);  // 1 - x*r
    r = _mm256_fmadd_pd(r, e, r);                   // r + r*e
  }
  return r;
}

/// Shared kernel body: Recip selects the exact or fast-math reciprocal,
/// kWantValue drops the value column for the deriv2 (line-search) form.
template <__m256d (*Recip)(__m256d), bool kWantValue>
inline void sre_kernel(const double* soa, std::size_t stride,
                       const double* __restrict x, double* __restrict v,
                       double* __restrict m1, double* __restrict m2,
                       std::size_t n) {
  const double* __restrict cp = soa;
  const double* __restrict x0p = soa + stride;
  const double* __restrict a1p = soa + 2 * stride;
  const double* __restrict a2p = soa + 3 * stride;
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_two = _mm256_set1_pd(-2.0);
  const __m256d dom_lo = _mm256_set1_pd(-1.0);
  __m256d dom_ok = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xi = _mm256_loadu_pd(x + i);
    dom_ok = _mm256_and_pd(dom_ok, _mm256_cmp_pd(xi, dom_lo, _CMP_GE_OQ));
    const __m256d x0 = _mm256_loadu_pd(x0p + i);
    const __m256d a1 = _mm256_loadu_pd(a1p + i);
    const __m256d a2 = _mm256_loadu_pd(a2p + i);
    const __m256d lt = _mm256_cmp_pd(xi, x0, _CMP_LT_OQ);
    const int mm = _mm256_movemask_pd(lt);
    const __m256d two_a2 = _mm256_add_pd(a2, a2);
    if (mm == 0xF) {
      // Uniform quadratic block: no reciprocal needed at all.
      if constexpr (kWantValue) {
        _mm256_storeu_pd(v + i,
                         _mm256_mul_pd(_mm256_fmadd_pd(a2, xi, a1), xi));
      }
      _mm256_storeu_pd(m1 + i, _mm256_fmadd_pd(two_a2, xi, a1));
      _mm256_storeu_pd(m2 + i, two_a2);
      continue;
    }
    const __m256d c = _mm256_loadu_pd(cp + i);
    const __m256d inv = Recip(xi);
    const __m256d rat_m1 = _mm256_mul_pd(_mm256_mul_pd(c, inv), inv);
    const __m256d rat_m2 = _mm256_mul_pd(neg_two, _mm256_mul_pd(rat_m1, inv));
    if (mm == 0) {
      // Uniform rational block: skip the quadratic leg's stores.
      if constexpr (kWantValue) {
        _mm256_storeu_pd(
            v + i, _mm256_fnmadd_pd(c, inv, _mm256_add_pd(one, c)));
      }
      _mm256_storeu_pd(m1 + i, rat_m1);
      _mm256_storeu_pd(m2 + i, rat_m2);
      continue;
    }
    if constexpr (kWantValue) {
      const __m256d quad_v = _mm256_mul_pd(_mm256_fmadd_pd(a2, xi, a1), xi);
      const __m256d rat_v =
          _mm256_fnmadd_pd(c, inv, _mm256_add_pd(one, c));
      _mm256_storeu_pd(v + i, _mm256_blendv_pd(rat_v, quad_v, lt));
    }
    _mm256_storeu_pd(
        m1 + i,
        _mm256_blendv_pd(rat_m1, _mm256_fmadd_pd(two_a2, xi, a1), lt));
    _mm256_storeu_pd(m2 + i, _mm256_blendv_pd(rat_m2, two_a2, lt));
  }
  bool ok = _mm256_movemask_pd(dom_ok) == 0xF;
  for (; i < n; ++i) {
    const SreOps::P q = SreOps::load(soa, stride, i);
    ok &= SreOps::in_domain(q, x[i]);
    if constexpr (kWantValue) {
      SreOps::fused1(q, x[i], v[i], m1[i], m2[i]);
    } else {
      SreOps::deriv2_1(q, x[i], m1[i], m2[i]);
    }
  }
  NETMON_REQUIRE(ok, "utility argument out of domain");
}

}  // namespace

void sre_fused_avx2(const double* soa, std::size_t stride, const double* x,
                    double* v, double* m1, double* m2, std::size_t n) {
  sre_kernel<recip_exact, true>(soa, stride, x, v, m1, m2, n);
}

void sre_deriv2_avx2(const double* soa, std::size_t stride, const double* x,
                     double* m1, double* m2, std::size_t n) {
  sre_kernel<recip_exact, false>(soa, stride, x, nullptr, m1, m2, n);
}

void sre_fused_avx2_fm(const double* soa, std::size_t stride,
                       const double* x, double* v, double* m1, double* m2,
                       std::size_t n) {
  sre_kernel<recip_newton, true>(soa, stride, x, v, m1, m2, n);
}

void sre_deriv2_avx2_fm(const double* soa, std::size_t stride,
                        const double* x, double* m1, double* m2,
                        std::size_t n) {
  sre_kernel<recip_newton, false>(soa, stride, x, nullptr, m1, m2, n);
}

void fill_affine_avx2(double* dst, const double* x0, const double* rd,
                      double t, std::size_t n) {
  const __m256d tv = _mm256_set1_pd(t);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     _mm256_fmadd_pd(tv, _mm256_loadu_pd(rd + i),
                                     _mm256_loadu_pd(x0 + i)));
  }
  for (; i < n; ++i) dst[i] = std::fma(t, rd[i], x0[i]);
}

}  // namespace netmon::core::kernels

#endif  // NETMON_HAVE_AVX2
