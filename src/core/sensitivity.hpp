// Sensitivity analysis of a placement.
//
// The KKT multipliers carry operational meaning: lambda is the marginal
// utility of budget (dU*/dtheta), and for each candidate link the gap
// between its marginal utility g_i and its budget price lambda*u_i says
// how far the link is from being worth a monitor. Operators use this to
// answer "which monitor would we activate next if theta grew?" and "which
// active monitor is barely paying for itself?" without re-solving.
#pragma once

#include <span>
#include <vector>

#include "core/batch_solver.hpp"
#include "core/problem.hpp"
#include "core/solver.hpp"

namespace netmon::core {

/// The economics of one candidate link at a given placement.
struct MonitorValue {
  topo::LinkId link = topo::kInvalidId;
  /// Whether the placement runs a monitor here.
  bool active = false;
  /// dU/dp_i: total-utility gain per unit of sampling rate here.
  double marginal_utility = 0.0;
  /// lambda * u_i: the budget price of a unit of sampling rate here.
  double marginal_cost = 0.0;
  /// marginal_utility / marginal_cost: ~1 for interior active links,
  /// < 1 for links correctly left off, > 1 would mean the placement is
  /// not optimal.
  double value_ratio = 0.0;
};

/// Computes the per-candidate economics of a placement. The budget price
/// lambda is re-derived from the active interior links (least squares),
/// so the function also works for hand-built rate vectors.
/// Results are sorted by value_ratio, highest first.
std::vector<MonitorValue> monitor_values(const PlacementProblem& problem,
                                         const PlacementSolution& solution);

/// The inactive candidate closest to activation (highest value_ratio
/// among inactive links); kInvalidId when every candidate is active.
topo::LinkId next_monitor_to_activate(
    const std::vector<MonitorValue>& values);

/// One point of a budget-sensitivity sweep: the re-solved optimum at a
/// perturbed theta, verifying the KKT shadow-price story empirically.
struct ThetaSensitivityPoint {
  double theta = 0.0;
  double total_utility = 0.0;
  /// KKT budget multiplier at this theta (analytic dU*/dtheta).
  double lambda = 0.0;
  /// Forward finite difference dU*/dtheta against the next point
  /// (0 for the last point); should track lambda on interior segments.
  double empirical_price = 0.0;
  std::size_t active_monitors = 0;
};

/// Re-solves the task at every theta in `thetas` — fanned across the
/// thread pool via BatchSolver, warm-chained in sweep order — and
/// reports utility, shadow price, and its finite-difference check.
/// `thetas` must be strictly increasing and positive.
std::vector<ThetaSensitivityPoint> theta_sensitivity(
    const topo::Graph& graph, const MeasurementTask& task,
    const traffic::LinkLoads& loads, const ProblemOptions& base,
    std::span<const double> thetas, const BatchOptions& batch = {});

}  // namespace netmon::core
