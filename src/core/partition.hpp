// Candidate-space partitioning for the approximation tier (core/approx).
//
// The approximation tier decomposes one placement problem into per-group
// subproblems solved independently in parallel. Groups follow the
// topology hierarchy when the instance carries one (every pod of a
// hierarchical network is a group — the natural administrative and
// locality boundary), and fall back to a deterministic BFS slicing of
// the graph otherwise. Partitions live in CANDIDATE index space — the
// optimizer's variable space — so groups plug directly into the
// constraint/objective column structure.
#pragma once

#include <cstddef>
#include <vector>

#include "core/problem.hpp"
#include "topo/hierarchical.hpp"

namespace netmon::core {

/// A disjoint cover of the candidate index space.
struct Partition {
  /// groups[g] lists candidate indices (ascending) belonging to group g.
  /// Every group is non-empty; empty groups are compacted away.
  std::vector<std::vector<std::size_t>> groups;
  /// Inverse map: candidate index -> group index.
  std::vector<std::size_t> group_of_candidate;

  std::size_t group_count() const noexcept { return groups.size(); }
};

/// Groups candidates by the pod (region) of their link's source node in
/// a hierarchical network. The network must be the one the problem was
/// built over.
Partition partition_by_region(const PlacementProblem& problem,
                              const topo::HierarchicalNetwork& net);

/// Topology-agnostic fallback: breadth-first layers from node 0 (then
/// from the lowest unvisited node of each further component) are cut
/// into `target_groups` contiguous slices of roughly equal node count;
/// a candidate joins the group of its link's source node. Deterministic
/// in the graph alone.
Partition partition_bfs(const PlacementProblem& problem,
                        std::size_t target_groups);

/// partition_by_region when `net` is non-null, else partition_bfs.
Partition partition_auto(const PlacementProblem& problem,
                         const topo::HierarchicalNetwork* net,
                         std::size_t target_groups);

}  // namespace netmon::core
