// SolverTrace: per-iteration recording for the gradient-projection
// solver, plus the registry counter bundle the solver hot loop bumps.
//
// The trace is an opt-in SolverOptions hook: when attached, the solver
// appends one record per iteration (objective, gradient norms, step
// length, active-set and restriction sizes, KKT numbers when they were
// computed that iteration, fused-vs-generic path) and one final summary
// record whose KKT fields equal the SolveResult's report. Storage is a
// pre-sized lock-free ring (obs/ring.hpp): recording allocates nothing,
// so the solver hot loop stays zero-allocation with tracing enabled, and
// many concurrent solves (core::BatchSolver fan-out, serve batches) can
// share one trace — records interleave but each carries its solve id.
//
// Export is JSONL: one JSON object per record, the schema
// scripts/check_obs.sh validates in CI.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace netmon::obs {

/// One solver iteration (or the final summary when `final` is set).
/// Doubles default to NaN = "not computed this iteration"; the JSONL
/// export renders NaN as null.
struct TraceRecord {
  std::uint64_t solve_id = 0;
  std::uint32_t iteration = 0;
  /// Set on the one summary record appended after the loop exits.
  bool final_record = false;
  /// Fused evaluation path (vs the generic per-virtual path).
  bool fused = false;
  /// opt::SolveStatus at exit, meaningful on the final record.
  std::uint8_t status = 0;
  double value = 0.0;
  /// Gradient infinity norm |g|_inf and projected-gradient 2-norm.
  double grad_inf = 0.0;
  double proj_grad_norm = 0.0;
  /// Line-search step length (0 when no step was taken).
  double step = 0.0;
  /// Coordinates pinned at a bound.
  std::uint32_t active_set = 0;
  /// Line-search restriction size (fused path; 0 otherwise).
  std::uint32_t restriction_terms = 0;
  /// KKT report of this iteration (NaN when the multipliers were not
  /// computed). On the final record these match SolveResult::lambda and
  /// SolveResult::worst_multiplier exactly.
  double kkt_lambda = 0.0;
  double kkt_residual = 0.0;
};

/// Pre-sized ring of TraceRecords; thread-safe and allocation-free on
/// the record path.
class SolverTrace {
 public:
  /// Capacity in records, rounded up to a power of two.
  explicit SolverTrace(std::size_t capacity = 4096);

  /// Claims a process-unique id for one maximize() call, so records of
  /// concurrent solves sharing this trace can be told apart.
  std::uint64_t begin_solve() noexcept {
    return next_solve_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one record. Lock-free, allocation-free.
  void record(const TraceRecord& record) noexcept;

  /// Records ever appended (the ring retains the last capacity()).
  std::uint64_t total_recorded() const noexcept { return ring_.total(); }
  std::size_t capacity() const noexcept { return ring_.capacity(); }

  /// Retained records, oldest first.
  std::vector<TraceRecord> snapshot() const;

  /// One JSON object per retained record, newline-terminated.
  void write_jsonl(std::ostream& out) const;
  std::string jsonl() const;

 private:
  static constexpr std::size_t kWords = 11;
  AtomicRing<kWords> ring_;
  std::atomic<std::uint64_t> next_solve_id_{0};
};

/// The counters the solver iteration loop bumps when instrumented.
/// Default handles are detached no-ops, so an un-instrumented solve pays
/// one branch per counter site.
struct SolverCounters {
  Counter iterations;
  Counter release_events;
  Counter solves;
  Counter cancelled;
};

/// Registers the solver counter family on `registry` (idempotent).
SolverCounters register_solver_counters(MetricsRegistry& registry);

}  // namespace netmon::obs
