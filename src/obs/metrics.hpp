// MetricsRegistry: counters, gauges, and fixed-bucket histograms with
// per-thread sharded storage.
//
// Design constraints, in order:
//   1. Hot-path cost. An increment from a runtime::ThreadPool worker is
//      one thread-index lookup plus one relaxed fetch_add into that
//      worker's own shard — no mutex, no cache-line ping-pong between
//      workers. A default-constructed (detached) handle is a single
//      branch, so instrumented code paths cost nothing measurable when
//      observability is off and the disabled path stays bit-identical.
//   2. Zero allocation after setup. The cell arena (shards x cells, all
//      std::atomic<uint64_t>) is sized at construction; registering a
//      metric claims cells from it and throws when the arena is full.
//      Nothing on the observation path ever allocates.
//   3. One snapshot path. snapshot() merges the shards into plain
//      structs; the Prometheus and JSON exporters (obs/export.hpp) and
//      the serve::Stats shim all render from the same snapshot.
//
// Value encoding: every cell is a uint64. Counters hold integer counts;
// gauges and histogram sum/max cells hold the bit pattern of a double
// (std::bit_cast). Gauges are last-write-wins and live in shard 0 only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netmon::obs {

/// Stable small index for the calling thread, assigned on first use.
/// Used to pick a registry shard; indices are process-wide, so one
/// thread maps to the same shard in every registry.
std::size_t this_thread_index() noexcept;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind kind) noexcept;

class MetricsRegistry;

/// Monotonic event counter handle. Trivially copyable; default
/// constructed = detached no-op.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;
  explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Last-write-wins instantaneous value handle.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;
  explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t cell)
      : registry_(registry), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Fixed-bucket histogram handle. Buckets are set at registration; each
/// shard additionally tracks count, sum, and exact max.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;
  explicit operator bool() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, const std::vector<double>* bounds,
            std::uint32_t cell)
      : registry_(registry), bounds_(bounds), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  /// Borrowed from the registry descriptor (stable storage), so observe()
  /// never touches the descriptor table.
  const std::vector<double>* bounds_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Point-in-time merged (cross-shard) view of one metric.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  /// Counter: total count. Gauge: last set value.
  double value = 0.0;
  /// Histogram summary (zero/empty for other kinds).
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  /// Finite bucket upper bounds; buckets has one extra overflow entry.
  /// Bucket counts are per-bucket (NOT cumulative).
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;

  double mean() const noexcept {
    return count != 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Approximate quantile, q in [0,1]: the upper bound of the bucket the
  /// q-th observation falls in, capped at the exact observed max.
  double approx_quantile(double q) const noexcept;
};

/// Snapshot of a whole registry, in registration order.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
  /// Lookup by name; null when absent.
  const MetricSnapshot* find(std::string_view name) const noexcept;
};

struct MetricsOptions {
  /// Storage shards. 0 = one per hardware thread, clamped to [1, 64].
  /// Contention-free as long as concurrent writers land on distinct
  /// shards (thread index modulo shards).
  std::size_t shards = 0;
  /// Cell arena size per shard, claimed by registrations (a counter or
  /// gauge takes 1 cell; a histogram takes bounds+4). Fixed at
  /// construction so observation never allocates or resizes.
  std::size_t cells_per_shard = 1024;
};

/// The registry. Registration (setup path) takes a mutex; observation
/// (hot path) is lock-free. Registering the same name twice returns the
/// same metric (kinds and bounds must match).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(MetricsOptions options = {});

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(const std::string& name, std::string help = {});
  Gauge gauge(const std::string& name, std::string help = {});
  /// `bounds` are the finite bucket upper bounds, strictly increasing;
  /// an implicit overflow bucket is appended.
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      std::string help = {});

  RegistrySnapshot snapshot() const;

  std::size_t shards() const noexcept { return shards_; }
  std::size_t cells_per_shard() const noexcept { return cells_per_shard_; }
  /// Cells claimed so far (monitoring the arena headroom).
  std::size_t cells_used() const;

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Descriptor {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::uint32_t cell = 0;   // first cell of this metric
    std::uint32_t cells = 1;  // cells claimed
    std::vector<double> bounds;
  };

  std::atomic<std::uint64_t>& cell(std::size_t shard,
                                   std::uint32_t index) const noexcept {
    return cells_[shard * cells_per_shard_ + index];
  }
  std::size_t shard_for_this_thread() const noexcept {
    return this_thread_index() % shards_;
  }
  /// Claims `cells` consecutive cells for a new or existing metric.
  const Descriptor& register_metric(const std::string& name,
                                    std::string help, MetricKind kind,
                                    std::uint32_t cells,
                                    std::vector<double> bounds);

  std::size_t shards_;
  std::size_t cells_per_shard_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;

  mutable std::mutex mutex_;
  /// Deque: descriptor addresses (and the bounds vectors inside) stay
  /// stable across registrations, so handles can borrow them.
  std::deque<Descriptor> descriptors_;
  std::uint32_t next_cell_ = 0;
};

}  // namespace netmon::obs
