// Bounded lock-free ring of fixed-width records — the storage primitive
// under both the solver iteration trace and the serve flight recorder.
//
// Writers from any thread claim a monotonically increasing ticket with
// one fetch_add and publish their record into slot (ticket & mask) under
// a per-slot sequence word: seq = 2*ticket+1 while the payload words are
// being stored, 2*ticket+2 once complete. Readers validate the sequence
// before and after copying the payload, so a snapshot taken while
// writers are active simply skips the (at most #writers) slots that are
// mid-overwrite — no locks, no blocking, no torn records. Every word is
// a relaxed atomic, which keeps the scheme exact under ThreadSanitizer
// rather than a benign-race hand-wave.
//
// The ring is pre-sized at construction (capacity rounded up to a power
// of two) and append() performs no allocation — a hard requirement for
// the solver hot loop, which records one entry per iteration.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace netmon::obs {

/// Rounds `n` up to a power of two (minimum 1).
constexpr std::size_t ceil_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

template <std::size_t Words>
class AtomicRing {
 public:
  using Record = std::array<std::uint64_t, Words>;

  /// Pre-sizes the ring to hold ceil_pow2(max(capacity, 2)) records.
  explicit AtomicRing(std::size_t capacity)
      : capacity_(ceil_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {}

  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of records ever appended (monotonic; the ring retains the
  /// most recent capacity() of them).
  std::uint64_t total() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Appends one record. Lock-free, allocation-free, callable from any
  /// thread.
  void append(const Record& record) noexcept {
    const std::uint64_t ticket =
        head_.fetch_add(1, std::memory_order_acq_rel);
    Slot& slot = slots_[ticket & mask_];
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    for (std::size_t w = 0; w < Words; ++w)
      slot.words[w].store(record[w], std::memory_order_relaxed);
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Copies the retained records, oldest first. Records being
  /// overwritten concurrently are skipped; completed records are always
  /// internally consistent.
  std::vector<Record> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t start = head > capacity_ ? head - capacity_ : 0;
    std::vector<Record> out;
    out.reserve(static_cast<std::size_t>(head - start));
    for (std::uint64_t ticket = start; ticket < head; ++ticket) {
      const Slot& slot = slots_[ticket & mask_];
      const std::uint64_t expect = 2 * ticket + 2;
      if (slot.seq.load(std::memory_order_acquire) != expect) continue;
      Record record;
      for (std::size_t w = 0; w < Words; ++w)
        record[w] = slot.words[w].load(std::memory_order_relaxed);
      if (slot.seq.load(std::memory_order_acquire) != expect) continue;
      out.push_back(record);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, Words> words{};
  };

  std::size_t capacity_;
  std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace netmon::obs
