// The observability subsystem's single monotonic clock source.
//
// Every time-stamped observation in the system — serve deadline stamping
// and expiry checks, queue/solve latency accounting, flight-recorder
// event timestamps — goes through one obs::Clock so (a) they can never
// disagree about "now" and (b) tests can inject a ManualClock and drive
// deadline expiry deterministically, with no sleeps and no wall-clock
// races. The default source is std::chrono::steady_clock: monotonic, so
// deadlines survive wall-clock adjustments.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace netmon::obs {

/// The subsystem-wide monotonic time point type (steady_clock based, so
/// existing serve deadline arithmetic keeps its types).
using TimePoint = std::chrono::steady_clock::time_point;
using Duration = std::chrono::steady_clock::duration;

/// Monotonic clock interface. The base class *is* the production clock
/// (steady_clock); tests subclass or use ManualClock. Implementations
/// must be thread-safe and monotonic.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual TimePoint now() const noexcept {
    return std::chrono::steady_clock::now();
  }

  /// The process-wide default (steady-clock) instance.
  static const Clock& system() noexcept;
};

/// Deterministic test clock: time only moves when advanced. Thread-safe
/// (reads and advances are atomic), so it can be shared with a running
/// serve dispatcher.
class ManualClock final : public Clock {
 public:
  /// Starts at an arbitrary fixed epoch (not 0, so subtracting small
  /// durations in tests never underflows the time_point).
  ManualClock() : ns_(kEpochNs) {}

  TimePoint now() const noexcept override {
    return TimePoint(std::chrono::nanoseconds(
        ns_.load(std::memory_order_acquire)));
  }

  void advance(Duration by) noexcept {
    ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(by).count(),
        std::memory_order_acq_rel);
  }

 private:
  static constexpr std::int64_t kEpochNs = 1'000'000'000'000;  // t = 1000 s
  std::atomic<std::int64_t> ns_;
};

/// Nanoseconds since the time_point epoch — the flight recorder's stored
/// timestamp representation.
inline std::int64_t to_ns(TimePoint t) noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

}  // namespace netmon::obs
