// Exporters for MetricsRegistry snapshots: Prometheus text exposition
// (for scraping / the serve layer's /metrics-style endpoint) and JSONL
// (one metric per line, for offline diffing next to solver traces and
// flight-recorder dumps).
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace netmon::obs {

/// Prometheus text exposition format, version 0.0.4: `# HELP` / `# TYPE`
/// lines per metric, histograms as cumulative `_bucket{le="..."}` series
/// plus `_sum` and `_count`.
void write_prometheus(std::ostream& out, const RegistrySnapshot& snapshot);
std::string prometheus_text(const MetricsRegistry& registry);

/// One JSON object per metric, newline-terminated. Histograms carry
/// their bucket bounds and per-bucket (non-cumulative) counts.
void write_metrics_jsonl(std::ostream& out, const RegistrySnapshot& snapshot);
std::string metrics_jsonl(const MetricsRegistry& registry);

}  // namespace netmon::obs
