#include "obs/trace.hpp"

#include <bit>
#include <sstream>

#include "util/json.hpp"

namespace netmon::obs {

namespace {

// Word layout of one ring record.
//   0 solve_id
//   1 iteration
//   2 flags: bit 0 final, bit 1 fused, bits 8..15 status
//   3 value            (double bits)
//   4 grad_inf         (double bits)
//   5 proj_grad_norm   (double bits)
//   6 step             (double bits)
//   7 active_set
//   8 restriction_terms
//   9 kkt_lambda       (double bits)
//  10 kkt_residual     (double bits)
constexpr std::uint64_t kFlagFinal = 1u << 0;
constexpr std::uint64_t kFlagFused = 1u << 1;

std::uint64_t enc(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double dec(std::uint64_t bits) noexcept { return std::bit_cast<double>(bits); }

}  // namespace

SolverTrace::SolverTrace(std::size_t capacity) : ring_(capacity) {}

void SolverTrace::record(const TraceRecord& r) noexcept {
  AtomicRing<kWords>::Record words;
  words[0] = r.solve_id;
  words[1] = r.iteration;
  words[2] = (r.final_record ? kFlagFinal : 0) | (r.fused ? kFlagFused : 0) |
             (static_cast<std::uint64_t>(r.status) << 8);
  words[3] = enc(r.value);
  words[4] = enc(r.grad_inf);
  words[5] = enc(r.proj_grad_norm);
  words[6] = enc(r.step);
  words[7] = r.active_set;
  words[8] = r.restriction_terms;
  words[9] = enc(r.kkt_lambda);
  words[10] = enc(r.kkt_residual);
  ring_.append(words);
}

std::vector<TraceRecord> SolverTrace::snapshot() const {
  std::vector<TraceRecord> out;
  for (const auto& words : ring_.snapshot()) {
    TraceRecord r;
    r.solve_id = words[0];
    r.iteration = static_cast<std::uint32_t>(words[1]);
    r.final_record = (words[2] & kFlagFinal) != 0;
    r.fused = (words[2] & kFlagFused) != 0;
    r.status = static_cast<std::uint8_t>(words[2] >> 8);
    r.value = dec(words[3]);
    r.grad_inf = dec(words[4]);
    r.proj_grad_norm = dec(words[5]);
    r.step = dec(words[6]);
    r.active_set = static_cast<std::uint32_t>(words[7]);
    r.restriction_terms = static_cast<std::uint32_t>(words[8]);
    r.kkt_lambda = dec(words[9]);
    r.kkt_residual = dec(words[10]);
    out.push_back(r);
  }
  return out;
}

void SolverTrace::write_jsonl(std::ostream& out) const {
  for (const TraceRecord& r : snapshot()) {
    JsonWriter json(out);
    json.begin_object()
        .key("solve").value(static_cast<std::uint64_t>(r.solve_id))
        .key("iter").value(static_cast<std::uint64_t>(r.iteration))
        .key("final").value(r.final_record)
        .key("fused").value(r.fused)
        .key("status").value(static_cast<std::uint64_t>(r.status))
        .key("value").value(r.value)
        .key("grad_inf").value(r.grad_inf)
        .key("proj_grad_norm").value(r.proj_grad_norm)
        .key("step").value(r.step)
        .key("active_set").value(static_cast<std::uint64_t>(r.active_set))
        .key("restriction_terms")
        .value(static_cast<std::uint64_t>(r.restriction_terms))
        .key("kkt_lambda").value(r.kkt_lambda)
        .key("kkt_residual").value(r.kkt_residual)
        .end_object();
    out << '\n';
  }
}

std::string SolverTrace::jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

SolverCounters register_solver_counters(MetricsRegistry& registry) {
  SolverCounters counters;
  counters.iterations = registry.counter(
      "netmon_solver_iterations_total",
      "Gradient-projection iterations executed");
  counters.release_events = registry.counter(
      "netmon_solver_release_events_total",
      "Active constraints released on negative KKT multipliers");
  counters.solves = registry.counter("netmon_solver_solves_total",
                                     "Completed maximize() calls");
  counters.cancelled = registry.counter(
      "netmon_solver_cancelled_total",
      "Solves stopped early by the should_stop hook");
  return counters;
}

}  // namespace netmon::obs
