#include "obs/flight_recorder.hpp"

#include <sstream>

#include "util/json.hpp"

namespace netmon::obs {

const char* to_string(ServeEvent event) noexcept {
  switch (event) {
    case ServeEvent::kAdmit: return "admit";
    case ServeEvent::kRejectFull: return "reject_full";
    case ServeEvent::kBadRequest: return "bad_request";
    case ServeEvent::kDequeue: return "dequeue";
    case ServeEvent::kBatchFormed: return "batch_formed";
    case ServeEvent::kSolveDone: return "solve_done";
    case ServeEvent::kDeadlineMissQueue: return "deadline_miss_queue";
    case ServeEvent::kDeadlineMissSolve: return "deadline_miss_solve";
    case ServeEvent::kShutdown: return "shutdown";
    case ServeEvent::kControlTrack: return "control_track";
    case ServeEvent::kControlTopology: return "control_topology";
    case ServeEvent::kControlResolve: return "control_resolve";
    case ServeEvent::kControlReconfigure: return "control_reconfig";
    case ServeEvent::kControlHold: return "control_hold";
    case ServeEvent::kControlSolveExpired: return "control_solve_expired";
    case ServeEvent::kCacheHit: return "cache_hit";
    case ServeEvent::kCacheMiss: return "cache_miss";
    case ServeEvent::kQuotaReject: return "quota_reject";
    case ServeEvent::kTenantSwap: return "tenant_swap";
    case ServeEvent::kConnOpen: return "conn_open";
    case ServeEvent::kConnClose: return "conn_close";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? nullptr
                          : std::make_unique<AtomicRing<kWords>>(capacity)) {}

std::size_t FlightRecorder::capacity() const noexcept {
  return ring_ ? ring_->capacity() : 0;
}

std::uint64_t FlightRecorder::total_recorded() const noexcept {
  return ring_ ? ring_->total() : 0;
}

void FlightRecorder::record(ServeEvent event, std::uint64_t request_id,
                            std::uint64_t arg, TimePoint at) noexcept {
  if (ring_ == nullptr) return;
  AtomicRing<kWords>::Record words;
  words[0] = static_cast<std::uint64_t>(to_ns(at));
  words[1] = static_cast<std::uint64_t>(event);
  words[2] = request_id;
  words[3] = arg;
  ring_->append(words);
}

std::vector<FlightRecord> FlightRecorder::dump() const {
  std::vector<FlightRecord> out;
  if (ring_ == nullptr) return out;
  for (const auto& words : ring_->snapshot()) {
    FlightRecord record;
    record.t_ns = static_cast<std::int64_t>(words[0]);
    record.event = static_cast<ServeEvent>(words[1]);
    record.request_id = words[2];
    record.arg = words[3];
    out.push_back(record);
  }
  return out;
}

void FlightRecorder::write_jsonl(std::ostream& out) const {
  for (const FlightRecord& record : dump()) {
    JsonWriter json(out);
    json.begin_object()
        .key("t_ns").value(static_cast<std::int64_t>(record.t_ns))
        .key("event").value(to_string(record.event))
        .key("request_id").value(record.request_id)
        .key("arg").value(record.arg)
        .end_object();
    out << '\n';
  }
}

std::string FlightRecorder::jsonl() const {
  std::ostringstream out;
  write_jsonl(out);
  return out.str();
}

}  // namespace netmon::obs
