#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <thread>

#include "util/error.hpp"

namespace netmon::obs {

namespace {

// Histogram cell layout (per shard, starting at the descriptor's cell):
//   [0] observation count
//   [1] sum (double bits)
//   [2] max (double bits; initialized to -inf at registration)
//   [3 ..] one count per bucket: bounds.size() finite buckets + overflow
constexpr std::uint32_t kHistCount = 0;
constexpr std::uint32_t kHistSum = 1;
constexpr std::uint32_t kHistMax = 2;
constexpr std::uint32_t kHistBuckets = 3;

double decode(std::uint64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}
std::uint64_t encode(double value) noexcept {
  return std::bit_cast<std::uint64_t>(value);
}

void atomic_add_double(std::atomic<std::uint64_t>& cell, double v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(cur, encode(decode(cur) + v),
                                     std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& cell, double v) noexcept {
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (decode(cur) < v) {
    if (cell.compare_exchange_weak(cur, encode(v),
                                   std::memory_order_relaxed))
      return;
  }
}

}  // namespace

std::size_t this_thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

const char* to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void Counter::inc(std::uint64_t n) const noexcept {
  if (registry_ == nullptr) return;
  registry_->cell(registry_->shard_for_this_thread(), cell_)
      .fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  if (registry_ == nullptr) return;
  // Last-write-wins: one authoritative cell in shard 0.
  registry_->cell(0, cell_).store(encode(value), std::memory_order_relaxed);
}

void Histogram::observe(double value) const noexcept {
  if (registry_ == nullptr) return;
  const std::size_t shard = registry_->shard_for_this_thread();
  registry_->cell(shard, cell_ + kHistCount)
      .fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(registry_->cell(shard, cell_ + kHistSum), value);
  atomic_max_double(registry_->cell(shard, cell_ + kHistMax), value);
  const std::vector<double>& bounds = *bounds_;
  const auto bucket = static_cast<std::uint32_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) -
      bounds.begin());
  registry_->cell(shard, cell_ + kHistBuckets + bucket)
      .fetch_add(1, std::memory_order_relaxed);
}

double MetricSnapshot::approx_quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  const double clamped_q = std::min(std::max(q, 0.0), 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped_q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      const double upper =
          b < bounds.size() ? bounds[b] : max;  // overflow bucket
      return std::min(upper, max);
    }
  }
  return max;
}

const MetricSnapshot* RegistrySnapshot::find(
    std::string_view name) const noexcept {
  for (const MetricSnapshot& metric : metrics)
    if (metric.name == name) return &metric;
  return nullptr;
}

MetricsRegistry::MetricsRegistry(MetricsOptions options)
    : shards_(options.shards), cells_per_shard_(options.cells_per_shard) {
  if (shards_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    shards_ = hw == 0 ? 1 : hw;
  }
  shards_ = std::min<std::size_t>(shards_, 64);
  NETMON_REQUIRE(cells_per_shard_ >= 1, "cells_per_shard must be >= 1");
  // Value-initialized arena: every cell starts at 0 (= 0.0 for doubles).
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      shards_ * cells_per_shard_);
}

const MetricsRegistry::Descriptor& MetricsRegistry::register_metric(
    const std::string& name, std::string help, MetricKind kind,
    std::uint32_t cells, std::vector<double> bounds) {
  NETMON_REQUIRE(!name.empty(), "metric name must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Descriptor& existing : descriptors_) {
    if (existing.name != name) continue;
    NETMON_REQUIRE(existing.kind == kind,
                   "metric re-registered with a different kind: " + name);
    NETMON_REQUIRE(existing.bounds == bounds,
                   "histogram re-registered with different buckets: " + name);
    return existing;
  }
  NETMON_REQUIRE(next_cell_ + cells <= cells_per_shard_,
                 "metrics cell arena exhausted registering " + name +
                     " (raise MetricsOptions::cells_per_shard)");
  Descriptor descriptor;
  descriptor.name = name;
  descriptor.help = std::move(help);
  descriptor.kind = kind;
  descriptor.cell = next_cell_;
  descriptor.cells = cells;
  descriptor.bounds = std::move(bounds);
  next_cell_ += cells;
  if (kind == MetricKind::kHistogram) {
    // Max cells start at -inf so negative observations merge correctly.
    for (std::size_t shard = 0; shard < shards_; ++shard)
      cell(shard, descriptor.cell + kHistMax)
          .store(encode(-std::numeric_limits<double>::infinity()),
                 std::memory_order_relaxed);
  }
  descriptors_.push_back(std::move(descriptor));
  return descriptors_.back();
}

Counter MetricsRegistry::counter(const std::string& name, std::string help) {
  const Descriptor& d =
      register_metric(name, std::move(help), MetricKind::kCounter, 1, {});
  return Counter(this, d.cell);
}

Gauge MetricsRegistry::gauge(const std::string& name, std::string help) {
  const Descriptor& d =
      register_metric(name, std::move(help), MetricKind::kGauge, 1, {});
  return Gauge(this, d.cell);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     std::string help) {
  NETMON_REQUIRE(!bounds.empty(), "histogram needs at least one bound");
  for (std::size_t b = 1; b < bounds.size(); ++b)
    NETMON_REQUIRE(bounds[b - 1] < bounds[b],
                   "histogram bounds must be strictly increasing");
  const auto cells =
      static_cast<std::uint32_t>(kHistBuckets + bounds.size() + 1);
  const Descriptor& d = register_metric(name, std::move(help),
                                        MetricKind::kHistogram, cells,
                                        std::move(bounds));
  return Histogram(this, &d.bounds, d.cell);
}

std::size_t MetricsRegistry::cells_used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_cell_;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.metrics.reserve(descriptors_.size());
  for (const Descriptor& d : descriptors_) {
    MetricSnapshot m;
    m.name = d.name;
    m.help = d.help;
    m.kind = d.kind;
    switch (d.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (std::size_t shard = 0; shard < shards_; ++shard)
          total += cell(shard, d.cell).load(std::memory_order_relaxed);
        m.value = static_cast<double>(total);
        break;
      }
      case MetricKind::kGauge:
        m.value = decode(cell(0, d.cell).load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        m.bounds = d.bounds;
        m.buckets.assign(d.bounds.size() + 1, 0);
        double max = -std::numeric_limits<double>::infinity();
        for (std::size_t shard = 0; shard < shards_; ++shard) {
          m.count +=
              cell(shard, d.cell + kHistCount).load(std::memory_order_relaxed);
          m.sum += decode(
              cell(shard, d.cell + kHistSum).load(std::memory_order_relaxed));
          max = std::max(max, decode(cell(shard, d.cell + kHistMax)
                                         .load(std::memory_order_relaxed)));
          for (std::size_t b = 0; b < m.buckets.size(); ++b)
            m.buckets[b] +=
                cell(shard,
                     d.cell + kHistBuckets + static_cast<std::uint32_t>(b))
                    .load(std::memory_order_relaxed);
        }
        m.max = m.count != 0 ? max : 0.0;
        break;
      }
    }
    out.metrics.push_back(std::move(m));
  }
  return out;
}

}  // namespace netmon::obs
