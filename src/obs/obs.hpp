// Umbrella header for the observability subsystem.
//
// netmon::obs provides low-overhead instrumentation for the solver and
// serving layers:
//   - MetricsRegistry  counters / gauges / histograms, sharded per
//                      thread so hot-path increments never contend
//   - SolverTrace      per-iteration solver records in a lock-free ring,
//                      exportable as JSONL
//   - FlightRecorder   recent serve events (admit/batch/solve/miss) for
//                      postmortems
//   - Clock            injectable monotonic time source shared by
//                      deadline checks and recorder timestamps
//   - export           Prometheus text exposition and JSONL snapshots
//
// Everything here is opt-in and allocation-free on the record path;
// detached handles (default-constructed Counter/Gauge/Histogram) cost a
// single branch, so uninstrumented code paths stay bit-identical.
#pragma once

#include "obs/clock.hpp"           // IWYU pragma: export
#include "obs/export.hpp"          // IWYU pragma: export
#include "obs/flight_recorder.hpp" // IWYU pragma: export
#include "obs/metrics.hpp"         // IWYU pragma: export
#include "obs/ring.hpp"            // IWYU pragma: export
#include "obs/trace.hpp"           // IWYU pragma: export
