#include "obs/clock.hpp"

namespace netmon::obs {

const Clock& Clock::system() noexcept {
  static const Clock instance;
  return instance;
}

}  // namespace netmon::obs
