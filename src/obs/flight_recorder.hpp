// FlightRecorder: a bounded lock-free ring of recent serving-layer
// events, dumpable on demand (or on error) for postmortems.
//
// "Why did request 4711 miss its deadline" is unanswerable from counters
// alone: you need the event sequence — when it was admitted and at what
// queue depth, when the dispatcher dequeued it, how large the batch was,
// when the solve finished or the deadline fired. The recorder keeps the
// last N such events with timestamps from the injected obs::Clock (the
// same clock the deadline checks use, so recorded times and expiry
// decisions can never disagree). Recording is wait-free and
// allocation-free; dumping is a consistent snapshot that skips at most
// the records being overwritten at that instant.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "obs/ring.hpp"

namespace netmon::obs {

/// What happened. `arg` in the record is event-specific (queue depth for
/// admits, batch size for batch-formed, status code for solve-done).
/// The control-loop events (src/control/) share the recorder: their
/// `request_id` is the measurement bin number, so the causal per-id
/// timestamp invariant covers a bin's track -> resolve -> actuate chain
/// the same way it covers a request's admit -> dequeue -> solve chain.
enum class ServeEvent : std::uint8_t {
  kAdmit = 0,
  kRejectFull = 1,
  kBadRequest = 2,
  kDequeue = 3,
  kBatchFormed = 4,
  kSolveDone = 5,
  kDeadlineMissQueue = 6,
  kDeadlineMissSolve = 7,
  kShutdown = 8,
  /// Control loop: tracker predict/correct ran (arg = gated outliers).
  kControlTrack = 9,
  /// Control loop: the failed-link set changed (arg = failed count).
  kControlTopology = 10,
  /// Control loop: a re-solve was triggered (arg = ResolveReason).
  kControlResolve = 11,
  /// Control loop: fresh rates pushed (arg = active monitors).
  kControlReconfigure = 12,
  /// Control loop: fresh optimum held back by hysteresis (arg = 0).
  kControlHold = 13,
  /// Control loop: re-solve abandoned on its deadline, incumbent kept
  /// (arg = iterations completed).
  kControlSolveExpired = 14,
  /// Tenant cache: exact fingerprint hit, solver skipped (arg = shard).
  kCacheHit = 15,
  /// Tenant cache: miss (arg = 1 when warm-started from a neighbor).
  kCacheMiss = 16,
  /// Tenant quota rejected the request (arg = quota::Decision).
  kQuotaReject = 17,
  /// Tenant registry published a new snapshot (arg = new epoch).
  kTenantSwap = 18,
  /// TCP transport: connection accepted (request_id = connection id,
  /// arg = live connection count).
  kConnOpen = 19,
  /// TCP transport: connection closed (request_id = connection id,
  /// arg = live connection count after the close).
  kConnClose = 20,
};

const char* to_string(ServeEvent event) noexcept;

struct FlightRecord {
  /// Clock timestamp, nanoseconds since the clock's epoch.
  std::int64_t t_ns = 0;
  ServeEvent event = ServeEvent::kAdmit;
  /// Request correlation id (0 for request-less events like
  /// batch-formed).
  std::uint64_t request_id = 0;
  /// Event-specific detail (see ServeEvent).
  std::uint64_t arg = 0;
};

class FlightRecorder {
 public:
  /// Capacity in events, rounded up to a power of two; 0 disables the
  /// recorder entirely (record() becomes a no-op).
  explicit FlightRecorder(std::size_t capacity = 1024);

  bool enabled() const noexcept { return ring_ != nullptr; }
  std::size_t capacity() const noexcept;
  std::uint64_t total_recorded() const noexcept;

  /// Appends one event. Lock-free, allocation-free, any thread.
  void record(ServeEvent event, std::uint64_t request_id, std::uint64_t arg,
              TimePoint at) noexcept;

  /// The retained events, oldest first.
  std::vector<FlightRecord> dump() const;

  /// One JSON object per retained event, newline-terminated.
  void write_jsonl(std::ostream& out) const;
  std::string jsonl() const;

 private:
  static constexpr std::size_t kWords = 4;
  std::unique_ptr<AtomicRing<kWords>> ring_;
};

}  // namespace netmon::obs
