#include "obs/export.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hpp"

namespace netmon::obs {

namespace {

// Prometheus number formatting: shortest round-trip decimal, with the
// non-finite spellings the exposition format defines.
void write_number(std::ostream& out, double value) {
  if (std::isnan(value)) {
    out << "NaN";
  } else if (std::isinf(value)) {
    out << (value > 0 ? "+Inf" : "-Inf");
  } else {
    std::ostringstream tmp;
    tmp.precision(std::numeric_limits<double>::max_digits10);
    tmp << value;
    out << tmp.str();
  }
}

void write_header(std::ostream& out, const MetricSnapshot& metric) {
  if (!metric.help.empty())
    out << "# HELP " << metric.name << ' ' << metric.help << '\n';
  out << "# TYPE " << metric.name << ' ' << to_string(metric.kind) << '\n';
}

}  // namespace

void write_prometheus(std::ostream& out, const RegistrySnapshot& snapshot) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    write_header(out, metric);
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out << metric.name << ' ';
        write_number(out, metric.value);
        out << '\n';
        break;
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < metric.buckets.size(); ++b) {
          cumulative += metric.buckets[b];
          out << metric.name << "_bucket{le=\"";
          if (b < metric.bounds.size()) {
            write_number(out, metric.bounds[b]);
          } else {
            out << "+Inf";
          }
          out << "\"} " << cumulative << '\n';
        }
        out << metric.name << "_sum ";
        write_number(out, metric.sum);
        out << '\n';
        out << metric.name << "_count " << metric.count << '\n';
        break;
      }
    }
  }
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_prometheus(out, registry.snapshot());
  return out.str();
}

void write_metrics_jsonl(std::ostream& out, const RegistrySnapshot& snapshot) {
  for (const MetricSnapshot& metric : snapshot.metrics) {
    JsonWriter json(out);
    json.begin_object()
        .key("name").value(metric.name)
        .key("kind").value(to_string(metric.kind));
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        json.key("value").value(metric.value);
        break;
      case MetricKind::kHistogram: {
        json.key("count").value(metric.count)
            .key("sum").value(metric.sum)
            .key("max").value(metric.max)
            .key("mean").value(metric.mean())
            .key("p99").value(metric.approx_quantile(0.99));
        json.key("bounds").begin_array();
        for (double bound : metric.bounds) json.value(bound);
        json.end_array();
        json.key("buckets").begin_array();
        for (std::uint64_t bucket : metric.buckets) json.value(bucket);
        json.end_array();
        break;
      }
    }
    json.end_object();
    out << '\n';
  }
}

std::string metrics_jsonl(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_metrics_jsonl(out, registry.snapshot());
  return out.str();
}

}  // namespace netmon::obs
