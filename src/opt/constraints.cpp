#include "opt/constraints.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::opt {

BoxBudgetConstraints::BoxBudgetConstraints(std::vector<double> u,
                                           std::vector<double> alpha,
                                           double theta)
    : u_(std::move(u)), alpha_(std::move(alpha)), theta_(theta) {
  NETMON_REQUIRE(!u_.empty(), "constraint set needs >= 1 variable");
  NETMON_REQUIRE(u_.size() == alpha_.size(), "loads/bounds size mismatch");
  double max_budget = 0.0;
  for (std::size_t j = 0; j < u_.size(); ++j) {
    NETMON_REQUIRE(u_[j] > 0.0, "link loads must be positive");
    NETMON_REQUIRE(alpha_[j] > 0.0 && alpha_[j] <= 1.0,
                   "alpha bounds must lie in (0,1]");
    max_budget += u_[j] * alpha_[j];
  }
  NETMON_REQUIRE(theta_ > 0.0, "theta must be positive");
  NETMON_REQUIRE(theta_ <= max_budget * (1.0 + 1e-12),
                 "theta exceeds the samplable volume sum(u*alpha)");
}

double BoxBudgetConstraints::budget(std::span<const double> p) const {
  NETMON_REQUIRE(p.size() == u_.size(), "dimension mismatch");
  double sum = 0.0;
  for (std::size_t j = 0; j < u_.size(); ++j) sum += u_[j] * p[j];
  return sum;
}

bool BoxBudgetConstraints::feasible(std::span<const double> p,
                                    double tol) const {
  if (p.size() != u_.size()) return false;
  for (std::size_t j = 0; j < u_.size(); ++j) {
    if (p[j] < -tol || p[j] > alpha_[j] + tol) return false;
  }
  return std::abs(budget(p) - theta_) <= tol * std::max(1.0, theta_);
}

std::vector<double> BoxBudgetConstraints::initial_point() const {
  double max_budget = 0.0;
  for (std::size_t j = 0; j < u_.size(); ++j) max_budget += u_[j] * alpha_[j];
  const double t = std::min(1.0, theta_ / max_budget);
  std::vector<double> p(u_.size());
  for (std::size_t j = 0; j < u_.size(); ++j) p[j] = t * alpha_[j];
  return p;
}

std::vector<double> BoxBudgetConstraints::project(
    std::span<const double> y) const {
  NETMON_REQUIRE(y.size() == u_.size(), "dimension mismatch");
  auto clamped = [&](double lambda, std::size_t j) {
    return std::clamp(y[j] - lambda * u_[j], 0.0, alpha_[j]);
  };
  auto budget_at = [&](double lambda) {
    double sum = 0.0;
    for (std::size_t j = 0; j < u_.size(); ++j)
      sum += u_[j] * clamped(lambda, j);
    return sum;
  };
  // budget_at is non-increasing in lambda; bracket the root.
  double lo = 0.0, hi = 0.0;
  {
    // Expand until budget_at(lo) >= theta >= budget_at(hi).
    double span = 1.0;
    while (budget_at(lo) < theta_) {
      lo -= span;
      span *= 2.0;
      NETMON_REQUIRE(span < 1e30, "projection bracket failure (low)");
    }
    span = 1.0;
    while (budget_at(hi) > theta_) {
      hi += span;
      span *= 2.0;
      NETMON_REQUIRE(span < 1e30, "projection bracket failure (high)");
    }
  }
  // Bisect until the *budget* matches theta tightly; a tolerance on
  // lambda alone is not scale-free (d budget / d lambda ~ sum u^2 can be
  // enormous when loads are packets-per-interval).
  double lambda = 0.5 * (lo + hi);
  for (int iter = 0; iter < 500; ++iter) {
    lambda = 0.5 * (lo + hi);
    const double b = budget_at(lambda);
    if (std::abs(b - theta_) <= 1e-13 * std::max(1.0, theta_)) break;
    if (b >= theta_) lo = lambda;
    else hi = lambda;
  }
  std::vector<double> p(u_.size());
  for (std::size_t j = 0; j < u_.size(); ++j) p[j] = clamped(lambda, j);
  // Distribute any residual drift over the coordinates strictly inside
  // their bounds so the equality holds to full precision.
  const double drift = theta_ - budget(p);
  if (drift != 0.0) {
    double uu = 0.0;
    for (std::size_t j = 0; j < u_.size(); ++j) {
      if (p[j] > 0.0 && p[j] < alpha_[j]) uu += u_[j] * u_[j];
    }
    if (uu > 0.0) {
      for (std::size_t j = 0; j < u_.size(); ++j) {
        if (p[j] > 0.0 && p[j] < alpha_[j])
          p[j] = std::clamp(p[j] + drift * u_[j] / uu, 0.0, alpha_[j]);
      }
    }
  }
  return p;
}

}  // namespace netmon::opt
