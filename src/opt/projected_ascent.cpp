#include "opt/projected_ascent.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::opt {

ProjectedAscentResult maximize_reference(
    const Objective& f, const BoxBudgetConstraints& constraints,
    const ProjectedAscentOptions& options) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(f.dimension() == n, "dimension mismatch");

  ProjectedAscentResult result;
  result.p = constraints.initial_point();
  result.value = f.value(result.p);

  std::vector<double> g(n), y(n);
  double step = options.step;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    f.gradient(result.p, g);
    // Backtrack until the projected step improves the objective.
    bool accepted = false;
    std::vector<double> candidate;
    double candidate_value = 0.0;
    for (int back = 0; back < 60; ++back) {
      for (std::size_t j = 0; j < n; ++j) y[j] = result.p[j] + step * g[j];
      candidate = constraints.project(y);
      candidate_value = f.value(candidate);
      if (candidate_value >= result.value) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;

    double move = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      move = std::max(move, std::abs(candidate[j] - result.p[j]));
    const double gain = candidate_value - result.value;
    result.p = std::move(candidate);
    result.value = candidate_value;
    step *= 1.3;  // cautiously re-grow the step
    if (move <= options.move_tol && gain <= options.value_tol) break;
  }
  return result;
}

}  // namespace netmon::opt
