#include "opt/objective.hpp"

#include "util/error.hpp"

namespace netmon::opt {

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities)
    : SeparableConcaveObjective(dimension, std::move(rows),
                                std::move(utilities), {}) {}

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities,
    std::vector<double> offsets)
    : dimension_(dimension),
      rows_(std::move(rows)),
      utilities_(std::move(utilities)),
      offsets_(std::move(offsets)) {
  NETMON_REQUIRE(offsets_.empty() || offsets_.size() == rows_.size(),
                 "one offset per row required when offsets are given");
  NETMON_REQUIRE(rows_.size() == utilities_.size(),
                 "one utility per objective term required");
  for (const auto& row : rows_) {
    for (const auto& [col, coeff] : row) {
      NETMON_REQUIRE(col < dimension_, "sparse column out of range");
      NETMON_REQUIRE(coeff >= 0.0, "routing coefficients must be >= 0");
    }
  }
  for (const auto& u : utilities_)
    NETMON_REQUIRE(u != nullptr, "null utility");
}

std::vector<double> SeparableConcaveObjective::inner(
    std::span<const double> p) const {
  NETMON_REQUIRE(p.size() == dimension_, "variable dimension mismatch");
  std::vector<double> x(rows_.size(), 0.0);
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    if (!offsets_.empty()) x[k] = offsets_[k];
    for (const auto& [col, coeff] : rows_[k]) x[k] += coeff * p[col];
  }
  return x;
}

double SeparableConcaveObjective::value(std::span<const double> p) const {
  const std::vector<double> x = inner(p);
  double sum = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) sum += utilities_[k]->value(x[k]);
  return sum;
}

void SeparableConcaveObjective::gradient(std::span<const double> p,
                                         std::span<double> out) const {
  NETMON_REQUIRE(out.size() == dimension_, "gradient dimension mismatch");
  const std::vector<double> x = inner(p);
  for (double& g : out) g = 0.0;
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    const double d = utilities_[k]->deriv(x[k]);
    for (const auto& [col, coeff] : rows_[k]) out[col] += coeff * d;
  }
}

double SeparableConcaveObjective::directional_second(
    std::span<const double> p, std::span<const double> s) const {
  NETMON_REQUIRE(s.size() == dimension_, "direction dimension mismatch");
  const std::vector<double> x = inner(p);
  double sum = 0.0;
  for (std::size_t k = 0; k < rows_.size(); ++k) {
    double rs = 0.0;
    for (const auto& [col, coeff] : rows_[k]) rs += coeff * s[col];
    sum += utilities_[k]->second(x[k]) * rs * rs;
  }
  return sum;
}

}  // namespace netmon::opt
