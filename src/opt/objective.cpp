#include "opt/objective.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/parallel_kernels.hpp"
#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::opt {

namespace {

SimdLevel clamp_level(SimdLevel level) {
  const int max = static_cast<int>(simd_max_level());
  const int requested = static_cast<int>(level);
  return static_cast<SimdLevel>(std::min(std::max(requested, 0), max));
}

SimdLevel level_from_env() {
  const char* env = std::getenv("NETMON_SIMD");
  return env == nullptr ? simd_max_level() : clamp_level(parse_simd_level(env));
}

bool fastmath_from_env() {
  const char* env = std::getenv("NETMON_SIMD_FASTMATH");
  return env != nullptr && parse_simd_fastmath(env);
}

std::atomic<int>& simd_level_flag() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

std::atomic<bool>& fastmath_flag() {
  static std::atomic<bool> enabled{fastmath_from_env()};
  return enabled;
}

}  // namespace

SimdLevel simd_max_level() {
#if defined(NETMON_HAVE_AVX512) || defined(NETMON_HAVE_AVX2)
  static const SimdLevel detected = [] {
#ifdef NETMON_HAVE_AVX512
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
      return SimdLevel::kAvx512;
    }
#endif
#ifdef NETMON_HAVE_AVX2
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return SimdLevel::kAvx2;
#endif
    return SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel parse_simd_level(std::string_view value) {
  if (value == "scalar" || value == "0" || value == "off")
    return SimdLevel::kScalar;
  if (value == "avx2") return SimdLevel::kAvx2;
  if (value == "avx512") return SimdLevel::kAvx512;
  if (value == "auto" || value == "on" || value == "1" || value.empty())
    return simd_max_level();
  NETMON_REQUIRE(false, "NETMON_SIMD: unknown value '" + std::string(value) +
                            "' (expected scalar|avx2|avx512|auto, or "
                            "0|off|1|on)");
  return SimdLevel::kScalar;  // unreachable
}

bool parse_simd_fastmath(std::string_view value) {
  if (value == "0" || value == "off" || value.empty()) return false;
  if (value == "1" || value == "on") return true;
  NETMON_REQUIRE(false, "NETMON_SIMD_FASTMATH: unknown value '" +
                            std::string(value) + "' (expected 0|off|1|on)");
  return false;  // unreachable
}

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

SimdLevel simd_dispatch_level() {
  return static_cast<SimdLevel>(
      simd_level_flag().load(std::memory_order_relaxed));
}

void set_simd_dispatch_level(SimdLevel level) {
  simd_level_flag().store(static_cast<int>(clamp_level(level)),
                          std::memory_order_relaxed);
}

bool simd_fastmath_enabled() {
  return fastmath_flag().load(std::memory_order_relaxed);
}

void set_simd_fastmath(bool enabled) {
  fastmath_flag().store(enabled, std::memory_order_relaxed);
}

bool simd_dispatch_enabled() {
  return simd_dispatch_level() != SimdLevel::kScalar;
}

void set_simd_dispatch(bool enabled) {
  set_simd_dispatch_level(enabled ? simd_max_level() : SimdLevel::kScalar);
}

SeparableConcaveObjective::SeparableConcaveObjective(
    linalg::SparseCsr matrix,
    std::vector<std::shared_ptr<const Concave1d>> utilities,
    std::vector<double> offsets)
    : matrix_(std::move(matrix)),
      utilities_(std::move(utilities)),
      offsets_(std::move(offsets)) {
  validate();
  compile_batch_runs();
  matrix_t_ = matrix_.transpose();
}

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities)
    : SeparableConcaveObjective(dimension, std::move(rows),
                                std::move(utilities), {}) {}

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities,
    std::vector<double> offsets)
    : SeparableConcaveObjective(linalg::SparseCsr::from_rows(dimension, rows),
                                std::move(utilities), std::move(offsets)) {}

void SeparableConcaveObjective::validate() {
  NETMON_REQUIRE(offsets_.empty() || offsets_.size() == matrix_.rows(),
                 "one offset per row required when offsets are given");
  NETMON_REQUIRE(matrix_.rows() == utilities_.size(),
                 "one utility per objective term required");
  for (const double coeff : matrix_.values())
    NETMON_REQUIRE(coeff >= 0.0, "routing coefficients must be >= 0");
  for (const auto& u : utilities_)
    NETMON_REQUIRE(u != nullptr, "null utility");
}

void SeparableConcaveObjective::compile_batch_runs() {
  const std::size_t n = utilities_.size();
  soa_.assign(Concave1d::kBatchParamCount * n, 0.0);
  runs_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    Concave1d::BatchParams params{};
    const Concave1d::BatchKernel* kernel =
        utilities_[k]->batch_kernel(params);
    // Transpose the per-term parameter pack into the SoA columns.
    for (std::size_t j = 0; j < Concave1d::kBatchParamCount; ++j)
      soa_[j * n + k] = params[j];
    if (!runs_.empty() && runs_.back().kernel == kernel) {
      runs_.back().end = k + 1;
    } else {
      runs_.push_back({kernel, k, k + 1});
    }
  }
}

void SeparableConcaveObjective::map_terms(Map mode, std::span<const double> x,
                                          std::span<double> out) const {
  const std::size_t stride = term_count();
  for (const BatchRun& run : runs_) {
    const std::size_t n = run.end - run.begin;
    if (run.kernel != nullptr) {
      const Concave1d::BatchKernel::MapFn fn =
          mode == Map::kValue    ? run.kernel->value
          : mode == Map::kDeriv  ? run.kernel->deriv
                                 : run.kernel->second;
      fn(soa_base(run.begin), stride, x.data() + run.begin,
         out.data() + run.begin, n);
      continue;
    }
    for (std::size_t k = run.begin; k < run.end; ++k) {
      switch (mode) {
        case Map::kValue:
          out[k] = utilities_[k]->value(x[k]);
          break;
        case Map::kDeriv:
          out[k] = utilities_[k]->deriv(x[k]);
          break;
        case Map::kSecond:
          out[k] = utilities_[k]->second(x[k]);
          break;
      }
    }
  }
}

void SeparableConcaveObjective::fused_terms(std::span<const double> x,
                                            std::span<double> v,
                                            std::span<double> m1,
                                            std::span<double> m2) const {
  fused_terms_range(0, term_count(), x, v, m1, m2, simd_dispatch_level(),
                    simd_fastmath_enabled());
}

void SeparableConcaveObjective::fused_terms_range(
    std::size_t begin, std::size_t end, std::span<const double> x,
    std::span<double> v, std::span<double> m1, std::span<double> m2,
    SimdLevel level, bool fastmath) const {
  const std::size_t stride = term_count();
  // First run overlapping [begin, end): runs_ partitions [0, n) in order.
  auto it = std::partition_point(
      runs_.begin(), runs_.end(),
      [begin](const BatchRun& run) { return run.end <= begin; });
  for (; it != runs_.end() && it->begin < end; ++it) {
    const std::size_t lo = std::max(it->begin, begin);
    const std::size_t hi = std::min(it->end, end);
    const std::size_t n = hi - lo;
    if (it->kernel != nullptr && it->kernel->fused != nullptr) {
      // Sub-range dispatch is safe because the kernels are elementwise:
      // every level is bit-identical per element no matter where the
      // range starts.
      const Concave1d::BatchKernel::FusedFn fn =
          it->kernel->select_fused(level, fastmath);
      fn(soa_base(lo), stride, x.data() + lo, v.data() + lo, m1.data() + lo,
         m2.data() + lo, n);
      continue;
    }
    for (std::size_t k = lo; k < hi; ++k) {
      v[k] = utilities_[k]->value(x[k]);
      m1[k] = utilities_[k]->deriv(x[k]);
      m2[k] = utilities_[k]->second(x[k]);
    }
  }
}

void SeparableConcaveObjective::fused_terms(std::span<const double> x,
                                            std::span<double> v,
                                            std::span<double> m1,
                                            std::span<double> m2,
                                            runtime::ThreadPool& pool) const {
  const SimdLevel level = simd_dispatch_level();
  const bool fastmath = simd_fastmath_enabled();
  const auto chunks = runtime::make_chunks_for_width(
      term_count(), runtime::ChunkOptions{.grain = 512}, pool.size());
  if (chunks.size() <= 1) {
    fused_terms_range(0, term_count(), x, v, m1, m2, level, fastmath);
    return;
  }
  runtime::TaskGroup group(pool);
  for (const auto& [b, e] : chunks) {
    group.run([this, b = b, e = e, x, v, m1, m2, level, fastmath] {
      fused_terms_range(b, e, x, v, m1, m2, level, fastmath);
    });
  }
  group.wait();
}

void SeparableConcaveObjective::inner_into(std::span<const double> p,
                                           std::span<double> x) const {
  NETMON_REQUIRE(p.size() == matrix_.cols(), "variable dimension mismatch");
  NETMON_REQUIRE(x.size() == matrix_.rows(), "inner output size mismatch");
  if (offsets_.empty()) {
    linalg::spmv(matrix_, p, x);
    return;
  }
  // Offset-first accumulation, matching the historical pair-list loop
  // bit for bit: x_k = a_k + sum_i r_{k,i} p_i, left to right.
  const std::span<const std::size_t> row_ptr = matrix_.row_ptr();
  const std::span<const linalg::SparseCsr::Index> cols = matrix_.col_idx();
  const std::span<const double> vals = matrix_.values();
  for (std::size_t k = 0; k < matrix_.rows(); ++k) {
    double acc = offsets_[k];
    for (std::size_t i = row_ptr[k]; i < row_ptr[k + 1]; ++i)
      acc += vals[i] * p[cols[i]];
    x[k] = acc;
  }
}

void SeparableConcaveObjective::inner_into(std::span<const double> p,
                                           std::span<double> x,
                                           runtime::ThreadPool& pool) const {
  NETMON_REQUIRE(p.size() == matrix_.cols(), "variable dimension mismatch");
  NETMON_REQUIRE(x.size() == matrix_.rows(), "inner output size mismatch");
  if (offsets_.empty()) {
    linalg::spmv_parallel(matrix_, p, x, pool);
    return;
  }
  // Row-sharded offset-first accumulation; same per-row loop as the
  // serial overload, disjoint output slots — bit-identical.
  const std::span<const std::size_t> row_ptr = matrix_.row_ptr();
  const std::span<const linalg::SparseCsr::Index> cols = matrix_.col_idx();
  const std::span<const double> vals = matrix_.values();
  runtime::parallel_for(pool, matrix_.rows(), [&](std::size_t k) {
    double acc = offsets_[k];
    for (std::size_t i = row_ptr[k]; i < row_ptr[k + 1]; ++i)
      acc += vals[i] * p[cols[i]];
    x[k] = acc;
  });
}

void SeparableConcaveObjective::inner_axpy(std::size_t col, double delta,
                                           std::span<double> x) const {
  NETMON_REQUIRE(x.size() == matrix_.rows(), "inner size mismatch");
  linalg::row_axpy(matrix_t_, col, delta, x);
}

std::vector<double> SeparableConcaveObjective::inner(
    std::span<const double> p) const {
  std::vector<double> x(matrix_.rows());
  inner_into(p, x);
  return x;
}

double SeparableConcaveObjective::value(std::span<const double> p,
                                        linalg::EvalWorkspace& ws) const {
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> m = ws.rows_b(n);
  inner_into(p, x);
  map_terms(Map::kValue, x, m);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += m[k];
  return sum;
}

double SeparableConcaveObjective::value_from_inner(
    std::span<const double> x, linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(x.size() == term_count(), "inner size mismatch");
  const std::size_t n = term_count();
  const std::span<double> m = ws.rows_b(n);
  map_terms(Map::kValue, x, m);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += m[k];
  return sum;
}

void SeparableConcaveObjective::gradient(std::span<const double> p,
                                         std::span<double> out,
                                         linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(out.size() == matrix_.cols(), "gradient dimension mismatch");
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> d = ws.rows_b(n);
  inner_into(p, x);
  map_terms(Map::kDeriv, x, d);
  // grad f = R^T M'(x): the scatter visits rows in ascending order, so
  // each out[j] accumulates in the same order as the old nested loop.
  linalg::spmv_t(matrix_, d, out);
}

double SeparableConcaveObjective::directional_second(
    std::span<const double> p, std::span<const double> s,
    linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(s.size() == matrix_.cols(), "direction dimension mismatch");
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> rs = ws.rows_b(n);
  const std::span<double> m2 = ws.rows_c(n);
  inner_into(p, x);
  linalg::spmv(matrix_, s, rs);  // (Rs)_k, no offsets in the derivative
  map_terms(Map::kSecond, x, m2);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += m2[k] * rs[k] * rs[k];
  return sum;
}

SeparableConcaveObjective::FusedEval SeparableConcaveObjective::fused_eval(
    std::span<const double> p, std::span<double> grad,
    linalg::EvalWorkspace& ws) const {
  const std::span<double> x = ws.rows_a(term_count());
  inner_into(p, x);
  return fused_eval_from_inner(x, grad, ws);
}

SeparableConcaveObjective::FusedEval
SeparableConcaveObjective::fused_eval_from_inner(
    std::span<const double> x, std::span<double> grad,
    linalg::EvalWorkspace& ws) const {
  return fused_eval_from_inner(x, grad, ws, nullptr);
}

SeparableConcaveObjective::FusedEval
SeparableConcaveObjective::fused_eval_from_inner(
    std::span<const double> x, std::span<double> grad,
    linalg::EvalWorkspace& ws, runtime::ThreadPool* pool) const {
  NETMON_REQUIRE(x.size() == term_count(), "inner size mismatch");
  NETMON_REQUIRE(grad.size() == matrix_.cols(),
                 "gradient dimension mismatch");
  const std::size_t n = term_count();
  const std::span<double> v = ws.rows_b(n);
  const std::span<double> m1 = ws.rows_c(n);
  const std::span<double> m2 = ws.rows_d(n);
  if (pool != nullptr) {
    fused_terms(x, v, m1, m2, *pool);
    // grad = R^T m1 as a row-parallel spmv over the stored transpose —
    // bit-identical to the serial scatter (parallel_kernels.hpp).
    linalg::spmv_t_parallel(matrix_t_, m1, grad, *pool);
  } else {
    fused_terms(x, v, m1, m2);
    linalg::spmv_t(matrix_, m1, grad);
  }
  FusedEval out;
  // Same left-to-right sum as value(), so the result is bit-identical.
  for (std::size_t k = 0; k < n; ++k) out.value += v[k];
  out.x = x;
  out.m1 = m1;
  out.m2 = m2;
  return out;
}

void SeparableConcaveObjective::grad_hess_diag_from_terms(
    std::span<const double> m1, std::span<const double> m2,
    std::span<double> grad, std::span<double> hess_diag) const {
  linalg::spmv_t_grad_hess(matrix_, m1, m2, grad, hess_diag);
}

double SeparableConcaveObjective::directional_second_from_terms(
    std::span<const double> m2, std::span<const double> rs) const {
  NETMON_REQUIRE(m2.size() == term_count() && rs.size() == term_count(),
                 "term size mismatch");
  double sum = 0.0;
  for (std::size_t k = 0; k < term_count(); ++k)
    sum += m2[k] * rs[k] * rs[k];
  return sum;
}

double SeparableConcaveObjective::value(std::span<const double> p) const {
  return value(p, scratch_);
}

void SeparableConcaveObjective::gradient(std::span<const double> p,
                                         std::span<double> out) const {
  gradient(p, out, scratch_);
}

double SeparableConcaveObjective::directional_second(
    std::span<const double> p, std::span<const double> s) const {
  return directional_second(p, s, scratch_);
}

double SeparableConcaveObjective::value_parallel(
    std::span<const double> p, runtime::ThreadPool& pool) const {
  NETMON_REQUIRE(p.size() == matrix_.cols(), "variable dimension mismatch");
  // Per-chunk partial sums over CSR row ranges; the chunk layout is a
  // pure function of the term count, so the result is bit-identical at
  // every thread count (though not to the serial single-sum value()).
  return runtime::parallel_reduce(
      pool, term_count(), 0.0,
      [&](std::size_t k) {
        double x = offsets_.empty() ? 0.0 : offsets_[k];
        x += linalg::row_dot(matrix_, k, p);
        return utilities_[k]->value(x);
      },
      [](double a, double b) { return a + b; },
      runtime::ChunkOptions{.grain = 64});
}

}  // namespace netmon::opt
