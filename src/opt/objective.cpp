#include "opt/objective.hpp"

#include <algorithm>

#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::opt {

SeparableConcaveObjective::SeparableConcaveObjective(
    linalg::SparseCsr matrix,
    std::vector<std::shared_ptr<const Concave1d>> utilities,
    std::vector<double> offsets)
    : matrix_(std::move(matrix)),
      utilities_(std::move(utilities)),
      offsets_(std::move(offsets)) {
  validate();
  compile_batch_runs();
}

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities)
    : SeparableConcaveObjective(dimension, std::move(rows),
                                std::move(utilities), {}) {}

SeparableConcaveObjective::SeparableConcaveObjective(
    std::size_t dimension, SparseRows rows,
    std::vector<std::shared_ptr<const Concave1d>> utilities,
    std::vector<double> offsets)
    : SeparableConcaveObjective(linalg::SparseCsr::from_rows(dimension, rows),
                                std::move(utilities), std::move(offsets)) {}

void SeparableConcaveObjective::validate() {
  NETMON_REQUIRE(offsets_.empty() || offsets_.size() == matrix_.rows(),
                 "one offset per row required when offsets are given");
  NETMON_REQUIRE(matrix_.rows() == utilities_.size(),
                 "one utility per objective term required");
  for (const double coeff : matrix_.values())
    NETMON_REQUIRE(coeff >= 0.0, "routing coefficients must be >= 0");
  for (const auto& u : utilities_)
    NETMON_REQUIRE(u != nullptr, "null utility");
}

void SeparableConcaveObjective::compile_batch_runs() {
  const std::size_t n = utilities_.size();
  params_.resize(n);
  runs_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    const Concave1d::BatchKernel* kernel =
        utilities_[k]->batch_kernel(params_[k]);
    if (!runs_.empty() && runs_.back().kernel == kernel) {
      runs_.back().end = k + 1;
    } else {
      runs_.push_back({kernel, k, k + 1});
    }
  }
}

void SeparableConcaveObjective::map_terms(Map mode, std::span<const double> x,
                                          std::span<double> out) const {
  for (const BatchRun& run : runs_) {
    const std::size_t n = run.end - run.begin;
    if (run.kernel != nullptr) {
      const Concave1d::BatchKernel::Fn fn =
          mode == Map::kValue    ? run.kernel->value
          : mode == Map::kDeriv  ? run.kernel->deriv
                                 : run.kernel->second;
      fn(params_.data() + run.begin, x.data() + run.begin,
         out.data() + run.begin, n);
      continue;
    }
    for (std::size_t k = run.begin; k < run.end; ++k) {
      switch (mode) {
        case Map::kValue:
          out[k] = utilities_[k]->value(x[k]);
          break;
        case Map::kDeriv:
          out[k] = utilities_[k]->deriv(x[k]);
          break;
        case Map::kSecond:
          out[k] = utilities_[k]->second(x[k]);
          break;
      }
    }
  }
}

void SeparableConcaveObjective::inner_into(std::span<const double> p,
                                           std::span<double> x) const {
  NETMON_REQUIRE(p.size() == matrix_.cols(), "variable dimension mismatch");
  NETMON_REQUIRE(x.size() == matrix_.rows(), "inner output size mismatch");
  if (offsets_.empty()) {
    linalg::spmv(matrix_, p, x);
    return;
  }
  // Offset-first accumulation, matching the historical pair-list loop
  // bit for bit: x_k = a_k + sum_i r_{k,i} p_i, left to right.
  const std::span<const std::size_t> row_ptr = matrix_.row_ptr();
  const std::span<const linalg::SparseCsr::Index> cols = matrix_.col_idx();
  const std::span<const double> vals = matrix_.values();
  for (std::size_t k = 0; k < matrix_.rows(); ++k) {
    double acc = offsets_[k];
    for (std::size_t i = row_ptr[k]; i < row_ptr[k + 1]; ++i)
      acc += vals[i] * p[cols[i]];
    x[k] = acc;
  }
}

std::vector<double> SeparableConcaveObjective::inner(
    std::span<const double> p) const {
  std::vector<double> x(matrix_.rows());
  inner_into(p, x);
  return x;
}

double SeparableConcaveObjective::value(std::span<const double> p,
                                        linalg::EvalWorkspace& ws) const {
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> m = ws.rows_b(n);
  inner_into(p, x);
  map_terms(Map::kValue, x, m);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += m[k];
  return sum;
}

void SeparableConcaveObjective::gradient(std::span<const double> p,
                                         std::span<double> out,
                                         linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(out.size() == matrix_.cols(), "gradient dimension mismatch");
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> d = ws.rows_b(n);
  inner_into(p, x);
  map_terms(Map::kDeriv, x, d);
  // grad f = R^T M'(x): the scatter visits rows in ascending order, so
  // each out[j] accumulates in the same order as the old nested loop.
  linalg::spmv_t(matrix_, d, out);
}

double SeparableConcaveObjective::directional_second(
    std::span<const double> p, std::span<const double> s,
    linalg::EvalWorkspace& ws) const {
  NETMON_REQUIRE(s.size() == matrix_.cols(), "direction dimension mismatch");
  const std::size_t n = term_count();
  const std::span<double> x = ws.rows_a(n);
  const std::span<double> rs = ws.rows_b(n);
  const std::span<double> m2 = ws.rows_c(n);
  inner_into(p, x);
  linalg::spmv(matrix_, s, rs);  // (Rs)_k, no offsets in the derivative
  map_terms(Map::kSecond, x, m2);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += m2[k] * rs[k] * rs[k];
  return sum;
}

double SeparableConcaveObjective::value(std::span<const double> p) const {
  return value(p, scratch_);
}

void SeparableConcaveObjective::gradient(std::span<const double> p,
                                         std::span<double> out) const {
  gradient(p, out, scratch_);
}

double SeparableConcaveObjective::directional_second(
    std::span<const double> p, std::span<const double> s) const {
  return directional_second(p, s, scratch_);
}

double SeparableConcaveObjective::value_parallel(
    std::span<const double> p, runtime::ThreadPool& pool) const {
  NETMON_REQUIRE(p.size() == matrix_.cols(), "variable dimension mismatch");
  // Per-chunk partial sums over CSR row ranges; the chunk layout is a
  // pure function of the term count, so the result is bit-identical at
  // every thread count (though not to the serial single-sum value()).
  return runtime::parallel_reduce(
      pool, term_count(), 0.0,
      [&](std::size_t k) {
        double x = offsets_.empty() ? 0.0 : offsets_[k];
        x += linalg::row_dot(matrix_, k, p);
        return utilities_[k]->value(x);
      },
      [](double a, double b) { return a + b; },
      runtime::ChunkOptions{.grain = 64});
}

}  // namespace netmon::opt
