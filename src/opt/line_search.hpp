// One-dimensional maximization along a search direction (paper §IV-D).
//
// The solver moves from p along direction d until either the objective is
// maximized on the segment or an inactive constraint is hit. The paper
// uses Newton's method for the 1-D search (fast, needs C^2); a bisection
// fallback doubles as the safeguard and as the ablation variant.
#pragma once

#include <span>

#include "opt/objective.hpp"

namespace netmon::opt {

/// Line-search configuration.
struct LineSearchOptions {
  /// Use Newton steps (safeguarded by a shrinking bracket); when false,
  /// pure bisection on the directional derivative.
  bool newton = true;
  /// Maximum Newton/bisection iterations.
  int max_iters = 80;
  /// Stop when |phi'(t)| <= tol * |phi'(0)| or the bracket is tiny.
  double tol = 1e-12;
};

/// Outcome of a line search.
struct LineSearchResult {
  /// Chosen step in [0, t_max].
  double t = 0.0;
  /// Whether the step ran into t_max (a constraint blocks the ascent).
  bool hit_boundary = false;
  /// Iterations spent.
  int iters = 0;
};

/// Maximizes phi(t) = f(p + t d) over t in [0, t_max].
///
/// Preconditions: f concave along d, t_max > 0. When d is not an ascent
/// direction (phi'(0) <= 0, which happens at numerical convergence where
/// the projected gradient is cancellation noise), returns t = 0.
LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options = {});

/// Workspace variant: the trial point and gradient live in the cols_a /
/// cols_b slots of `ws`, and f is evaluated through its workspace
/// overloads — zero allocations once `ws` is warm. The same `ws` may be
/// (and in the solver is) the one threaded through the objective: the
/// objective only touches rows_* slots.
LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options,
                                linalg::EvalWorkspace& ws);

}  // namespace netmon::opt
