// One-dimensional maximization along a search direction (paper §IV-D).
//
// The solver moves from p along direction d until either the objective is
// maximized on the segment or an inactive constraint is hit. The paper
// uses Newton's method for the 1-D search (fast, needs C^2); a bisection
// fallback doubles as the safeguard and as the ablation variant.
//
// The search itself only ever sees the restriction phi(t) = f(p + t d)
// through the Phi interface: GenericPhi evaluates it via the objective's
// gradient (any Objective), while opt::SeparableRestriction (fused_eval.
// hpp) evaluates separable objectives in one pass over the active terms
// with no matrix traversal per probe. phi'(0) is threaded in by the
// caller — the solver already holds the gradient at p, so the search
// never re-evaluates the objective at t = 0.
#pragma once

#include <span>

#include "opt/objective.hpp"

namespace netmon::opt {

/// Line-search configuration.
struct LineSearchOptions {
  /// Use Newton steps (safeguarded by a shrinking bracket); when false,
  /// pure bisection on the directional derivative.
  bool newton = true;
  /// Maximum Newton/bisection iterations.
  int max_iters = 80;
  /// Stop when |phi'(t)| <= tol * |phi'(0)| or the bracket is tiny.
  double tol = 1e-12;
};

/// Outcome of a line search.
struct LineSearchResult {
  /// Chosen step in [0, t_max].
  double t = 0.0;
  /// Whether the step ran into t_max (a constraint blocks the ascent).
  bool hit_boundary = false;
  /// Iterations spent.
  int iters = 0;
};

/// A 1-D restriction phi(t) = f(p + t d), evaluated by its derivatives.
class Phi {
 public:
  struct Derivs {
    double first = 0.0;
    double second = 0.0;
  };

  virtual ~Phi() = default;

  /// phi'(t) and phi''(t) in one evaluation.
  virtual Derivs derivs(double t) = 0;

  /// phi''(0) alone — the Newton search's first step needs only the
  /// curvature at 0 (phi'(0) comes from the caller). Override when this
  /// is cheaper than a full derivs(0).
  virtual double second_at_zero() { return derivs(0.0).second; }
};

/// Generic restriction over any Objective: each probe forms the trial
/// point in ws.cols_a, evaluates the gradient into ws.cols_b and takes
/// the directional second derivative — exactly the historical line-
/// search evaluation, unchanged bit for bit.
class GenericPhi final : public Phi {
 public:
  GenericPhi(const Objective& f, std::span<const double> p,
             std::span<const double> d, linalg::EvalWorkspace& ws);

  Derivs derivs(double t) override;
  double second_at_zero() override;

 private:
  const Objective& f_;
  std::span<const double> p_, d_;
  linalg::EvalWorkspace& ws_;
};

/// Maximizes phi over t in [0, t_max]. `derivative_at_zero` is phi'(0),
/// which every caller already has (the solver as dot(g, d)); when it is
/// <= 0 the direction is not an ascent direction (at numerical
/// convergence the projected gradient is cancellation noise) and the
/// search returns t = 0 without evaluating phi at all.
LineSearchResult maximize_phi(Phi& phi, double t_max,
                              const LineSearchOptions& options,
                              double derivative_at_zero);

/// Maximizes phi(t) = f(p + t d) over t in [0, t_max].
///
/// Preconditions: f concave along d, t_max > 0. When d is not an ascent
/// direction (phi'(0) <= 0), returns t = 0. Computes phi'(0) itself via
/// one gradient evaluation; callers that already hold the gradient at p
/// should use maximize_phi directly and skip that evaluation.
LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options = {});

/// Workspace variant: the trial point and gradient live in the cols_a /
/// cols_b slots of `ws`, and f is evaluated through its workspace
/// overloads — zero allocations once `ws` is warm. The same `ws` may be
/// (and in the solver is) the one threaded through the objective: the
/// objective only touches rows_* slots.
LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options,
                                linalg::EvalWorkspace& ws);

}  // namespace netmon::opt
