#include "opt/gradient_projection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::opt {

namespace {

constexpr double kSnapLower = 1e-13;   // absolute snap-to-zero threshold
constexpr double kSnapUpperRel = 1e-13;  // relative snap-to-alpha threshold

double norm2(std::span<const double> v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) sum += a[j] * b[j];
  return sum;
}

// Projects `v` onto the subspace of the active constraints: zero on bound-
// active coordinates, orthogonal (in the free coordinates) to the budget
// normal u.
void project_direction(std::span<const double> v, std::span<const double> u,
                       const std::vector<BoundState>& bounds,
                       std::span<double> out) {
  double vu = 0.0, uu = 0.0;
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (bounds[j] == BoundState::kFree) {
      vu += v[j] * u[j];
      uu += u[j] * u[j];
    }
  }
  const double lambda = uu > 0.0 ? vu / uu : 0.0;
  for (std::size_t j = 0; j < v.size(); ++j) {
    out[j] = bounds[j] == BoundState::kFree ? v[j] - lambda * u[j] : 0.0;
  }
}

}  // namespace

SolveResult maximize(const Objective& f,
                     const BoxBudgetConstraints& constraints,
                     const SolverOptions& options,
                     const std::vector<double>* start,
                     SolverWorkspace* workspace) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(f.dimension() == n,
                 "objective/constraint dimension mismatch");
  const std::vector<double>& u = constraints.loads();
  const std::vector<double>& alpha = constraints.upper();

  SolveResult result;
  result.p = start ? *start : constraints.initial_point();
  NETMON_REQUIRE(result.p.size() == n, "start point dimension mismatch");
  NETMON_REQUIRE(constraints.feasible(result.p, 1e-7),
                 "start point is infeasible");

  std::vector<BoundState>& bounds = result.bounds;
  bounds.assign(n, BoundState::kFree);
  auto classify = [&](std::size_t j) {
    if (result.p[j] <= kSnapLower) {
      result.p[j] = 0.0;
      bounds[j] = BoundState::kAtLower;
    } else if (alpha[j] - result.p[j] <= kSnapUpperRel * alpha[j]) {
      result.p[j] = alpha[j];
      bounds[j] = BoundState::kAtUpper;
    } else {
      bounds[j] = BoundState::kFree;
    }
  };
  for (std::size_t j = 0; j < n; ++j) classify(j);

  // Redistributes budget drift (from snapping) over the free coordinates.
  auto correct_budget = [&] {
    const double drift = constraints.theta() - constraints.budget(result.p);
    if (std::abs(drift) <= 1e-12 * constraints.theta()) return;
    double uu = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] == BoundState::kFree) uu += u[j] * u[j];
    }
    if (uu <= 0.0) return;
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] != BoundState::kFree) continue;
      result.p[j] =
          std::clamp(result.p[j] + drift * u[j] / uu, 0.0, alpha[j]);
    }
  };

  SolverWorkspace local;
  SolverWorkspace& ws = workspace ? *workspace : local;
  ws.g.resize(n);
  ws.s.resize(n);
  ws.d.resize(n);
  ws.s_prev.resize(n);
  ws.d_prev.resize(n);
  ws.dir_tmp.resize(n);
  std::vector<double>& g = ws.g;
  std::vector<double>& s = ws.s;
  std::vector<double>& d = ws.d;
  std::vector<double>& s_prev = ws.s_prev;
  std::vector<double>& d_prev = ws.d_prev;
  bool have_prev = false;

  int iter = 0;
  while (iter < options.max_iterations) {
    if (options.should_stop && options.should_stop(iter)) {
      result.status = SolveStatus::kCancelled;
      break;
    }
    ++iter;
    f.gradient(result.p, g, ws.eval);
    project_direction(g, u, bounds, s);

    const double snorm = norm2(s);
    const double gnorm = norm2(g);
    if (snorm <= options.grad_tol * (1.0 + gnorm)) {
      compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
      result.lambda = ws.kkt.lambda;
      result.worst_multiplier = ws.kkt.worst;
      if (ws.kkt.satisfied) {
        result.status = SolveStatus::kOptimal;
        break;
      }
      // Release every active constraint whose multiplier is negative
      // (paper §IV-D) and keep searching.
      for (std::size_t j : ws.kkt.violating) bounds[j] = BoundState::kFree;
      ++result.release_events;
      have_prev = false;
      continue;
    }

    // Search direction: projected gradient, optionally conjugate-mixed.
    d = s;
    if (options.polak_ribiere && have_prev) {
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        num += s[j] * (s[j] - s_prev[j]);
        den += s_prev[j] * s_prev[j];
      }
      const double beta = den > 0.0 ? std::max(0.0, num / den) : 0.0;
      if (beta > 0.0) {
        for (std::size_t j = 0; j < n; ++j) d[j] = s[j] + beta * d_prev[j];
        // Keep d inside the active subspace and ascending.
        std::copy(d.begin(), d.end(), ws.dir_tmp.begin());
        project_direction(ws.dir_tmp, u, bounds, d);
        if (dot(d, g) <= 0.0) d = s;
      }
    }

    // Longest feasible step along d.
    double t_max = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] != BoundState::kFree) continue;
      if (d[j] > 0.0) {
        t_max = std::min(t_max, (alpha[j] - result.p[j]) / d[j]);
      } else if (d[j] < 0.0) {
        t_max = std::min(t_max, result.p[j] / -d[j]);
      }
    }
    if (!std::isfinite(t_max) || t_max <= 0.0) {
      // Numerically stuck against a bound: activate the offender(s).
      bool changed = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] != BoundState::kFree) continue;
        if ((d[j] < 0.0 && result.p[j] <= kSnapLower) ||
            (d[j] > 0.0 && alpha[j] - result.p[j] <= kSnapUpperRel * alpha[j])) {
          classify(j);
          changed = changed || bounds[j] != BoundState::kFree;
        }
      }
      have_prev = false;
      if (!changed) break;  // nothing to activate: give up this path
      continue;
    }

    const LineSearchResult ls =
        maximize_along(f, result.p, d, t_max, options.line_search, ws.eval);
    if (ls.t <= 0.0) {
      // No numerical progress possible along d: decide via the KKT
      // multipliers, exactly as when the projected gradient vanishes.
      compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
      result.lambda = ws.kkt.lambda;
      result.worst_multiplier = ws.kkt.worst;
      if (ws.kkt.satisfied) {
        result.status = SolveStatus::kOptimal;
        break;
      }
      for (std::size_t j : ws.kkt.violating) bounds[j] = BoundState::kFree;
      ++result.release_events;
      have_prev = false;
      continue;
    }
    for (std::size_t j = 0; j < n; ++j) {
      result.p[j] = std::clamp(result.p[j] + ls.t * d[j], 0.0, alpha[j]);
    }

    if (ls.hit_boundary) {
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] == BoundState::kFree) classify(j);
      }
      have_prev = false;  // active set changed: restart conjugacy
    } else {
      // Interior maximum along d; still snap coordinates that crept onto
      // a bound to keep t_max healthy next iteration.
      bool snapped = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] != BoundState::kFree) continue;
        classify(j);
        snapped = snapped || bounds[j] != BoundState::kFree;
      }
      if (snapped) {
        have_prev = false;
      } else {
        s_prev = s;
        d_prev = d;
        have_prev = true;
      }
    }
    correct_budget();
  }

  result.iterations = iter;
  result.value = f.value(result.p, ws.eval);
  if (result.status != SolveStatus::kOptimal) {
    // Record final multipliers for diagnostics.
    f.gradient(result.p, g, ws.eval);
    compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
    result.lambda = ws.kkt.lambda;
    result.worst_multiplier = ws.kkt.worst;
  }
  return result;
}

}  // namespace netmon::opt
