#include "opt/gradient_projection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::opt {

namespace {

constexpr double kSnapLower = 1e-13;   // absolute snap-to-zero threshold
constexpr double kSnapUpperRel = 1e-13;  // relative snap-to-alpha threshold
// Fused path: full inner-product recompute cadence. Delta updates keep
// rho = R p in sync to within a few ulps per update; a periodic refresh
// (and one after any mass-update iteration) bounds the accumulated drift
// independently of the iteration count.
constexpr int kInnerRefreshInterval = 64;

double norm2(std::span<const double> v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) sum += a[j] * b[j];
  return sum;
}

// Projects `v` onto the subspace of the active constraints: zero on bound-
// active coordinates, orthogonal (in the free coordinates) to the budget
// normal u. The reductions stay serial (summation order is part of the
// bit-identity contract); a non-null pool shards only the elementwise
// write pass, which is bit-identical under any sharding.
void project_direction(std::span<const double> v, std::span<const double> u,
                       const std::vector<BoundState>& bounds,
                       std::span<double> out,
                       runtime::ThreadPool* pool = nullptr) {
  double vu = 0.0, uu = 0.0;
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (bounds[j] == BoundState::kFree) {
      vu += v[j] * u[j];
      uu += u[j] * u[j];
    }
  }
  const double lambda = uu > 0.0 ? vu / uu : 0.0;
  auto write = [&](std::size_t j) {
    out[j] = bounds[j] == BoundState::kFree ? v[j] - lambda * u[j] : 0.0;
  };
  if (pool != nullptr) {
    runtime::parallel_for(*pool, v.size(), write);
  } else {
    for (std::size_t j = 0; j < v.size(); ++j) write(j);
  }
}

}  // namespace

SolveResult maximize(const Objective& f,
                     const BoxBudgetConstraints& constraints,
                     const SolverOptions& options,
                     const std::vector<double>* start,
                     SolverWorkspace* workspace) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(f.dimension() == n,
                 "objective/constraint dimension mismatch");
  const std::vector<double>& u = constraints.loads();
  const std::vector<double>& alpha = constraints.upper();

  // Fused fast path: separable objectives evaluate value, gradient and
  // per-term M'/M'' from one matrix traversal, keep rho = R p patched
  // incrementally, and run line-search probes with no traversal at all.
  const SeparableConcaveObjective* sep =
      options.use_fused ? f.separable() : nullptr;

  // Intra-solve parallelism, engaged only above the instance-size
  // threshold: `par` shards term-dimension work (fused kernels, spmv,
  // probes), `par_dim` shards variable-dimension writes (projection,
  // clamps) and needs its own floor because the variable count is often
  // far below the term count. Null = the historical serial path.
  runtime::ThreadPool* const par =
      options.pool != nullptr && sep != nullptr &&
              sep->term_count() >= options.parallel_min_terms
          ? options.pool
          : nullptr;
  runtime::ThreadPool* const par_dim =
      par != nullptr && n >= options.parallel_min_terms ? par : nullptr;

  SolveResult result;
  result.p = start ? *start : constraints.initial_point();
  NETMON_REQUIRE(result.p.size() == n, "start point dimension mismatch");
  NETMON_REQUIRE(constraints.feasible(result.p, 1e-7),
                 "start point is infeasible");

  std::vector<BoundState>& bounds = result.bounds;
  bounds.assign(n, BoundState::kFree);

  // Every mutation of p after the inner products exist goes through
  // set_p, which mirrors the change into x via one CSC-column walk —
  // the incremental active-set update that replaces the full R p.
  bool maintain_x = false;
  std::span<double> x;
  std::size_t deltas_this_iter = 0;
  auto set_p = [&](std::size_t j, double v) {
    if (maintain_x && v != result.p[j]) {
      sep->inner_axpy(j, v - result.p[j], x);
      ++deltas_this_iter;
    }
    result.p[j] = v;
  };
  auto classify = [&](std::size_t j) {
    if (result.p[j] <= kSnapLower) {
      set_p(j, 0.0);
      bounds[j] = BoundState::kAtLower;
    } else if (alpha[j] - result.p[j] <= kSnapUpperRel * alpha[j]) {
      set_p(j, alpha[j]);
      bounds[j] = BoundState::kAtUpper;
    } else {
      bounds[j] = BoundState::kFree;
    }
  };
  for (std::size_t j = 0; j < n; ++j) classify(j);

  // Redistributes budget drift (from snapping) over the free coordinates.
  auto correct_budget = [&] {
    const double drift = constraints.theta() - constraints.budget(result.p);
    if (std::abs(drift) <= 1e-12 * constraints.theta()) return;
    double uu = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] == BoundState::kFree) uu += u[j] * u[j];
    }
    if (uu <= 0.0) return;
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] != BoundState::kFree) continue;
      set_p(j, std::clamp(result.p[j] + drift * u[j] / uu, 0.0, alpha[j]));
    }
  };

  SolverWorkspace local;
  SolverWorkspace& ws = workspace ? *workspace : local;
  ws.g.resize(n);
  ws.s.resize(n);
  ws.d.resize(n);
  ws.s_prev.resize(n);
  ws.d_prev.resize(n);
  ws.dir_tmp.resize(n);
  std::vector<double>& g = ws.g;
  std::vector<double>& s = ws.s;
  std::vector<double>& d = ws.d;
  std::vector<double>& s_prev = ws.s_prev;
  std::vector<double>& d_prev = ws.d_prev;
  bool have_prev = false;

  // Full inner-product recompute, sharded when the pool is engaged.
  auto refresh_inner = [&] {
    if (par != nullptr) {
      sep->inner_into(result.p, x, *par);
    } else {
      sep->inner_into(result.p, x);
    }
  };

  if (sep != nullptr) {
    ws.x.resize(sep->term_count());
    x = {ws.x.data(), ws.x.size()};
    refresh_inner();
    maintain_x = true;
  }

  // Whether g (and, on the fused path, current_value and m2_terms) were
  // produced at the CURRENT p — false as soon as a step moves p, so the
  // exit path knows whether one final evaluation is needed.
  bool eval_current = false;
  double current_value = 0.0;
  std::span<const double> m2_terms;  // per-term M'' at p (fused path)
  int iters_since_refresh = 0;

  int iter = 0;

  // Opt-in iteration tracing. Everything below only READS solver state:
  // with trace unset the iterate sequence is bit-identical, and with it
  // set the only extra per-iteration work is two O(n) reductions plus
  // one lock-free ring append — no allocation either way.
  obs::SolverTrace* const trace = options.trace;
  const std::uint64_t solve_id = trace ? trace->begin_solve() : 0;
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  // `kkt_valid`: ws.kkt holds multipliers computed at this iterate.
  auto trace_iter = [&](double snorm, double step, bool kkt_valid) {
    if (trace == nullptr) return;
    obs::TraceRecord r;
    r.solve_id = solve_id;
    r.iteration = static_cast<std::uint32_t>(iter);
    r.fused = sep != nullptr;
    r.value = sep != nullptr ? current_value : kNan;
    // One fused pass, four max accumulators: a single max chain over
    // |g| is latency-bound and would dominate the per-iteration tax.
    double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
    std::uint32_t active = 0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      m0 = std::max(m0, std::abs(g[j]));
      m1 = std::max(m1, std::abs(g[j + 1]));
      m2 = std::max(m2, std::abs(g[j + 2]));
      m3 = std::max(m3, std::abs(g[j + 3]));
      active += (bounds[j] != BoundState::kFree) +
                (bounds[j + 1] != BoundState::kFree) +
                (bounds[j + 2] != BoundState::kFree) +
                (bounds[j + 3] != BoundState::kFree);
    }
    for (; j < n; ++j) {
      m0 = std::max(m0, std::abs(g[j]));
      active += bounds[j] != BoundState::kFree;
    }
    r.grad_inf = std::max(std::max(m0, m1), std::max(m2, m3));
    r.proj_grad_norm = snorm;
    r.step = step;
    r.active_set = active;
    r.restriction_terms =
        sep != nullptr && step > 0.0
            ? static_cast<std::uint32_t>(ws.restriction.active_terms())
            : 0;
    r.kkt_lambda = kkt_valid ? ws.kkt.lambda : kNan;
    r.kkt_residual = kkt_valid ? ws.kkt.worst : kNan;
    trace->record(r);
  };
  while (iter < options.max_iterations) {
    if (options.should_stop && options.should_stop(iter)) {
      result.status = SolveStatus::kCancelled;
      break;
    }
    ++iter;
    deltas_this_iter = 0;
    if (sep != nullptr) {
      const SeparableConcaveObjective::FusedEval fe =
          sep->fused_eval_from_inner(x, g, ws.eval, par);
      current_value = fe.value;
      m2_terms = fe.m2;
    } else {
      f.gradient(result.p, g, ws.eval);
    }
    eval_current = true;
    project_direction(g, u, bounds, s, par_dim);

    const double snorm = norm2(s);
    const double gnorm = norm2(g);
    if (snorm <= options.grad_tol * (1.0 + gnorm)) {
      compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
      result.lambda = ws.kkt.lambda;
      result.worst_multiplier = ws.kkt.worst;
      trace_iter(snorm, 0.0, /*kkt_valid=*/true);
      if (ws.kkt.satisfied) {
        result.status = SolveStatus::kOptimal;
        break;
      }
      // Release every active constraint whose multiplier is negative
      // (paper §IV-D) and keep searching.
      for (std::size_t j : ws.kkt.violating) bounds[j] = BoundState::kFree;
      ++result.release_events;
      have_prev = false;
      continue;
    }

    // Search direction: projected gradient, optionally conjugate-mixed.
    d = s;
    if (options.polak_ribiere && have_prev) {
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        num += s[j] * (s[j] - s_prev[j]);
        den += s_prev[j] * s_prev[j];
      }
      const double beta = den > 0.0 ? std::max(0.0, num / den) : 0.0;
      if (beta > 0.0) {
        for (std::size_t j = 0; j < n; ++j) d[j] = s[j] + beta * d_prev[j];
        // Keep d inside the active subspace and ascending.
        std::copy(d.begin(), d.end(), ws.dir_tmp.begin());
        project_direction(ws.dir_tmp, u, bounds, d, par_dim);
        if (dot(d, g) <= 0.0) d = s;
      }
    }

    // Longest feasible step along d.
    double t_max = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (bounds[j] != BoundState::kFree) continue;
      if (d[j] > 0.0) {
        t_max = std::min(t_max, (alpha[j] - result.p[j]) / d[j]);
      } else if (d[j] < 0.0) {
        t_max = std::min(t_max, result.p[j] / -d[j]);
      }
    }
    if (!std::isfinite(t_max) || t_max <= 0.0) {
      // Numerically stuck against a bound: activate the offender(s).
      bool changed = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] != BoundState::kFree) continue;
        if ((d[j] < 0.0 && result.p[j] <= kSnapLower) ||
            (d[j] > 0.0 && alpha[j] - result.p[j] <= kSnapUpperRel * alpha[j])) {
          classify(j);
          changed = changed || bounds[j] != BoundState::kFree;
        }
      }
      have_prev = false;
      trace_iter(snorm, 0.0, /*kkt_valid=*/false);
      if (!changed) break;  // nothing to activate: give up this path
      continue;
    }

    // 1-D search. phi'(0) = dot(g, d) is already in hand — the search
    // never re-evaluates the objective at t = 0.
    const double phi0 = dot(g, d);
    LineSearchResult ls;
    if (sep != nullptr) {
      // One traversal for rd = R d; every probe after that is a batched
      // pass over the terms the direction actually touches. phi''(0)
      // comes for free from this iteration's fused M''.
      ws.restriction.reset(*sep, x, d, m2_terms, par);
      ls = maximize_phi(ws.restriction, t_max, options.line_search, phi0);
    } else {
      GenericPhi phi(f, result.p, d, ws.eval);
      ls = maximize_phi(phi, t_max, options.line_search, phi0);
    }
    if (ls.t <= 0.0) {
      // No numerical progress possible along d: decide via the KKT
      // multipliers, exactly as when the projected gradient vanishes.
      compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
      result.lambda = ws.kkt.lambda;
      result.worst_multiplier = ws.kkt.worst;
      trace_iter(snorm, 0.0, /*kkt_valid=*/true);
      if (ws.kkt.satisfied) {
        result.status = SolveStatus::kOptimal;
        break;
      }
      for (std::size_t j : ws.kkt.violating) bounds[j] = BoundState::kFree;
      ++result.release_events;
      have_prev = false;
      continue;
    }
    if (sep != nullptr) {
      // Dense inner-product update x += t * rd (rd cached from the line
      // search), then per-column corrections for the clamped coordinates
      // only — no full R p recompute.
      const std::span<const double> rd = ws.restriction.rd();
      if (par != nullptr) {
        const double t = ls.t;
        runtime::parallel_for(*par, rd.size(),
                              [&x, rd, t](std::size_t k) { x[k] += t * rd[k]; });
      } else {
        for (std::size_t k = 0; k < rd.size(); ++k) x[k] += ls.t * rd[k];
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double moved = result.p[j] + ls.t * d[j];
        const double v = std::clamp(moved, 0.0, alpha[j]);
        if (v != moved) {
          sep->inner_axpy(j, v - moved, x);
          ++deltas_this_iter;
        }
        result.p[j] = v;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        result.p[j] = std::clamp(result.p[j] + ls.t * d[j], 0.0, alpha[j]);
      }
    }
    eval_current = false;

    if (ls.hit_boundary) {
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] == BoundState::kFree) classify(j);
      }
      have_prev = false;  // active set changed: restart conjugacy
    } else {
      // Interior maximum along d; still snap coordinates that crept onto
      // a bound to keep t_max healthy next iteration.
      bool snapped = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (bounds[j] != BoundState::kFree) continue;
        classify(j);
        snapped = snapped || bounds[j] != BoundState::kFree;
      }
      if (snapped) {
        have_prev = false;
      } else {
        s_prev = s;
        d_prev = d;
        have_prev = true;
      }
    }
    correct_budget();
    trace_iter(snorm, ls.t, /*kkt_valid=*/false);

    if (maintain_x && (++iters_since_refresh >= kInnerRefreshInterval ||
                       deltas_this_iter > n / 4)) {
      refresh_inner();
      iters_since_refresh = 0;
    }
  }

  result.iterations = iter;
  if (sep != nullptr) {
    if (!eval_current) {
      // One exact evaluation at the exit point: refresh rho and run the
      // fused kernel once (value + gradient in a single traversal).
      refresh_inner();
      const SeparableConcaveObjective::FusedEval fe =
          sep->fused_eval_from_inner(x, g, ws.eval, par);
      current_value = fe.value;
    }
    result.value = current_value;
  } else {
    result.value = f.value(result.p, ws.eval);
    if (result.status != SolveStatus::kOptimal && !eval_current) {
      f.gradient(result.p, g, ws.eval);
    }
  }
  if (result.status != SolveStatus::kOptimal) {
    // Final multipliers for diagnostics, from the gradient already in
    // ws.g — recomputed above only when p moved after the last fused
    // evaluation, never twice.
    compute_kkt(g, u, bounds, options.kkt_tol, ws.kkt);
    result.lambda = ws.kkt.lambda;
    result.worst_multiplier = ws.kkt.worst;
  }

  options.counters.iterations.inc(static_cast<std::uint64_t>(iter));
  options.counters.release_events.inc(
      static_cast<std::uint64_t>(result.release_events));
  options.counters.solves.inc();
  if (result.status == SolveStatus::kCancelled) options.counters.cancelled.inc();

  if (trace != nullptr) {
    // Summary record: KKT fields equal the SolveResult report exactly.
    obs::TraceRecord r;
    r.solve_id = solve_id;
    r.iteration = static_cast<std::uint32_t>(result.iterations);
    r.final_record = true;
    r.fused = sep != nullptr;
    r.status = static_cast<std::uint8_t>(result.status);
    r.value = result.value;
    double ginf = 0.0;
    for (double v : g) ginf = std::max(ginf, std::abs(v));
    r.grad_inf = ginf;
    r.proj_grad_norm = kNan;
    r.step = kNan;
    std::uint32_t active = 0;
    for (BoundState b : bounds) active += b != BoundState::kFree;
    r.active_set = active;
    r.kkt_lambda = result.lambda;
    r.kkt_residual = result.worst_multiplier;
    trace->record(r);
  }
  return result;
}

}  // namespace netmon::opt
