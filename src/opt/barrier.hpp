// Interior-point (log-barrier) solver for the placement problem.
//
// An independent algorithm for the same concave program the gradient
// projection method solves: minimize -f(p) plus a logarithmic barrier for
// the box constraints, subject to the budget equality, with Newton steps
// on the equality-constrained centering problem and a geometric barrier
// schedule. Used to cross-validate the paper's solver (three algorithms —
// gradient projection, projected ascent, barrier — must agree on the
// optimum) and as an ablation data point: the active-set method exploits
// the problem's structure and needs no second-order information beyond
// the 1-D search, while the barrier method pays dense Newton solves.
#pragma once

#include "opt/constraints.hpp"
#include "opt/objective.hpp"

namespace netmon::opt {

/// Barrier-method knobs.
struct BarrierOptions {
  /// Initial value of the scaling parameter t (objective weight against
  /// the barrier); the duality-gap bound is (2n)/t.
  double t0 = 1.0;
  /// Geometric growth factor of t per outer iteration.
  double t_growth = 10.0;
  /// Stop when (2n)/t falls below this gap.
  double gap = 1e-9;
  /// Newton iterations per centering step.
  int max_newton = 50;
  /// Newton decrement threshold for centering convergence.
  double newton_tol = 1e-10;
};

/// Barrier-method outcome.
struct BarrierResult {
  std::vector<double> p;
  double value = 0.0;       // f(p)
  int outer_iterations = 0; // centering steps
  int newton_iterations = 0;
  /// Final duality-gap bound (2n)/t.
  double gap_bound = 0.0;
};

/// Maximizes a SeparableConcaveObjective over BoxBudgetConstraints by the
/// barrier method. Requires theta strictly below sum(u*alpha) (a strictly
/// interior point must exist).
BarrierResult maximize_barrier(const SeparableConcaveObjective& f,
                               const BoxBudgetConstraints& constraints,
                               const BarrierOptions& options = {});

}  // namespace netmon::opt
