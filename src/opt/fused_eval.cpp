#include "opt/fused_eval.hpp"

#include <algorithm>

#include "core/utility_kernels.hpp"
#include "linalg/parallel_kernels.hpp"
#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::opt {

namespace {
/// Probes with fewer active slots than this stay serial even when a pool
/// is attached — at that size the fork/join overhead beats the work.
constexpr std::size_t kParallelMinSlots = 2048;

/// Probe-point fill xt[i] = fma(t, rd[i], x0[i]) at the requested
/// dispatch level. All variants are element-for-element bit-identical
/// (std::fma and vfmadd are both correctly rounded), so the level only
/// changes throughput.
using FillFn = void (*)(double*, const double*, const double*, double,
                        std::size_t);
FillFn select_fill(SimdLevel level) {
#ifdef NETMON_HAVE_AVX512
  if (level >= SimdLevel::kAvx512) return core::kernels::fill_affine_avx512;
#endif
#ifdef NETMON_HAVE_AVX2
  if (level >= SimdLevel::kAvx2) return core::kernels::fill_affine_avx2;
#endif
  (void)level;
  return core::kernels::fill_affine_scalar;
}
}  // namespace

void SeparableRestriction::reset(const SeparableConcaveObjective& f,
                                 std::span<const double> x0,
                                 std::span<const double> d,
                                 std::span<const double> m2_at_x0,
                                 runtime::ThreadPool* pool) {
  const std::size_t n = f.term_count();
  NETMON_REQUIRE(x0.size() == n, "restriction inner-product size mismatch");
  NETMON_REQUIRE(d.size() == f.dimension(),
                 "restriction direction size mismatch");
  f_ = &f;
  pool_ = pool;

  rd_.resize(n);
  if (pool != nullptr) {
    linalg::spmv_parallel(f.matrix_, d, {rd_.data(), n}, *pool);
  } else {
    linalg::spmv(f.matrix_, d, {rd_.data(), n});  // offsets drop in d/dt
  }

  // Gather the active terms (rd_k != 0), partitioned for the vector
  // kernels: by batch kernel first (first-appearance order; nullptr =
  // per-term virtual dispatch is its own group), then — for piecewise
  // families — by the pivot regime the term starts in at x0. Lane-
  // uniform blocks let the kernels' uniform-regime fast paths (skip the
  // division leg / the quadratic leg) hit on nearly every vector;
  // mid-search regime migration is handled by their per-vector re-check,
  // so the partition never affects results. The family pass count is
  // tiny (a handful of kernels x two phases) and all buffers are
  // grow-only, so repeated resets allocate nothing at steady state.
  x0c_.clear();
  rdc_.clear();
  idx_.clear();
  runs_.clear();
  groups_.clear();
  for (const auto& run : f.runs_) {
    if (std::find(groups_.begin(), groups_.end(), run.kernel) ==
        groups_.end()) {
      groups_.push_back(run.kernel);
    }
  }
  for (const Concave1d::BatchKernel* kernel : groups_) {
    const std::size_t pivot = kernel != nullptr
                                  ? kernel->pivot_param
                                  : Concave1d::BatchKernel::kNoPivot;
    const int phases = pivot == Concave1d::BatchKernel::kNoPivot ? 1 : 2;
    for (int phase = 0; phase < phases; ++phase) {
      for (const auto& run : f.runs_) {
        if (run.kernel != kernel) continue;
        for (std::size_t k = run.begin; k < run.end; ++k) {
          if (rd_[k] == 0.0) continue;
          if (phases == 2) {
            // Phase 0 collects the below-pivot regime, phase 1 the rest;
            // same quiet compare the kernels use.
            const bool below = x0[k] < f.soa_[pivot * n + k];
            if (below != (phase == 0)) continue;
          }
          const std::size_t slot = x0c_.size();
          if (!runs_.empty() && runs_.back().kernel == kernel &&
              runs_.back().end == slot) {
            runs_.back().end = slot + 1;
          } else {
            runs_.push_back({kernel, slot, slot + 1});
          }
          x0c_.push_back(x0[k]);
          rdc_.push_back(rd_[k]);
          idx_.push_back(k);
        }
      }
    }
  }

  // Compact SoA coefficient table: parameter j of slot i at soa_[j*m+i],
  // gathered from the objective's full-width table.
  const std::size_t m = x0c_.size();
  soa_.resize(Concave1d::kBatchParamCount * m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t k = idx_[i];
    for (std::size_t j = 0; j < Concave1d::kBatchParamCount; ++j)
      soa_[j * m + i] = f.soa_[j * n + k];
  }
  xt_.resize(m);
  m1_.resize(m);
  m2_.resize(m);

  // phi''(0) from the caller's per-term M'' at x0, when provided: the
  // inactive terms contribute exactly zero (rd_k == 0), so the compact
  // sum is the full sum.
  have_second0_ = !m2_at_x0.empty();
  if (have_second0_) {
    NETMON_REQUIRE(m2_at_x0.size() == n, "restriction m2 size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double r = rdc_[i];
      sum += m2_at_x0[idx_[i]] * r * r;
    }
    second0_ = sum;
  }
}

void SeparableRestriction::eval_range(std::size_t begin, std::size_t end,
                                      double t, SimdLevel level,
                                      bool fastmath) {
  const std::size_t m = x0c_.size();
  double* __restrict xt = xt_.data();
  select_fill(level)(xt + begin, x0c_.data() + begin, rdc_.data() + begin, t,
                     end - begin);

  auto it = std::partition_point(
      runs_.begin(), runs_.end(),
      [begin](const CompactRun& run) { return run.end <= begin; });
  for (; it != runs_.end() && it->begin < end; ++it) {
    const std::size_t lo = std::max(it->begin, begin);
    const std::size_t hi = std::min(it->end, end);
    if (it->kernel != nullptr && it->kernel->deriv2 != nullptr) {
      const Concave1d::BatchKernel::Deriv2Fn fn =
          it->kernel->select_deriv2(level, fastmath);
      fn(soa_.data() + lo, m, xt + lo, m1_.data() + lo, m2_.data() + lo,
         hi - lo);
      continue;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const Concave1d& u = *f_->utilities_[idx_[i]];
      m1_[i] = u.deriv(xt[i]);
      m2_[i] = u.second(xt[i]);
    }
  }
}

Phi::Derivs SeparableRestriction::derivs(double t) {
  NETMON_REQUIRE(f_ != nullptr, "restriction not reset");
  const std::size_t m = x0c_.size();
  const SimdLevel level = simd_dispatch_level();
  const bool fastmath = simd_fastmath_enabled();
  if (pool_ != nullptr && m >= kParallelMinSlots) {
    // Elementwise probe work sharded; the sums below stay serial, so the
    // Derivs are bit-identical to the serial path.
    const auto chunks = runtime::make_chunks_for_width(
        m, runtime::ChunkOptions{.grain = 512}, pool_->size());
    runtime::TaskGroup group(*pool_);
    for (const auto& [b, e] : chunks) {
      group.run([this, b = b, e = e, t, level, fastmath] {
        eval_range(b, e, t, level, fastmath);
      });
    }
    group.wait();
  } else {
    eval_range(0, m, t, level, fastmath);
  }

  Derivs out;
  const double* __restrict rdc = rdc_.data();
  const double* __restrict m1 = m1_.data();
  const double* __restrict m2 = m2_.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double r = rdc[i];
    out.first += m1[i] * r;
    out.second += m2[i] * r * r;
  }
  return out;
}

double SeparableRestriction::second_at_zero() {
  if (have_second0_) return second0_;
  return derivs(0.0).second;
}

}  // namespace netmon::opt
