#include "opt/fused_eval.hpp"

#include "util/error.hpp"

namespace netmon::opt {

void SeparableRestriction::reset(const SeparableConcaveObjective& f,
                                 std::span<const double> x0,
                                 std::span<const double> d,
                                 std::span<const double> m2_at_x0) {
  const std::size_t n = f.term_count();
  NETMON_REQUIRE(x0.size() == n, "restriction inner-product size mismatch");
  NETMON_REQUIRE(d.size() == f.dimension(),
                 "restriction direction size mismatch");
  f_ = &f;

  rd_.resize(n);
  linalg::spmv(f.matrix_, d, {rd_.data(), n});  // offsets drop in d/dt

  // Gather the active terms (rd_k != 0) in order, preserving the batch-
  // run structure. All buffers are grow-only.
  x0c_.clear();
  rdc_.clear();
  idx_.clear();
  runs_.clear();
  for (const auto& run : f.runs_) {
    for (std::size_t k = run.begin; k < run.end; ++k) {
      if (rd_[k] == 0.0) continue;
      const std::size_t slot = x0c_.size();
      if (!runs_.empty() && runs_.back().kernel == run.kernel &&
          runs_.back().end == slot) {
        runs_.back().end = slot + 1;
      } else {
        runs_.push_back({run.kernel, slot, slot + 1});
      }
      x0c_.push_back(x0[k]);
      rdc_.push_back(rd_[k]);
      idx_.push_back(k);
    }
  }

  // Compact SoA coefficient table: parameter j of slot i at soa_[j*m+i],
  // gathered from the objective's full-width table.
  const std::size_t m = x0c_.size();
  soa_.resize(Concave1d::kBatchParamCount * m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t k = idx_[i];
    for (std::size_t j = 0; j < Concave1d::kBatchParamCount; ++j)
      soa_[j * m + i] = f.soa_[j * n + k];
  }
  xt_.resize(m);
  m1_.resize(m);
  m2_.resize(m);

  // phi''(0) from the caller's per-term M'' at x0, when provided: the
  // inactive terms contribute exactly zero (rd_k == 0), so the compact
  // sum is the full sum.
  have_second0_ = !m2_at_x0.empty();
  if (have_second0_) {
    NETMON_REQUIRE(m2_at_x0.size() == n, "restriction m2 size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double r = rdc_[i];
      sum += m2_at_x0[idx_[i]] * r * r;
    }
    second0_ = sum;
  }
}

Phi::Derivs SeparableRestriction::derivs(double t) {
  NETMON_REQUIRE(f_ != nullptr, "restriction not reset");
  const std::size_t m = x0c_.size();
  double* __restrict xt = xt_.data();
  const double* __restrict x0c = x0c_.data();
  const double* __restrict rdc = rdc_.data();
  for (std::size_t i = 0; i < m; ++i) xt[i] = x0c[i] + t * rdc[i];

  const bool simd = simd_dispatch_enabled();
  for (const CompactRun& run : runs_) {
    const std::size_t len = run.end - run.begin;
    if (run.kernel != nullptr && run.kernel->deriv2 != nullptr) {
      const Concave1d::BatchKernel::Deriv2Fn fn =
          simd && run.kernel->deriv2_simd != nullptr
              ? run.kernel->deriv2_simd
              : run.kernel->deriv2;
      fn(soa_.data() + run.begin, m, xt + run.begin, m1_.data() + run.begin,
         m2_.data() + run.begin, len);
      continue;
    }
    for (std::size_t i = run.begin; i < run.end; ++i) {
      const Concave1d& u = *f_->utilities_[idx_[i]];
      m1_[i] = u.deriv(xt[i]);
      m2_[i] = u.second(xt[i]);
    }
  }

  Derivs out;
  const double* __restrict m1 = m1_.data();
  const double* __restrict m2 = m2_.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double r = rdc[i];
    out.first += m1[i] * r;
    out.second += m2[i] * r * r;
  }
  return out;
}

double SeparableRestriction::second_at_zero() {
  if (have_second0_) return second0_;
  return derivs(0.0).second;
}

}  // namespace netmon::opt
