#include "opt/fused_eval.hpp"

#include <algorithm>

#include "linalg/parallel_kernels.hpp"
#include "runtime/parallel.hpp"
#include "util/error.hpp"

namespace netmon::opt {

namespace {
/// Probes with fewer active slots than this stay serial even when a pool
/// is attached — at that size the fork/join overhead beats the work.
constexpr std::size_t kParallelMinSlots = 2048;
}  // namespace

void SeparableRestriction::reset(const SeparableConcaveObjective& f,
                                 std::span<const double> x0,
                                 std::span<const double> d,
                                 std::span<const double> m2_at_x0,
                                 runtime::ThreadPool* pool) {
  const std::size_t n = f.term_count();
  NETMON_REQUIRE(x0.size() == n, "restriction inner-product size mismatch");
  NETMON_REQUIRE(d.size() == f.dimension(),
                 "restriction direction size mismatch");
  f_ = &f;
  pool_ = pool;

  rd_.resize(n);
  if (pool != nullptr) {
    linalg::spmv_parallel(f.matrix_, d, {rd_.data(), n}, *pool);
  } else {
    linalg::spmv(f.matrix_, d, {rd_.data(), n});  // offsets drop in d/dt
  }

  // Gather the active terms (rd_k != 0) in order, preserving the batch-
  // run structure. All buffers are grow-only.
  x0c_.clear();
  rdc_.clear();
  idx_.clear();
  runs_.clear();
  for (const auto& run : f.runs_) {
    for (std::size_t k = run.begin; k < run.end; ++k) {
      if (rd_[k] == 0.0) continue;
      const std::size_t slot = x0c_.size();
      if (!runs_.empty() && runs_.back().kernel == run.kernel &&
          runs_.back().end == slot) {
        runs_.back().end = slot + 1;
      } else {
        runs_.push_back({run.kernel, slot, slot + 1});
      }
      x0c_.push_back(x0[k]);
      rdc_.push_back(rd_[k]);
      idx_.push_back(k);
    }
  }

  // Compact SoA coefficient table: parameter j of slot i at soa_[j*m+i],
  // gathered from the objective's full-width table.
  const std::size_t m = x0c_.size();
  soa_.resize(Concave1d::kBatchParamCount * m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t k = idx_[i];
    for (std::size_t j = 0; j < Concave1d::kBatchParamCount; ++j)
      soa_[j * m + i] = f.soa_[j * n + k];
  }
  xt_.resize(m);
  m1_.resize(m);
  m2_.resize(m);

  // phi''(0) from the caller's per-term M'' at x0, when provided: the
  // inactive terms contribute exactly zero (rd_k == 0), so the compact
  // sum is the full sum.
  have_second0_ = !m2_at_x0.empty();
  if (have_second0_) {
    NETMON_REQUIRE(m2_at_x0.size() == n, "restriction m2 size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double r = rdc_[i];
      sum += m2_at_x0[idx_[i]] * r * r;
    }
    second0_ = sum;
  }
}

void SeparableRestriction::eval_range(std::size_t begin, std::size_t end,
                                      double t, bool simd) {
  const std::size_t m = x0c_.size();
  double* __restrict xt = xt_.data();
  const double* __restrict x0c = x0c_.data();
  const double* __restrict rdc = rdc_.data();
  for (std::size_t i = begin; i < end; ++i) xt[i] = x0c[i] + t * rdc[i];

  auto it = std::partition_point(
      runs_.begin(), runs_.end(),
      [begin](const CompactRun& run) { return run.end <= begin; });
  for (; it != runs_.end() && it->begin < end; ++it) {
    const std::size_t lo = std::max(it->begin, begin);
    const std::size_t hi = std::min(it->end, end);
    if (it->kernel != nullptr && it->kernel->deriv2 != nullptr) {
      const Concave1d::BatchKernel::Deriv2Fn fn =
          simd && it->kernel->deriv2_simd != nullptr ? it->kernel->deriv2_simd
                                                     : it->kernel->deriv2;
      fn(soa_.data() + lo, m, xt + lo, m1_.data() + lo, m2_.data() + lo,
         hi - lo);
      continue;
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const Concave1d& u = *f_->utilities_[idx_[i]];
      m1_[i] = u.deriv(xt[i]);
      m2_[i] = u.second(xt[i]);
    }
  }
}

Phi::Derivs SeparableRestriction::derivs(double t) {
  NETMON_REQUIRE(f_ != nullptr, "restriction not reset");
  const std::size_t m = x0c_.size();
  const bool simd = simd_dispatch_enabled();
  if (pool_ != nullptr && m >= kParallelMinSlots) {
    // Elementwise probe work sharded; the sums below stay serial, so the
    // Derivs are bit-identical to the serial path.
    const auto chunks = runtime::make_chunks_for_width(
        m, runtime::ChunkOptions{.grain = 512}, pool_->size());
    runtime::TaskGroup group(*pool_);
    for (const auto& [b, e] : chunks) {
      group.run([this, b = b, e = e, t, simd] { eval_range(b, e, t, simd); });
    }
    group.wait();
  } else {
    eval_range(0, m, t, simd);
  }

  Derivs out;
  const double* __restrict rdc = rdc_.data();
  const double* __restrict m1 = m1_.data();
  const double* __restrict m2 = m2_.data();
  for (std::size_t i = 0; i < m; ++i) {
    const double r = rdc[i];
    out.first += m1[i] * r;
    out.second += m2[i] * r * r;
  }
  return out;
}

double SeparableRestriction::second_at_zero() {
  if (have_second0_) return second0_;
  return derivs(0.0).second;
}

}  // namespace netmon::opt
