// Gradient projection solver for concave maximization over box bounds
// plus one budget equality — the paper's algorithm (§IV-D).
//
// At every iteration the gradient is projected onto the subspace spanned
// by the currently active constraints; the point moves along the
// (optionally Polak-Ribiere-mixed) projected direction until the
// objective is maximized on the segment (safeguarded Newton 1-D search)
// or an inactive constraint is hit, which is then activated. When the
// projected gradient vanishes, the KKT multipliers decide: all
// non-negative => certified global optimum (the objective is concave and
// the feasible set convex); otherwise the active constraints with
// negative multipliers are released and the search continues.
#pragma once

#include <functional>
#include <vector>

#include "obs/trace.hpp"
#include "opt/constraints.hpp"
#include "opt/fused_eval.hpp"
#include "opt/kkt.hpp"
#include "opt/line_search.hpp"
#include "opt/objective.hpp"

namespace netmon::opt {

/// Solver knobs. Defaults follow the paper (iteration cap 2000).
struct SolverOptions {
  /// Hard cap on iterations; the paper observes 98.6% of instances
  /// converge below 2000.
  int max_iterations = 2000;
  /// Projected-gradient norm tolerance (relative to the gradient norm).
  /// The achievable floor is set by cancellation in g - lambda*u; 1e-9
  /// relative is conservative for double precision.
  double grad_tol = 1e-9;
  /// Multiplier negativity tolerance for the KKT certificate.
  double kkt_tol = 1e-8;
  /// Mix the previous direction per Polak-Ribiere (paper §IV-D: avoids
  /// the zigzag path of pure projected gradients). Off = plain projection
  /// (ablation).
  bool polak_ribiere = true;
  /// 1-D search configuration (Newton by default; bisection ablation).
  LineSearchOptions line_search;
  /// Use the fused evaluation path when the objective is separable:
  /// value + gradient + per-term derivatives from one matrix traversal,
  /// inner products rho = R p maintained incrementally across steps, and
  /// line-search probes that never touch the matrix. Off = the generic
  /// per-virtual path, byte-for-byte the historical iteration (ablation
  /// and bit-identity reference).
  bool use_fused = true;
  /// Cooperative cancellation hook, polled between iterations with the
  /// number of completed iterations. Returning true stops the solve with
  /// SolveStatus::kCancelled and the best-so-far (feasible) point. The
  /// serving layer uses this for per-request deadlines and iteration
  /// budgets; when unset the iteration path is byte-for-byte unchanged.
  std::function<bool(int iterations)> should_stop;
  /// Optional iteration trace sink (obs/trace.hpp). When set, the solver
  /// appends one record per iteration plus a final summary record whose
  /// KKT fields equal the SolveResult report. Recording is lock-free and
  /// allocation-free, so the hot loop stays zero-allocation; when null
  /// the iterate sequence is bit-identical to the untraced solve (the
  /// trace only reads solver state, never steers it).
  obs::SolverTrace* trace = nullptr;
  /// Metric counter handles bumped once per solve (iterations, release
  /// events, completions, cancellations). Default handles are detached
  /// no-ops costing one branch each at solve exit.
  obs::SolverCounters counters;
  /// Intra-solve parallelism: when set and the objective is separable
  /// with at least `parallel_min_terms` terms, the per-iteration
  /// evaluation work — inner-product spmv, fused term kernels, gradient
  /// scatter, line-search probes, projection/update writes — is sharded
  /// across this pool with deterministic chunking. Order-sensitive
  /// reductions stay serial, so the iterate sequence (and hence the
  /// SolveResult) is bit-identical to the serial solve at every thread
  /// count; the knob changes throughput only. Borrowed; must outlive the
  /// solve. Safe to use from tasks already running on the same pool
  /// (TaskGroup waits help instead of blocking).
  runtime::ThreadPool* pool = nullptr;
  /// Term-count threshold below which `pool` is ignored: paper-scale
  /// instances (GEANT: dozens of terms) keep the historical
  /// single-threaded fast path with zero added overhead.
  std::size_t parallel_min_terms = 8192;
};

/// Why the solver stopped.
enum class SolveStatus {
  /// KKT certificate holds: global optimum.
  kOptimal,
  /// Iteration cap reached before certification.
  kIterationLimit,
  /// SolverOptions::should_stop asked for an early exit (deadline or
  /// iteration budget). The returned point is feasible but uncertified.
  kCancelled,
};

/// Solver outcome and diagnostics.
struct SolveResult {
  std::vector<double> p;
  double value = 0.0;
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Iterations executed (one per search direction, as in the paper).
  int iterations = 0;
  /// Number of times active constraints with negative multipliers had to
  /// be released (paper §IV-D reports 1.64 +- 1.17 on their data).
  int release_events = 0;
  /// Budget multiplier lambda at termination.
  double lambda = 0.0;
  /// Most negative bound multiplier at termination (>= -tol if optimal).
  double worst_multiplier = 0.0;
  /// Final active-set classification of every coordinate.
  std::vector<BoundState> bounds;
};

/// All iteration scratch of one maximize() call: the objective-evaluation
/// workspace plus the solver's own per-iteration vectors and the KKT
/// report. Pass the same instance to repeated solves (warm starts, batch
/// fan-out) and the iteration loop performs no heap allocations after the
/// first call has grown the buffers. Not shareable between threads.
struct SolverWorkspace {
  linalg::EvalWorkspace eval;
  std::vector<double> g;        // gradient
  std::vector<double> s;        // projected gradient
  std::vector<double> d;        // search direction
  std::vector<double> s_prev;   // previous projected gradient (PR mixing)
  std::vector<double> d_prev;   // previous direction (PR mixing)
  std::vector<double> dir_tmp;  // re-projection scratch for mixed d
  std::vector<double> x;        // maintained inner products (fused path)
  SeparableRestriction restriction;  // line-search probes (fused path)
  KktReport kkt;
};

/// Maximizes `f` over `constraints`. `start` overrides the default
/// feasible starting point (must itself be feasible). `workspace`, when
/// given, supplies all iteration scratch (reused across calls); when
/// null a call-local workspace is used.
SolveResult maximize(const Objective& f,
                     const BoxBudgetConstraints& constraints,
                     const SolverOptions& options = {},
                     const std::vector<double>* start = nullptr,
                     SolverWorkspace* workspace = nullptr);

}  // namespace netmon::opt
