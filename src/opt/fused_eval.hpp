// Line-search restriction over a separable objective, evaluated with no
// matrix traversal per probe.
//
// A 1-D search from p along d probes phi(t) = f(p + t d). For the
// separable objective f(p) = sum_k M_k(a_k + (Rp)_k) the restriction is
//   phi'(t)  = sum_k M'_k (x0_k + t rd_k) rd_k,
//   phi''(t) = sum_k M''_k(x0_k + t rd_k) rd_k^2,
// with x0 = a + Rp and rd = R d. Both R-products are computed ONCE in
// reset(); every probe after that is a single batched pass over the
// terms with rd_k != 0. Terms with rd_k == 0 sit at the same inner
// product for the whole search — their utility evaluations are dropped
// at reset (the sums are unchanged because their contribution is exactly
// zero), which is the probe-to-probe evaluation cache: on a typical
// iteration the search direction touches a fraction of the OD pairs, and
// only those terms are ever re-evaluated.
//
// The active terms are gathered into compact arrays (inner products,
// rd, structure-of-arrays coefficients), so the probe kernels are the
// same branch-free batched loops the fused evaluation uses — including
// the leveled SIMD dispatch. The gather PARTITIONS the compact slots by
// utility family (batch-kernel pointer, first-appearance order) and, for
// piecewise families, by the pivot regime the term starts in at x0 —
// vector kernels then see lane-uniform blocks and their uniform-regime
// fast paths (skip the division leg, or the quadratic leg) hit on nearly
// every vector. Probes can migrate terms across the pivot as t moves, so
// the partition is a strong hint, not an invariant; the kernels re-check
// per vector and blend on mixed vectors, which keeps them bit-exact.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "opt/line_search.hpp"
#include "opt/objective.hpp"
#include "util/page_alloc.hpp"

namespace netmon::opt {

class SeparableRestriction final : public Phi {
 public:
  SeparableRestriction() = default;

  /// Prepares a search from inner products `x0` (= a + Rp, term_count-
  /// sized) along direction `d` (dimension-sized): computes rd = R d —
  /// the only matrix traversal of the whole line search — and gathers
  /// the terms with rd_k != 0. When `m2_at_x0` (per-term M'' at x0, e.g.
  /// from the solver's fused evaluation at p) is non-empty, phi''(0) is
  /// precomputed from it so the Newton first step costs no extra kernel
  /// pass. All buffers are grow-only: repeated resets on problems of the
  /// same size allocate nothing.
  ///
  /// A non-null `pool` shards the rd spmv and each probe's elementwise
  /// work (xt fill + kernel sub-ranges) across it; the probe sums stay
  /// serial, so every Derivs is bit-identical to the serial path. The
  /// pool is borrowed until the next reset.
  void reset(const SeparableConcaveObjective& f, std::span<const double> x0,
             std::span<const double> d,
             std::span<const double> m2_at_x0 = {},
             runtime::ThreadPool* pool = nullptr);

  /// One batched pass over the active terms; no matrix traversal.
  Derivs derivs(double t) override;

  double second_at_zero() override;

  /// rd = R d, dense over all terms — the solver reuses it for the
  /// incremental inner-product update x += t * rd after the step.
  std::span<const double> rd() const { return {rd_.data(), rd_.size()}; }

  /// Number of terms participating in the probes (rd_k != 0).
  std::size_t active_terms() const { return x0c_.size(); }

 private:
  /// A maximal group of consecutive compact slots sharing a batch kernel
  /// (nullptr = per-term virtual dispatch via idx_).
  struct CompactRun {
    const Concave1d::BatchKernel* kernel = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Fills xt_/m1_/m2_ for compact slots [begin, end) at probe point t.
  /// The dispatch level and fast-math flag are hoisted by the caller so
  /// every shard of one probe dispatches identically.
  void eval_range(std::size_t begin, std::size_t end, double t,
                  SimdLevel level, bool fastmath);

  const SeparableConcaveObjective* f_ = nullptr;
  runtime::ThreadPool* pool_ = nullptr;  // borrowed; null = serial probes
  // The probe arrays are page-backed: every probe streams all of them,
  // and dedicated mappings keep large searches fast (util/page_alloc.hpp).
  util::PageVector<double> rd_;   // dense R d (term_count)
  util::PageVector<double> x0c_;  // compact x0 over active terms
  util::PageVector<double> rdc_;  // compact rd over active terms
  util::PageVector<double> soa_;  // compact SoA coeffs (stride = active)
  util::PageVector<double> xt_;   // probe inner products x0c + t rdc
  util::PageVector<double> m1_;   // probe M'
  util::PageVector<double> m2_;   // probe M''
  std::vector<std::size_t> idx_;  // original term per compact slot
  std::vector<CompactRun> runs_;
  // Distinct batch kernels in first-appearance order — the gather's
  // family partition; grow-only scratch reused across resets.
  std::vector<const Concave1d::BatchKernel*> groups_;
  double second0_ = 0.0;
  bool have_second0_ = false;
};

}  // namespace netmon::opt
