// Karush-Kuhn-Tucker multiplier computation and certification (paper
// §IV-A / §IV-D).
//
// For the problem  max f(p)  s.t.  sum u_j p_j = theta, 0 <= p_j <= alpha_j
// the first-order conditions at p with gradient g are:
//   free j               : g_j = lambda u_j
//   active lower (p_j=0) : nu_j = lambda u_j - g_j >= 0
//   active upper (p_j=a) : mu_j = g_j - lambda u_j >= 0
// Because the feasible set is convex and f concave, these conditions are
// sufficient for global optimality. A negative multiplier identifies an
// active constraint the solver must release (make inactive) to continue.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace netmon::opt {

/// Which bound (if any) each coordinate sits on.
enum class BoundState : std::uint8_t { kFree, kAtLower, kAtUpper };

/// The multipliers and their verdict at a candidate point.
struct KktReport {
  /// Multiplier of the budget equality.
  double lambda = 0.0;
  /// Per-coordinate bound multipliers; 0 for free coordinates.
  std::vector<double> nu;  // lower bounds
  std::vector<double> mu;  // upper bounds
  /// Most negative multiplier found (0 when none negative).
  double worst = 0.0;
  /// Coordinates whose active constraint has a negative multiplier.
  std::vector<std::size_t> violating;
  /// Whether the KKT conditions hold within the tolerance used.
  bool satisfied = false;
};

/// Computes multipliers for gradient `g`, loads `u` and the active set.
/// `tol` is the relative negativity tolerance: a multiplier m is violating
/// when m < -tol * scale with scale = max(1, |lambda| * u_j).
KktReport compute_kkt(std::span<const double> g, std::span<const double> u,
                      const std::vector<BoundState>& bounds, double tol);

/// In-place variant: overwrites `report`, reusing its vector capacity so
/// repeated certification (every solver iteration) allocates nothing once
/// the vectors have grown to dimension.
void compute_kkt(std::span<const double> g, std::span<const double> u,
                 const std::vector<BoundState>& bounds, double tol,
                 KktReport& report);

}  // namespace netmon::opt
