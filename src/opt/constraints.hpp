// The feasible set of the placement problem (paper §III, eqs. 3-5):
//   sum_j u_j p_j = theta      (capacity used in full, §IV-B eq. 8)
//   0 <= p_j <= alpha_j        (per-link sampling-rate bounds)
// with u_j > 0 the link loads and theta the system capacity.
#pragma once

#include <span>
#include <vector>

namespace netmon::opt {

/// Box bounds plus a single weighted-sum equality.
class BoxBudgetConstraints {
 public:
  /// Requires u_j > 0, alpha_j in (0,1], theta in (0, sum u_j alpha_j].
  BoxBudgetConstraints(std::vector<double> u, std::vector<double> alpha,
                       double theta);

  std::size_t dimension() const noexcept { return u_.size(); }
  const std::vector<double>& loads() const noexcept { return u_; }
  const std::vector<double>& upper() const noexcept { return alpha_; }
  double theta() const noexcept { return theta_; }

  /// sum_j u_j p_j.
  double budget(std::span<const double> p) const;

  /// Whether p satisfies all constraints within tolerance.
  bool feasible(std::span<const double> p, double tol = 1e-9) const;

  /// A feasible starting point on the budget plane: the uniform scaling
  /// p_j = t alpha_j with t = theta / sum u_j alpha_j (paper §IV-D starts
  /// "arbitrarily on the plane defined by the active constraint (5)").
  std::vector<double> initial_point() const;

  /// Euclidean projection onto the feasible set (used by the reference
  /// solver): p_j = clamp(y_j - lambda u_j, 0, alpha_j) with lambda found
  /// by bisection so the budget holds.
  std::vector<double> project(std::span<const double> y) const;

 private:
  std::vector<double> u_;
  std::vector<double> alpha_;
  double theta_;
};

}  // namespace netmon::opt
