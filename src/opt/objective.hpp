// Objective-function interfaces for the constrained concave maximization.
//
// The optimizer (opt::GradientProjectionSolver) is generic: it sees an
// Objective — value, gradient, and second directional derivative — and
// knows nothing about networks. The placement problem instantiates
// SeparableConcaveObjective: f(p) = sum_k M_k((Rp)_k) with M_k concave
// 1-D utilities and R a sparse non-negative matrix stored as a flat CSR
// (linalg::SparseCsr). Every evaluation entry point has a workspace-
// taking variant that draws scratch from linalg::EvalWorkspace and
// performs zero heap allocations at steady state.
//
// The fused evaluation layer: per-OD utility math runs through batch
// kernels over structure-of-arrays coefficient tables (parameter j of
// term i of a run lives at soa[j * stride + i]), so a whole run is one
// plain-function call over contiguous arrays — branch-free and
// auto-vectorizable. Each kernel family ships a scalar reference
// variant and (when compiled with NETMON_SIMD) a vectorized variant
// that is bit-identical by construction; opt::simd_dispatch_enabled()
// selects between them at runtime.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"
#include "util/page_alloc.hpp"

namespace netmon::runtime {
class ThreadPool;
}  // namespace netmon::runtime

namespace netmon::opt {

class SeparableConcaveObjective;

/// Batch-kernel dispatch levels, ordered by capability. Every level is
/// bit-identical to every other (the vector kernels replay the scalar
/// reference op sequence, lane for lane), so the level only changes
/// throughput — never results.
enum class SimdLevel : int {
  kScalar = 0,  ///< scalar reference kernels (core/utility.cpp)
  kAvx2 = 1,    ///< AVX2+FMA intrinsics (core/utility_avx2.cpp)
  kAvx512 = 2,  ///< AVX-512F intrinsics (core/utility_avx512.cpp)
};

/// Highest level this build + this CPU can run: compiled-in kernel TUs
/// intersected with CPUID (__builtin_cpu_supports) at first call.
SimdLevel simd_max_level();

/// The resolved dispatch level. Defaults to the NETMON_SIMD environment
/// variable — "scalar"/"0"/"off", "avx2", "avx512", or "auto"/"1"/"on"
/// (= highest supported); unknown values throw netmon::Error. A
/// requested level the hardware lacks falls back to the highest
/// supported one (per-level fallback), so the result is always runnable.
SimdLevel simd_dispatch_level();

/// Overrides the dispatch level (tests sweep levels explicitly). Clamped
/// to simd_max_level().
void set_simd_dispatch_level(SimdLevel level);

/// Whether the fast-math kernel variants (reciprocal + Newton instead of
/// IEEE division) are dispatched. Default off; NETMON_SIMD_FASTMATH=1
/// opts in. Fast-math results are NOT bit-exact — they carry ≤ ~1e-12
/// relative error and are gated on that bound, not on bit identity.
bool simd_fastmath_enabled();
void set_simd_fastmath(bool enabled);

/// Parses a NETMON_SIMD value ("auto"/"on"/"1" resolve to
/// simd_max_level()). Throws netmon::Error on unknown values (exposed
/// for tests; the env init path uses it).
SimdLevel parse_simd_level(std::string_view value);

/// Parses a NETMON_SIMD_FASTMATH value ("0"/"off"/"1"/"on"); throws
/// netmon::Error on anything else.
bool parse_simd_fastmath(std::string_view value);

/// Lower-case level name ("scalar"/"avx2"/"avx512") for reports.
const char* simd_level_name(SimdLevel level);

/// Compatibility shims for the historical on/off knob: enabled means
/// "any vector level", and enabling resolves to the highest supported
/// level.
bool simd_dispatch_enabled();
void set_simd_dispatch(bool enabled);

/// A twice continuously differentiable concave objective to MAXIMIZE.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Dimension of the variable vector.
  virtual std::size_t dimension() const = 0;

  /// f(p).
  virtual double value(std::span<const double> p) const = 0;

  /// Writes grad f(p) into `out` (size dimension()).
  virtual void gradient(std::span<const double> p,
                        std::span<double> out) const = 0;

  /// d^2/dt^2 f(p + t s) at t = 0. Non-positive for concave f.
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s) const = 0;

  /// Workspace-aware variants: implementations that can evaluate without
  /// allocating draw term-sized scratch from `ws` (only the rows_* slots;
  /// cols_* belong to the caller). The defaults forward to the plain
  /// virtuals, so existing objectives keep working unchanged.
  virtual double value(std::span<const double> p,
                       linalg::EvalWorkspace& ws) const {
    (void)ws;
    return value(p);
  }
  virtual void gradient(std::span<const double> p, std::span<double> out,
                        linalg::EvalWorkspace& ws) const {
    (void)ws;
    gradient(p, out);
  }
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s,
                                    linalg::EvalWorkspace& ws) const {
    (void)ws;
    return directional_second(p, s);
  }

  /// Optional capability hook: objectives with separable structure
  /// f(p) = sum_k M_k(a_k + (Rp)_k) return themselves, which lets the
  /// solver use the fused evaluation kernels and maintain the inner
  /// products rho = R p incrementally. The default (no structure)
  /// returns nullptr and the solver falls back to the generic virtuals.
  virtual const SeparableConcaveObjective* separable() const {
    return nullptr;
  }
};

/// A strictly increasing, concave, twice continuously differentiable
/// scalar function (the utility M of the paper).
class Concave1d {
 public:
  /// Fixed-arity per-term parameter pack for batch kernels.
  static constexpr std::size_t kBatchParamCount = 4;
  using BatchParams = std::array<double, kBatchParamCount>;

  /// A batch kernel evaluates a contiguous run of n terms in one plain-
  /// function call — no per-term virtual dispatch. Parameters are laid
  /// out as structure-of-arrays by the objective: parameter j of term i
  /// lives at soa[j * stride + i]. Terms whose utilities return the same
  /// kernel pointer are grouped into contiguous runs.
  struct BatchKernel {
    /// out[i] = f(params_i, x[i]).
    using MapFn = void (*)(const double* soa, std::size_t stride,
                           const double* x, double* out, std::size_t n);
    /// Fused: v[i], m1[i], m2[i] = M, M', M'' at x[i] from one pass.
    using FusedFn = void (*)(const double* soa, std::size_t stride,
                             const double* x, double* v, double* m1,
                             double* m2, std::size_t n);
    /// Derivative pair only (line-search probes skip the value).
    using Deriv2Fn = void (*)(const double* soa, std::size_t stride,
                              const double* x, double* m1, double* m2,
                              std::size_t n);

    MapFn value = nullptr;
    MapFn deriv = nullptr;
    MapFn second = nullptr;
    /// Scalar reference fused variants (required when the maps exist).
    FusedFn fused = nullptr;
    Deriv2Fn deriv2 = nullptr;
    /// Leveled bit-exact vector variants, indexed by SimdLevel - 1
    /// (slot 0 = AVX2, slot 1 = AVX-512). nullptr when the family does
    /// not vectorize (libm-bound) or the build lacks the TU. Must be
    /// bit-identical to the scalar variants, element for element.
    std::array<FusedFn, 2> fused_lvl{};
    std::array<Deriv2Fn, 2> deriv2_lvl{};
    /// Fast-math variants (reciprocal + Newton): ≤ ~1e-12 relative
    /// error, opt-in via simd_fastmath_enabled(). Same level indexing.
    std::array<FusedFn, 2> fused_fm{};
    std::array<Deriv2Fn, 2> deriv2_fm{};
    /// Index (into the SoA parameter pack) of the pivot that splits this
    /// family's piecewise regimes, or kNoPivot for single-regime
    /// families. The line-search restriction partitions its compacted
    /// terms on x < pivot so vector kernels see lane-uniform blocks.
    static constexpr std::size_t kNoPivot = static_cast<std::size_t>(-1);
    std::size_t pivot_param = kNoPivot;

    /// Variant selection with per-level fallback: the requested level's
    /// slot, else each lower vector level, else the scalar reference.
    /// Fast-math slots are consulted first (same fallback walk) when
    /// `fastmath` is set.
    FusedFn select_fused(SimdLevel level, bool fastmath) const {
      for (int l = static_cast<int>(level); l >= 1; --l) {
        if (fastmath && fused_fm[l - 1] != nullptr) return fused_fm[l - 1];
        if (fused_lvl[l - 1] != nullptr) return fused_lvl[l - 1];
      }
      return fused;
    }
    Deriv2Fn select_deriv2(SimdLevel level, bool fastmath) const {
      for (int l = static_cast<int>(level); l >= 1; --l) {
        if (fastmath && deriv2_fm[l - 1] != nullptr) return deriv2_fm[l - 1];
        if (deriv2_lvl[l - 1] != nullptr) return deriv2_lvl[l - 1];
      }
      return deriv2;
    }
  };

  virtual ~Concave1d() = default;
  virtual double value(double x) const = 0;
  virtual double deriv(double x) const = 0;
  virtual double second(double x) const = 0;

  /// Batch fast path: fills `params` with this instance's parameters and
  /// returns a (statically allocated) kernel, or nullptr when only the
  /// scalar virtuals exist (the default). A kernel must compute exactly
  /// what the scalar virtuals compute, operation for operation.
  virtual const BatchKernel* batch_kernel(BatchParams& params) const {
    (void)params;
    return nullptr;
  }
};

/// f(p) = sum_k M_k( a_k + (Rp)_k ) with sparse non-negative R and
/// optional per-row offsets a_k (used by the sequential linearization of
/// the exact effective rate, where the tangent plane has a constant term).
class SeparableConcaveObjective final : public Objective {
 public:
  /// Pair-list row format accepted by the converting constructors.
  using SparseRows = std::vector<std::vector<std::pair<std::size_t, double>>>;

  /// CSR-native constructor: `matrix` is R (one row per term, one column
  /// per variable); `offsets` is empty or one a_k per row.
  SeparableConcaveObjective(linalg::SparseCsr matrix,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets = {});

  /// Pair-list conveniences (convert to CSR on construction).
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities);
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets);

  std::size_t dimension() const override { return matrix_.cols(); }
  double value(std::span<const double> p) const override;
  void gradient(std::span<const double> p,
                std::span<double> out) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override;

  /// Allocation-free evaluation through a caller-provided workspace.
  double value(std::span<const double> p,
               linalg::EvalWorkspace& ws) const override;
  void gradient(std::span<const double> p, std::span<double> out,
                linalg::EvalWorkspace& ws) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s,
                            linalg::EvalWorkspace& ws) const override;

  const SeparableConcaveObjective* separable() const override {
    return this;
  }

  /// ---- Fused evaluation layer ----

  /// Per-term state produced by one fused evaluation. The spans alias
  /// the workspace (or solver-maintained buffers) handed to the call and
  /// stay valid until those buffers are next reused.
  struct FusedEval {
    double value = 0.0;
    std::span<const double> x;   ///< inner products a + Rp per term
    std::span<const double> m1;  ///< M'_k(x_k) per term
    std::span<const double> m2;  ///< M''_k(x_k) per term
  };

  /// Objective value + gradient + per-term derivatives from ONE matrix
  /// traversal for the inner products, ONE fused pass over the utility
  /// terms (all of M, M', M'' per term) and ONE transposed scatter —
  /// versus the three traversals and three term passes of calling
  /// value() + gradient() + directional_second() separately. The value
  /// and gradient are bit-identical to the separate entry points.
  FusedEval fused_eval(std::span<const double> p, std::span<double> grad,
                       linalg::EvalWorkspace& ws) const;

  /// Same, starting from known inner products `x` (e.g. the solver's
  /// incrementally maintained rho = R p): skips the matrix traversal.
  FusedEval fused_eval_from_inner(std::span<const double> x,
                                  std::span<double> grad,
                                  linalg::EvalWorkspace& ws) const;

  /// ---- Intra-solve parallel evaluation ----
  //
  // Pool-taking variants of the hot entry points, used by the solver for
  // instances above SolverOptions::parallel_min_terms. Each one shards
  // only elementwise work (term-kernel sub-ranges, matrix rows) with
  // deterministic chunking and keeps every order-sensitive reduction
  // (the value sum) serial, so the outputs are bit-identical to the
  // serial entry points at every thread count — not merely stable across
  // thread counts. The gradient runs as a row-parallel spmv over the
  // stored transpose, which is bit-identical to the serial spmv_t
  // scatter (see linalg/parallel_kernels.hpp).

  /// inner_into, rows sharded across `pool`. Bit-identical.
  void inner_into(std::span<const double> p, std::span<double> x,
                  runtime::ThreadPool& pool) const;

  /// fused_terms, term ranges sharded across `pool` (run structure is
  /// respected; kernels see contiguous sub-ranges of the SoA table).
  /// Bit-identical.
  void fused_terms(std::span<const double> x, std::span<double> v,
                   std::span<double> m1, std::span<double> m2,
                   runtime::ThreadPool& pool) const;

  /// fused_eval_from_inner with the term pass and the gradient sharded
  /// across `pool` when non-null (the value sum stays serial).
  /// Bit-identical to the serial overload.
  FusedEval fused_eval_from_inner(std::span<const double> x,
                                  std::span<double> grad,
                                  linalg::EvalWorkspace& ws,
                                  runtime::ThreadPool* pool) const;

  /// Hessian diagonal h_j = sum_k M''_k r_{k,j}^2 together with the
  /// gradient, from the m1/m2 of a fused evaluation — one traversal for
  /// both scatters (linalg::spmv_t_grad_hess).
  void grad_hess_diag_from_terms(std::span<const double> m1,
                                 std::span<const double> m2,
                                 std::span<double> grad,
                                 std::span<double> hess_diag) const;

  /// d^2/dt^2 f(p + t s) given per-term M'' and rs = R s: sum m2 rs^2.
  double directional_second_from_terms(std::span<const double> m2,
                                       std::span<const double> rs) const;

  /// f value from known inner products (one term pass, no traversal).
  double value_from_inner(std::span<const double> x,
                          linalg::EvalWorkspace& ws) const;

  /// Per-term M, M', M'' at inner products x: one fused batch-kernel
  /// pass per run, dispatched to the SIMD variant when enabled.
  void fused_terms(std::span<const double> x, std::span<double> v,
                   std::span<double> m1, std::span<double> m2) const;

  /// Incremental inner-product maintenance: x += delta * R e_col, one
  /// walk of the CSC column (the delta-update the solver applies when a
  /// projection step clamps or snaps coordinate `col`).
  void inner_axpy(std::size_t col, double delta, std::span<double> x) const;

  /// Deterministic parallel value: CSR row ranges are folded via
  /// runtime::parallel_reduce, so the result is bit-identical at every
  /// thread count (chunk layout is thread-count independent).
  double value_parallel(std::span<const double> p,
                        runtime::ThreadPool& pool) const;

  /// Writes the inner products a_k + (Rp)_k — the effective sampling
  /// rates — into `x` (size term_count()). Allocation-free.
  void inner_into(std::span<const double> p, std::span<double> x) const;

  /// The inner products as a fresh vector.
  std::vector<double> inner(std::span<const double> p) const;

  /// Number of separable terms (rows of R).
  std::size_t term_count() const noexcept { return matrix_.rows(); }

  /// Utility value of one term at the given inner product.
  const Concave1d& utility(std::size_t k) const { return *utilities_[k]; }

  /// R as a flat CSR (used by composing objectives, e.g. smooth-min).
  const linalg::SparseCsr& matrix() const noexcept { return matrix_; }

  /// R^T as a flat CSR — the CSC view used for column delta-updates.
  const linalg::SparseCsr& matrix_transposed() const noexcept {
    return matrix_t_;
  }

 private:
  friend class SeparableRestriction;

  /// One maximal run of consecutive terms sharing a batch kernel
  /// (kernel == nullptr marks a scalar-dispatch run).
  struct BatchRun {
    const Concave1d::BatchKernel* kernel = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  enum class Map { kValue, kDeriv, kSecond };

  void validate();
  void compile_batch_runs();
  /// out[k] = M_k / M'_k / M''_k applied to x[k], batched per run.
  void map_terms(Map mode, std::span<const double> x,
                 std::span<double> out) const;
  /// fused_terms restricted to terms [begin, end): the unit of work the
  /// parallel overload shards. The dispatch level and fast-math flag are
  /// hoisted so every shard of one evaluation dispatches identically.
  void fused_terms_range(std::size_t begin, std::size_t end,
                         std::span<const double> x, std::span<double> v,
                         std::span<double> m1, std::span<double> m2,
                         SimdLevel level, bool fastmath) const;
  /// SoA table base pointer for the run starting at term `begin`:
  /// parameter j of term (begin + i) is soa_base(begin)[j * n + i] with
  /// n = term_count() the column stride.
  const double* soa_base(std::size_t begin) const {
    return soa_.data() + begin;
  }

  linalg::SparseCsr matrix_;
  linalg::SparseCsr matrix_t_;  // transpose (CSC view) for column updates
  std::vector<std::shared_ptr<const Concave1d>> utilities_;
  std::vector<double> offsets_;
  /// Structure-of-arrays coefficient table: parameter j of term i at
  /// soa_[j * term_count() + i]. Runs index into it via soa_base().
  /// Page-backed: the batch kernels stream all four parameter columns
  /// per pass (see util/page_alloc.hpp).
  util::PageVector<double> soa_;
  std::vector<BatchRun> runs_;
  /// Scratch for the workspace-less virtuals; grow-only, so repeated
  /// calls allocate nothing. Not for concurrent evaluation of the same
  /// instance — concurrent callers must use the workspace overloads.
  mutable linalg::EvalWorkspace scratch_;
};

}  // namespace netmon::opt
