// Objective-function interfaces for the constrained concave maximization.
//
// The optimizer (opt::GradientProjectionSolver) is generic: it sees an
// Objective — value, gradient, and second directional derivative — and
// knows nothing about networks. The placement problem instantiates
// SeparableConcaveObjective: f(p) = sum_k M_k((Rp)_k) with M_k concave
// 1-D utilities and R a sparse non-negative matrix stored as a flat CSR
// (linalg::SparseCsr). Every evaluation entry point has a workspace-
// taking variant that draws scratch from linalg::EvalWorkspace and
// performs zero heap allocations at steady state.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"

namespace netmon::runtime {
class ThreadPool;
}  // namespace netmon::runtime

namespace netmon::opt {

/// A twice continuously differentiable concave objective to MAXIMIZE.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Dimension of the variable vector.
  virtual std::size_t dimension() const = 0;

  /// f(p).
  virtual double value(std::span<const double> p) const = 0;

  /// Writes grad f(p) into `out` (size dimension()).
  virtual void gradient(std::span<const double> p,
                        std::span<double> out) const = 0;

  /// d^2/dt^2 f(p + t s) at t = 0. Non-positive for concave f.
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s) const = 0;

  /// Workspace-aware variants: implementations that can evaluate without
  /// allocating draw term-sized scratch from `ws` (only the rows_* slots;
  /// cols_* belong to the caller). The defaults forward to the plain
  /// virtuals, so existing objectives keep working unchanged.
  virtual double value(std::span<const double> p,
                       linalg::EvalWorkspace& ws) const {
    (void)ws;
    return value(p);
  }
  virtual void gradient(std::span<const double> p, std::span<double> out,
                        linalg::EvalWorkspace& ws) const {
    (void)ws;
    gradient(p, out);
  }
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s,
                                    linalg::EvalWorkspace& ws) const {
    (void)ws;
    return directional_second(p, s);
  }
};

/// A strictly increasing, concave, twice continuously differentiable
/// scalar function (the utility M of the paper).
class Concave1d {
 public:
  /// Fixed-arity per-term parameter pack for batch kernels.
  static constexpr std::size_t kBatchParamCount = 4;
  using BatchParams = std::array<double, kBatchParamCount>;

  /// A batch kernel evaluates out[i] = f(params[i], x[i]) for n terms in
  /// one plain-function call — no per-term virtual dispatch. Terms whose
  /// utilities return the same kernel pointer are grouped into contiguous
  /// runs by SeparableConcaveObjective and evaluated together.
  struct BatchKernel {
    using Fn = void (*)(const BatchParams* params, const double* x,
                        double* out, std::size_t n);
    Fn value = nullptr;
    Fn deriv = nullptr;
    Fn second = nullptr;
  };

  virtual ~Concave1d() = default;
  virtual double value(double x) const = 0;
  virtual double deriv(double x) const = 0;
  virtual double second(double x) const = 0;

  /// Batch fast path: fills `params` with this instance's parameters and
  /// returns a (statically allocated) kernel, or nullptr when only the
  /// scalar virtuals exist (the default). A kernel must compute exactly
  /// what the scalar virtuals compute, operation for operation.
  virtual const BatchKernel* batch_kernel(BatchParams& params) const {
    (void)params;
    return nullptr;
  }
};

/// f(p) = sum_k M_k( a_k + (Rp)_k ) with sparse non-negative R and
/// optional per-row offsets a_k (used by the sequential linearization of
/// the exact effective rate, where the tangent plane has a constant term).
class SeparableConcaveObjective final : public Objective {
 public:
  /// Pair-list row format accepted by the converting constructors.
  using SparseRows = std::vector<std::vector<std::pair<std::size_t, double>>>;

  /// CSR-native constructor: `matrix` is R (one row per term, one column
  /// per variable); `offsets` is empty or one a_k per row.
  SeparableConcaveObjective(linalg::SparseCsr matrix,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets = {});

  /// Pair-list conveniences (convert to CSR on construction).
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities);
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets);

  std::size_t dimension() const override { return matrix_.cols(); }
  double value(std::span<const double> p) const override;
  void gradient(std::span<const double> p,
                std::span<double> out) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override;

  /// Allocation-free evaluation through a caller-provided workspace.
  double value(std::span<const double> p,
               linalg::EvalWorkspace& ws) const override;
  void gradient(std::span<const double> p, std::span<double> out,
                linalg::EvalWorkspace& ws) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s,
                            linalg::EvalWorkspace& ws) const override;

  /// Deterministic parallel value: CSR row ranges are folded via
  /// runtime::parallel_reduce, so the result is bit-identical at every
  /// thread count (chunk layout is thread-count independent).
  double value_parallel(std::span<const double> p,
                        runtime::ThreadPool& pool) const;

  /// Writes the inner products a_k + (Rp)_k — the effective sampling
  /// rates — into `x` (size term_count()). Allocation-free.
  void inner_into(std::span<const double> p, std::span<double> x) const;

  /// The inner products as a fresh vector.
  std::vector<double> inner(std::span<const double> p) const;

  /// Number of separable terms (rows of R).
  std::size_t term_count() const noexcept { return matrix_.rows(); }

  /// Utility value of one term at the given inner product.
  const Concave1d& utility(std::size_t k) const { return *utilities_[k]; }

  /// R as a flat CSR (used by composing objectives, e.g. smooth-min).
  const linalg::SparseCsr& matrix() const noexcept { return matrix_; }

 private:
  /// One maximal run of consecutive terms sharing a batch kernel
  /// (kernel == nullptr marks a scalar-dispatch run).
  struct BatchRun {
    const Concave1d::BatchKernel* kernel = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  enum class Map { kValue, kDeriv, kSecond };

  void validate();
  void compile_batch_runs();
  /// out[k] = M_k / M'_k / M''_k applied to x[k], batched per run.
  void map_terms(Map mode, std::span<const double> x,
                 std::span<double> out) const;

  linalg::SparseCsr matrix_;
  std::vector<std::shared_ptr<const Concave1d>> utilities_;
  std::vector<double> offsets_;
  std::vector<Concave1d::BatchParams> params_;
  std::vector<BatchRun> runs_;
  /// Scratch for the workspace-less virtuals; grow-only, so repeated
  /// calls allocate nothing. Not for concurrent evaluation of the same
  /// instance — concurrent callers must use the workspace overloads.
  mutable linalg::EvalWorkspace scratch_;
};

}  // namespace netmon::opt
