// Objective-function interfaces for the constrained concave maximization.
//
// The optimizer (opt::GradientProjectionSolver) is generic: it sees an
// Objective — value, gradient, and second directional derivative — and
// knows nothing about networks. The placement problem instantiates
// SeparableConcaveObjective: f(p) = sum_k M_k((Rp)_k) with M_k concave
// 1-D utilities and R a sparse non-negative matrix.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace netmon::opt {

/// A twice continuously differentiable concave objective to MAXIMIZE.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Dimension of the variable vector.
  virtual std::size_t dimension() const = 0;

  /// f(p).
  virtual double value(std::span<const double> p) const = 0;

  /// Writes grad f(p) into `out` (size dimension()).
  virtual void gradient(std::span<const double> p,
                        std::span<double> out) const = 0;

  /// d^2/dt^2 f(p + t s) at t = 0. Non-positive for concave f.
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s) const = 0;
};

/// A strictly increasing, concave, twice continuously differentiable
/// scalar function (the utility M of the paper).
class Concave1d {
 public:
  virtual ~Concave1d() = default;
  virtual double value(double x) const = 0;
  virtual double deriv(double x) const = 0;
  virtual double second(double x) const = 0;
};

/// f(p) = sum_k M_k( a_k + (Rp)_k ) with sparse non-negative R and
/// optional per-row offsets a_k (used by the sequential linearization of
/// the exact effective rate, where the tangent plane has a constant term).
class SeparableConcaveObjective final : public Objective {
 public:
  /// One sparse row per term: (column, coefficient) pairs.
  using SparseRows = std::vector<std::vector<std::pair<std::size_t, double>>>;

  /// `utilities[k]` applies to row k; all rows index columns < dimension.
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities);

  /// Same, with per-row constant offsets a_k.
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets);

  std::size_t dimension() const override { return dimension_; }
  double value(std::span<const double> p) const override;
  void gradient(std::span<const double> p,
                std::span<double> out) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override;

  /// The inner products (Rp)_k — the effective sampling rates.
  std::vector<double> inner(std::span<const double> p) const;

  /// Number of separable terms (rows of R).
  std::size_t term_count() const noexcept { return rows_.size(); }

  /// Utility value of one term at the given inner product.
  const Concave1d& utility(std::size_t k) const { return *utilities_[k]; }

  /// The sparse rows of R (used by composing objectives, e.g. smooth-min).
  const SparseRows& rows() const noexcept { return rows_; }

 private:
  std::size_t dimension_;
  SparseRows rows_;
  std::vector<std::shared_ptr<const Concave1d>> utilities_;
  std::vector<double> offsets_;
};

}  // namespace netmon::opt
