// Objective-function interfaces for the constrained concave maximization.
//
// The optimizer (opt::GradientProjectionSolver) is generic: it sees an
// Objective — value, gradient, and second directional derivative — and
// knows nothing about networks. The placement problem instantiates
// SeparableConcaveObjective: f(p) = sum_k M_k((Rp)_k) with M_k concave
// 1-D utilities and R a sparse non-negative matrix stored as a flat CSR
// (linalg::SparseCsr). Every evaluation entry point has a workspace-
// taking variant that draws scratch from linalg::EvalWorkspace and
// performs zero heap allocations at steady state.
//
// The fused evaluation layer: per-OD utility math runs through batch
// kernels over structure-of-arrays coefficient tables (parameter j of
// term i of a run lives at soa[j * stride + i]), so a whole run is one
// plain-function call over contiguous arrays — branch-free and
// auto-vectorizable. Each kernel family ships a scalar reference
// variant and (when compiled with NETMON_SIMD) a vectorized variant
// that is bit-identical by construction; opt::simd_dispatch_enabled()
// selects between them at runtime.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/workspace.hpp"

namespace netmon::runtime {
class ThreadPool;
}  // namespace netmon::runtime

namespace netmon::opt {

class SeparableConcaveObjective;

/// Whether batch kernels dispatch to their vectorized variants. Defaults
/// to on when the library was built with NETMON_SIMD and the NETMON_SIMD
/// environment variable is not "0"/"off"/"scalar". The scalar and SIMD
/// variants are bit-identical, so flipping this never changes results —
/// only throughput.
bool simd_dispatch_enabled();

/// Overrides the dispatch decision (tests sweep both paths explicitly).
void set_simd_dispatch(bool enabled);

/// A twice continuously differentiable concave objective to MAXIMIZE.
class Objective {
 public:
  virtual ~Objective() = default;

  /// Dimension of the variable vector.
  virtual std::size_t dimension() const = 0;

  /// f(p).
  virtual double value(std::span<const double> p) const = 0;

  /// Writes grad f(p) into `out` (size dimension()).
  virtual void gradient(std::span<const double> p,
                        std::span<double> out) const = 0;

  /// d^2/dt^2 f(p + t s) at t = 0. Non-positive for concave f.
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s) const = 0;

  /// Workspace-aware variants: implementations that can evaluate without
  /// allocating draw term-sized scratch from `ws` (only the rows_* slots;
  /// cols_* belong to the caller). The defaults forward to the plain
  /// virtuals, so existing objectives keep working unchanged.
  virtual double value(std::span<const double> p,
                       linalg::EvalWorkspace& ws) const {
    (void)ws;
    return value(p);
  }
  virtual void gradient(std::span<const double> p, std::span<double> out,
                        linalg::EvalWorkspace& ws) const {
    (void)ws;
    gradient(p, out);
  }
  virtual double directional_second(std::span<const double> p,
                                    std::span<const double> s,
                                    linalg::EvalWorkspace& ws) const {
    (void)ws;
    return directional_second(p, s);
  }

  /// Optional capability hook: objectives with separable structure
  /// f(p) = sum_k M_k(a_k + (Rp)_k) return themselves, which lets the
  /// solver use the fused evaluation kernels and maintain the inner
  /// products rho = R p incrementally. The default (no structure)
  /// returns nullptr and the solver falls back to the generic virtuals.
  virtual const SeparableConcaveObjective* separable() const {
    return nullptr;
  }
};

/// A strictly increasing, concave, twice continuously differentiable
/// scalar function (the utility M of the paper).
class Concave1d {
 public:
  /// Fixed-arity per-term parameter pack for batch kernels.
  static constexpr std::size_t kBatchParamCount = 4;
  using BatchParams = std::array<double, kBatchParamCount>;

  /// A batch kernel evaluates a contiguous run of n terms in one plain-
  /// function call — no per-term virtual dispatch. Parameters are laid
  /// out as structure-of-arrays by the objective: parameter j of term i
  /// lives at soa[j * stride + i]. Terms whose utilities return the same
  /// kernel pointer are grouped into contiguous runs.
  struct BatchKernel {
    /// out[i] = f(params_i, x[i]).
    using MapFn = void (*)(const double* soa, std::size_t stride,
                           const double* x, double* out, std::size_t n);
    /// Fused: v[i], m1[i], m2[i] = M, M', M'' at x[i] from one pass.
    using FusedFn = void (*)(const double* soa, std::size_t stride,
                             const double* x, double* v, double* m1,
                             double* m2, std::size_t n);
    /// Derivative pair only (line-search probes skip the value).
    using Deriv2Fn = void (*)(const double* soa, std::size_t stride,
                              const double* x, double* m1, double* m2,
                              std::size_t n);

    MapFn value = nullptr;
    MapFn deriv = nullptr;
    MapFn second = nullptr;
    /// Scalar reference fused variants (required when the maps exist).
    FusedFn fused = nullptr;
    Deriv2Fn deriv2 = nullptr;
    /// Vectorized variants; nullptr when the family does not vectorize
    /// (libm-bound kernels) or the build disabled NETMON_SIMD. Must be
    /// bit-identical to the scalar variants, element for element.
    FusedFn fused_simd = nullptr;
    Deriv2Fn deriv2_simd = nullptr;
  };

  virtual ~Concave1d() = default;
  virtual double value(double x) const = 0;
  virtual double deriv(double x) const = 0;
  virtual double second(double x) const = 0;

  /// Batch fast path: fills `params` with this instance's parameters and
  /// returns a (statically allocated) kernel, or nullptr when only the
  /// scalar virtuals exist (the default). A kernel must compute exactly
  /// what the scalar virtuals compute, operation for operation.
  virtual const BatchKernel* batch_kernel(BatchParams& params) const {
    (void)params;
    return nullptr;
  }
};

/// f(p) = sum_k M_k( a_k + (Rp)_k ) with sparse non-negative R and
/// optional per-row offsets a_k (used by the sequential linearization of
/// the exact effective rate, where the tangent plane has a constant term).
class SeparableConcaveObjective final : public Objective {
 public:
  /// Pair-list row format accepted by the converting constructors.
  using SparseRows = std::vector<std::vector<std::pair<std::size_t, double>>>;

  /// CSR-native constructor: `matrix` is R (one row per term, one column
  /// per variable); `offsets` is empty or one a_k per row.
  SeparableConcaveObjective(linalg::SparseCsr matrix,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets = {});

  /// Pair-list conveniences (convert to CSR on construction).
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities);
  SeparableConcaveObjective(std::size_t dimension, SparseRows rows,
                            std::vector<std::shared_ptr<const Concave1d>>
                                utilities,
                            std::vector<double> offsets);

  std::size_t dimension() const override { return matrix_.cols(); }
  double value(std::span<const double> p) const override;
  void gradient(std::span<const double> p,
                std::span<double> out) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s) const override;

  /// Allocation-free evaluation through a caller-provided workspace.
  double value(std::span<const double> p,
               linalg::EvalWorkspace& ws) const override;
  void gradient(std::span<const double> p, std::span<double> out,
                linalg::EvalWorkspace& ws) const override;
  double directional_second(std::span<const double> p,
                            std::span<const double> s,
                            linalg::EvalWorkspace& ws) const override;

  const SeparableConcaveObjective* separable() const override {
    return this;
  }

  /// ---- Fused evaluation layer ----

  /// Per-term state produced by one fused evaluation. The spans alias
  /// the workspace (or solver-maintained buffers) handed to the call and
  /// stay valid until those buffers are next reused.
  struct FusedEval {
    double value = 0.0;
    std::span<const double> x;   ///< inner products a + Rp per term
    std::span<const double> m1;  ///< M'_k(x_k) per term
    std::span<const double> m2;  ///< M''_k(x_k) per term
  };

  /// Objective value + gradient + per-term derivatives from ONE matrix
  /// traversal for the inner products, ONE fused pass over the utility
  /// terms (all of M, M', M'' per term) and ONE transposed scatter —
  /// versus the three traversals and three term passes of calling
  /// value() + gradient() + directional_second() separately. The value
  /// and gradient are bit-identical to the separate entry points.
  FusedEval fused_eval(std::span<const double> p, std::span<double> grad,
                       linalg::EvalWorkspace& ws) const;

  /// Same, starting from known inner products `x` (e.g. the solver's
  /// incrementally maintained rho = R p): skips the matrix traversal.
  FusedEval fused_eval_from_inner(std::span<const double> x,
                                  std::span<double> grad,
                                  linalg::EvalWorkspace& ws) const;

  /// ---- Intra-solve parallel evaluation ----
  //
  // Pool-taking variants of the hot entry points, used by the solver for
  // instances above SolverOptions::parallel_min_terms. Each one shards
  // only elementwise work (term-kernel sub-ranges, matrix rows) with
  // deterministic chunking and keeps every order-sensitive reduction
  // (the value sum) serial, so the outputs are bit-identical to the
  // serial entry points at every thread count — not merely stable across
  // thread counts. The gradient runs as a row-parallel spmv over the
  // stored transpose, which is bit-identical to the serial spmv_t
  // scatter (see linalg/parallel_kernels.hpp).

  /// inner_into, rows sharded across `pool`. Bit-identical.
  void inner_into(std::span<const double> p, std::span<double> x,
                  runtime::ThreadPool& pool) const;

  /// fused_terms, term ranges sharded across `pool` (run structure is
  /// respected; kernels see contiguous sub-ranges of the SoA table).
  /// Bit-identical.
  void fused_terms(std::span<const double> x, std::span<double> v,
                   std::span<double> m1, std::span<double> m2,
                   runtime::ThreadPool& pool) const;

  /// fused_eval_from_inner with the term pass and the gradient sharded
  /// across `pool` when non-null (the value sum stays serial).
  /// Bit-identical to the serial overload.
  FusedEval fused_eval_from_inner(std::span<const double> x,
                                  std::span<double> grad,
                                  linalg::EvalWorkspace& ws,
                                  runtime::ThreadPool* pool) const;

  /// Hessian diagonal h_j = sum_k M''_k r_{k,j}^2 together with the
  /// gradient, from the m1/m2 of a fused evaluation — one traversal for
  /// both scatters (linalg::spmv_t_grad_hess).
  void grad_hess_diag_from_terms(std::span<const double> m1,
                                 std::span<const double> m2,
                                 std::span<double> grad,
                                 std::span<double> hess_diag) const;

  /// d^2/dt^2 f(p + t s) given per-term M'' and rs = R s: sum m2 rs^2.
  double directional_second_from_terms(std::span<const double> m2,
                                       std::span<const double> rs) const;

  /// f value from known inner products (one term pass, no traversal).
  double value_from_inner(std::span<const double> x,
                          linalg::EvalWorkspace& ws) const;

  /// Per-term M, M', M'' at inner products x: one fused batch-kernel
  /// pass per run, dispatched to the SIMD variant when enabled.
  void fused_terms(std::span<const double> x, std::span<double> v,
                   std::span<double> m1, std::span<double> m2) const;

  /// Incremental inner-product maintenance: x += delta * R e_col, one
  /// walk of the CSC column (the delta-update the solver applies when a
  /// projection step clamps or snaps coordinate `col`).
  void inner_axpy(std::size_t col, double delta, std::span<double> x) const;

  /// Deterministic parallel value: CSR row ranges are folded via
  /// runtime::parallel_reduce, so the result is bit-identical at every
  /// thread count (chunk layout is thread-count independent).
  double value_parallel(std::span<const double> p,
                        runtime::ThreadPool& pool) const;

  /// Writes the inner products a_k + (Rp)_k — the effective sampling
  /// rates — into `x` (size term_count()). Allocation-free.
  void inner_into(std::span<const double> p, std::span<double> x) const;

  /// The inner products as a fresh vector.
  std::vector<double> inner(std::span<const double> p) const;

  /// Number of separable terms (rows of R).
  std::size_t term_count() const noexcept { return matrix_.rows(); }

  /// Utility value of one term at the given inner product.
  const Concave1d& utility(std::size_t k) const { return *utilities_[k]; }

  /// R as a flat CSR (used by composing objectives, e.g. smooth-min).
  const linalg::SparseCsr& matrix() const noexcept { return matrix_; }

  /// R^T as a flat CSR — the CSC view used for column delta-updates.
  const linalg::SparseCsr& matrix_transposed() const noexcept {
    return matrix_t_;
  }

 private:
  friend class SeparableRestriction;

  /// One maximal run of consecutive terms sharing a batch kernel
  /// (kernel == nullptr marks a scalar-dispatch run).
  struct BatchRun {
    const Concave1d::BatchKernel* kernel = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  enum class Map { kValue, kDeriv, kSecond };

  void validate();
  void compile_batch_runs();
  /// out[k] = M_k / M'_k / M''_k applied to x[k], batched per run.
  void map_terms(Map mode, std::span<const double> x,
                 std::span<double> out) const;
  /// fused_terms restricted to terms [begin, end): the unit of work the
  /// parallel overload shards. `simd` is hoisted so every shard of one
  /// evaluation dispatches identically.
  void fused_terms_range(std::size_t begin, std::size_t end,
                         std::span<const double> x, std::span<double> v,
                         std::span<double> m1, std::span<double> m2,
                         bool simd) const;
  /// SoA table base pointer for the run starting at term `begin`:
  /// parameter j of term (begin + i) is soa_base(begin)[j * n + i] with
  /// n = term_count() the column stride.
  const double* soa_base(std::size_t begin) const {
    return soa_.data() + begin;
  }

  linalg::SparseCsr matrix_;
  linalg::SparseCsr matrix_t_;  // transpose (CSC view) for column updates
  std::vector<std::shared_ptr<const Concave1d>> utilities_;
  std::vector<double> offsets_;
  /// Structure-of-arrays coefficient table: parameter j of term i at
  /// soa_[j * term_count() + i]. Runs index into it via soa_base().
  std::vector<double> soa_;
  std::vector<BatchRun> runs_;
  /// Scratch for the workspace-less virtuals; grow-only, so repeated
  /// calls allocate nothing. Not for concurrent evaluation of the same
  /// instance — concurrent callers must use the workspace overloads.
  mutable linalg::EvalWorkspace scratch_;
};

}  // namespace netmon::opt
