#include "opt/barrier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::opt {

namespace {

// Dense linear solve (Gaussian elimination, partial pivoting) on a flat
// row-major n x n matrix, in place. The KKT systems here are (n+1)x(n+1)
// with n = candidate links, i.e. tiny — but the buffers are still reused
// across Newton iterations so the inner loop does not allocate.
void solve_dense_inplace(std::span<double> a, std::span<double> b,
                         std::span<double> x) {
  const std::size_t n = b.size();
  const auto at = [&](std::size_t r, std::size_t c) -> double& {
    return a[r * n + c];
  };
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(at(r, col)) > std::abs(at(pivot, col))) pivot = r;
    }
    NETMON_REQUIRE(std::abs(at(pivot, col)) > 1e-300,
                   "singular KKT system in barrier solver");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(at(col, c), at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    // Eliminate.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      b[r] -= factor * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= at(i, c) * x[c];
    x[i] = sum / at(i, i);
  }
}

}  // namespace

BarrierResult maximize_barrier(const SeparableConcaveObjective& f,
                               const BoxBudgetConstraints& constraints,
                               const BarrierOptions& options) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(f.dimension() == n, "dimension mismatch");
  const std::vector<double>& u = constraints.loads();
  const std::vector<double>& alpha = constraints.upper();

  double max_budget = 0.0;
  for (std::size_t j = 0; j < n; ++j) max_budget += u[j] * alpha[j];
  const double scale = constraints.theta() / max_budget;
  NETMON_REQUIRE(scale < 1.0 - 1e-9,
                 "barrier method needs a strictly interior point "
                 "(theta < sum(u*alpha))");

  BarrierResult result;
  result.p.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) result.p[j] = scale * alpha[j];

  linalg::EvalWorkspace eval;

  // phi_t(p) = -t f(p) - sum_j [ln p_j + ln(alpha_j - p_j)].
  auto phi = [&](const std::vector<double>& p, double t) {
    double barrier = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (p[j] <= 0.0 || p[j] >= alpha[j])
        return std::numeric_limits<double>::infinity();
      barrier -= std::log(p[j]) + std::log(alpha[j] - p[j]);
    }
    return -t * f.value(p, eval) + barrier;
  };

  const linalg::SparseCsr& matrix = f.matrix();
  std::vector<double> g_f(n), gphi(n), delta(n), candidate(n);
  std::vector<double> x(f.term_count());
  // One flat (n+1)x(n+1) KKT system + rhs + solution, reused across all
  // Newton iterations.
  std::vector<double> kkt((n + 1) * (n + 1));
  std::vector<double> rhs(n + 1), sol(n + 1);
  double t = options.t0;
  const double m = 2.0 * static_cast<double>(n);  // barrier constraints

  while (m / t > options.gap) {
    ++result.outer_iterations;

    for (int newton = 0; newton < options.max_newton; ++newton) {
      ++result.newton_iterations;
      f.gradient(result.p, g_f, eval);
      f.inner_into(result.p, x);

      // Hessian of phi: -t H_f + barrier diagonal.
      std::fill(kkt.begin(), kkt.end(), 0.0);
      const auto cell = [&](std::size_t r, std::size_t c) -> double& {
        return kkt[r * (n + 1) + c];
      };
      for (std::size_t k = 0; k < matrix.rows(); ++k) {
        const double s2 = f.utility(k).second(x[k]);
        for (const auto& [i, ci] : matrix.row(k)) {
          for (const auto& [j, cj] : matrix.row(k)) {
            cell(i, j) += -t * s2 * ci * cj;
          }
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double lo = result.p[j];
        const double hi = alpha[j] - result.p[j];
        cell(j, j) += 1.0 / (lo * lo) + 1.0 / (hi * hi);
        gphi[j] = -t * g_f[j] - 1.0 / lo + 1.0 / hi;
        cell(j, n) = u[j];
        cell(n, j) = u[j];
      }

      std::fill(rhs.begin(), rhs.end(), 0.0);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -gphi[j];
      solve_dense_inplace(kkt, rhs, sol);
      for (std::size_t j = 0; j < n; ++j) delta[j] = sol[j];

      double decrement2 = 0.0;
      for (std::size_t j = 0; j < n; ++j) decrement2 -= gphi[j] * delta[j];
      if (decrement2 / 2.0 < options.newton_tol) break;

      // Backtracking: stay strictly interior, then Armijo.
      double step = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (delta[j] > 0.0)
          step = std::min(step, 0.99 * (alpha[j] - result.p[j]) / delta[j]);
        else if (delta[j] < 0.0)
          step = std::min(step, 0.99 * result.p[j] / -delta[j]);
      }
      const double phi0 = phi(result.p, t);
      int back = 0;
      for (; back < 60; ++back) {
        for (std::size_t j = 0; j < n; ++j)
          candidate[j] = result.p[j] + step * delta[j];
        if (phi(candidate, t) <= phi0 - 1e-4 * step * decrement2) break;
        step *= 0.5;
      }
      if (back == 60) break;  // no progress: centered enough
      result.p = candidate;
    }
    t *= options.t_growth;
  }
  result.gap_bound = m / (t / options.t_growth);
  result.value = f.value(result.p, eval);
  return result;
}

}  // namespace netmon::opt
