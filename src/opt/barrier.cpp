#include "opt/barrier.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::opt {

namespace {

// Dense linear solve (Gaussian elimination, partial pivoting). The KKT
// systems here are (n+1)x(n+1) with n = candidate links, i.e. tiny.
std::vector<double> solve_dense(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    NETMON_REQUIRE(std::abs(a[pivot][col]) > 1e-300,
                   "singular KKT system in barrier solver");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    // Eliminate.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t c = i + 1; c < n; ++c) sum -= a[i][c] * x[c];
    x[i] = sum / a[i][i];
  }
  return x;
}

}  // namespace

BarrierResult maximize_barrier(const SeparableConcaveObjective& f,
                               const BoxBudgetConstraints& constraints,
                               const BarrierOptions& options) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(f.dimension() == n, "dimension mismatch");
  const std::vector<double>& u = constraints.loads();
  const std::vector<double>& alpha = constraints.upper();

  double max_budget = 0.0;
  for (std::size_t j = 0; j < n; ++j) max_budget += u[j] * alpha[j];
  const double scale = constraints.theta() / max_budget;
  NETMON_REQUIRE(scale < 1.0 - 1e-9,
                 "barrier method needs a strictly interior point "
                 "(theta < sum(u*alpha))");

  BarrierResult result;
  result.p.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) result.p[j] = scale * alpha[j];

  // phi_t(p) = -t f(p) - sum_j [ln p_j + ln(alpha_j - p_j)].
  auto phi = [&](const std::vector<double>& p, double t) {
    double barrier = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (p[j] <= 0.0 || p[j] >= alpha[j])
        return std::numeric_limits<double>::infinity();
      barrier -= std::log(p[j]) + std::log(alpha[j] - p[j]);
    }
    return -t * f.value(p) + barrier;
  };

  std::vector<double> g_f(n), gphi(n), delta(n);
  double t = options.t0;
  const double m = 2.0 * static_cast<double>(n);  // barrier constraints

  while (m / t > options.gap) {
    ++result.outer_iterations;

    for (int newton = 0; newton < options.max_newton; ++newton) {
      ++result.newton_iterations;
      f.gradient(result.p, g_f);
      const std::vector<double> x = f.inner(result.p);

      // Hessian of phi: -t H_f + barrier diagonal.
      std::vector<std::vector<double>> kkt(
          n + 1, std::vector<double>(n + 1, 0.0));
      const auto& rows = f.rows();
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const double s2 = f.utility(k).second(x[k]);
        for (const auto& [i, ci] : rows[k]) {
          for (const auto& [j, cj] : rows[k]) {
            kkt[i][j] += -t * s2 * ci * cj;
          }
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double lo = result.p[j];
        const double hi = alpha[j] - result.p[j];
        kkt[j][j] += 1.0 / (lo * lo) + 1.0 / (hi * hi);
        gphi[j] = -t * g_f[j] - 1.0 / lo + 1.0 / hi;
        kkt[j][n] = u[j];
        kkt[n][j] = u[j];
      }

      std::vector<double> rhs(n + 1, 0.0);
      for (std::size_t j = 0; j < n; ++j) rhs[j] = -gphi[j];
      const std::vector<double> sol = solve_dense(std::move(kkt), rhs);
      for (std::size_t j = 0; j < n; ++j) delta[j] = sol[j];

      double decrement2 = 0.0;
      for (std::size_t j = 0; j < n; ++j) decrement2 -= gphi[j] * delta[j];
      if (decrement2 / 2.0 < options.newton_tol) break;

      // Backtracking: stay strictly interior, then Armijo.
      double step = 1.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (delta[j] > 0.0)
          step = std::min(step, 0.99 * (alpha[j] - result.p[j]) / delta[j]);
        else if (delta[j] < 0.0)
          step = std::min(step, 0.99 * result.p[j] / -delta[j]);
      }
      const double phi0 = phi(result.p, t);
      std::vector<double> candidate(n);
      int back = 0;
      for (; back < 60; ++back) {
        for (std::size_t j = 0; j < n; ++j)
          candidate[j] = result.p[j] + step * delta[j];
        if (phi(candidate, t) <= phi0 - 1e-4 * step * decrement2) break;
        step *= 0.5;
      }
      if (back == 60) break;  // no progress: centered enough
      result.p = candidate;
    }
    t *= options.t_growth;
  }
  result.gap_bound = m / (t / options.t_growth);
  result.value = f.value(result.p);
  return result;
}

}  // namespace netmon::opt
