#include "opt/kkt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon::opt {

KktReport compute_kkt(std::span<const double> g, std::span<const double> u,
                      const std::vector<BoundState>& bounds, double tol) {
  KktReport report;
  compute_kkt(g, u, bounds, tol, report);
  return report;
}

void compute_kkt(std::span<const double> g, std::span<const double> u,
                 const std::vector<BoundState>& bounds, double tol,
                 KktReport& report) {
  const std::size_t n = g.size();
  NETMON_REQUIRE(u.size() == n && bounds.size() == n,
                 "KKT input dimension mismatch");
  report.lambda = 0.0;
  report.worst = 0.0;
  report.violating.clear();
  report.nu.assign(n, 0.0);
  report.mu.assign(n, 0.0);

  // lambda: least-squares over the free subspace (g_j = lambda u_j).
  double gu = 0.0, uu = 0.0;
  bool any_free = false;
  for (std::size_t j = 0; j < n; ++j) {
    if (bounds[j] == BoundState::kFree) {
      gu += g[j] * u[j];
      uu += u[j] * u[j];
      any_free = true;
    }
  }
  if (any_free && uu > 0.0) {
    report.lambda = gu / uu;
  } else {
    // No free coordinate: lambda must satisfy
    //   lambda >= g_j/u_j for every lower-active j, and
    //   lambda <= g_j/u_j for every upper-active j.
    // Use the midpoint of the implied interval; when the interval is
    // empty the extreme constraints end up with negative multipliers and
    // get released.
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      const double ratio = g[j] / u[j];
      if (bounds[j] == BoundState::kAtLower) lo = std::max(lo, ratio);
      else hi = std::min(hi, ratio);
    }
    if (std::isinf(lo) && std::isinf(hi)) report.lambda = 0.0;
    else if (std::isinf(lo)) report.lambda = hi;
    else if (std::isinf(hi)) report.lambda = lo;
    else report.lambda = 0.5 * (lo + hi);
  }

  report.satisfied = true;
  for (std::size_t j = 0; j < n; ++j) {
    double m = 0.0;
    if (bounds[j] == BoundState::kAtLower) {
      m = report.lambda * u[j] - g[j];
      report.nu[j] = m;
    } else if (bounds[j] == BoundState::kAtUpper) {
      m = g[j] - report.lambda * u[j];
      report.mu[j] = m;
    } else {
      continue;
    }
    report.worst = std::min(report.worst, m);
    const double scale = std::max(1.0, std::abs(report.lambda) * u[j]);
    if (m < -tol * scale) {
      report.satisfied = false;
      report.violating.push_back(j);
    }
  }
}

}  // namespace netmon::opt
