// A-posteriori optimality certificate for approximate solutions.
//
// For a concave objective f over the convex feasible set C (box bounds
// plus one budget equality), any feasible p_hat admits the Frank-Wolfe
// bound
//   f* <= f(p_hat) + max_{q in C} grad f(p_hat) . (q - p_hat)
// because the first-order expansion overestimates a concave function
// everywhere. The inner maximization is a continuous knapsack — maximize
// a linear functional over { sum u_j q_j = theta, 0 <= q_j <= alpha_j }
// — solved exactly by the ratio-greedy fill (sort by g_j / u_j
// descending, fill each q_j to alpha_j until the budget is spent, split
// the marginal item). One gradient evaluation therefore certifies an
// optimality gap for ANY feasible point, independently of how it was
// produced; the partitioned approximation tier (core/approx) reports
// this bound next to its solution.
#pragma once

#include <span>

#include "opt/constraints.hpp"
#include "opt/objective.hpp"

namespace netmon::opt {

/// A certified bound on the distance to the optimum.
struct GapCertificate {
  /// f(p_hat) at the certified point.
  double value = 0.0;
  /// Certified bound: f* <= upper_bound.
  double upper_bound = 0.0;
  /// upper_bound - value (the Frank-Wolfe gap), clamped at zero.
  double gap = 0.0;
  /// gap / max(|value|, eps) — the figure the acceptance gates compare
  /// against (e.g. "certified within 1% of optimal").
  double relative_gap = 0.0;
};

/// Computes the certificate at feasible point `p`. One objective value,
/// one gradient, and one O(n log n) knapsack fill.
GapCertificate certified_gap(const Objective& f,
                             const BoxBudgetConstraints& constraints,
                             std::span<const double> p);

}  // namespace netmon::opt
