#include "opt/certificate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace netmon::opt {

GapCertificate certified_gap(const Objective& f,
                             const BoxBudgetConstraints& constraints,
                             std::span<const double> p) {
  const std::size_t n = constraints.dimension();
  NETMON_REQUIRE(p.size() == n, "certificate point dimension mismatch");
  NETMON_REQUIRE(constraints.feasible(p, 1e-6),
                 "certificate point must be feasible");

  GapCertificate cert;
  cert.value = f.value(p);
  std::vector<double> g(n);
  f.gradient(p, g);

  const std::vector<double>& u = constraints.loads();
  const std::vector<double>& alpha = constraints.upper();

  // max g.q over the knapsack: fill best ratio first. The budget is an
  // equality with theta <= sum u_j alpha_j, so the fill always lands
  // exactly on theta (possibly spending on low-ratio items last).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = g[a] / u[a];
    const double rb = g[b] / u[b];
    if (ra != rb) return ra > rb;
    return a < b;  // deterministic on ties
  });

  double remaining = constraints.theta();
  double best_linear = 0.0;
  for (std::size_t j : order) {
    if (remaining <= 0.0) break;
    const double take = std::min(alpha[j], remaining / u[j]);
    best_linear += g[j] * take;
    remaining -= u[j] * take;
  }

  double g_dot_p = 0.0;
  for (std::size_t j = 0; j < n; ++j) g_dot_p += g[j] * p[j];

  cert.gap = std::max(0.0, best_linear - g_dot_p);
  cert.upper_bound = cert.value + cert.gap;
  cert.relative_gap =
      cert.gap / std::max(std::abs(cert.value),
                          std::numeric_limits<double>::min());
  return cert;
}

}  // namespace netmon::opt
