#include "opt/line_search.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::opt {

GenericPhi::GenericPhi(const Objective& f, std::span<const double> p,
                       std::span<const double> d, linalg::EvalWorkspace& ws)
    : f_(f), p_(p), d_(d), ws_(ws) {
  NETMON_REQUIRE(p.size() == d.size(), "dimension mismatch");
}

Phi::Derivs GenericPhi::derivs(double t) {
  const std::span<double> point = ws_.cols_a(p_.size());
  const std::span<double> grad = ws_.cols_b(p_.size());
  for (std::size_t j = 0; j < p_.size(); ++j) point[j] = p_[j] + t * d_[j];
  f_.gradient(point, grad, ws_);
  double first = 0.0;
  for (std::size_t j = 0; j < d_.size(); ++j) first += grad[j] * d_[j];
  const double second = f_.directional_second(point, d_, ws_);
  return {first, second};
}

double GenericPhi::second_at_zero() {
  // Form the t = 0 trial point exactly as derivs() would (p + 0*d), so
  // the curvature matches the historical evaluation bit for bit.
  const std::span<double> point = ws_.cols_a(p_.size());
  for (std::size_t j = 0; j < p_.size(); ++j) point[j] = p_[j] + 0.0 * d_[j];
  return f_.directional_second(point, d_, ws_);
}

LineSearchResult maximize_phi(Phi& phi, double t_max,
                              const LineSearchOptions& options,
                              double derivative_at_zero) {
  NETMON_REQUIRE(t_max > 0.0, "line search needs t_max > 0");
  LineSearchResult result;

  if (derivative_at_zero <= 0.0) {
    // Not an ascent direction. Near convergence the projected gradient is
    // pure cancellation noise and its inner product with the gradient can
    // round below zero; report "no progress" and let the caller run the
    // KKT certificate instead of failing.
    return result;
  }

  const Phi::Derivs at_max = phi.derivs(t_max);
  if (at_max.first >= 0.0) {
    // Still ascending at the boundary: the constraint blocks us.
    result.t = t_max;
    result.hit_boundary = true;
    return result;
  }

  // Bracket [lo, hi] with phi'(lo) > 0 > phi'(hi).
  double lo = 0.0, hi = t_max;
  double t = t_max;
  if (options.newton) {
    const double second0 = phi.second_at_zero();
    t = second0 < 0.0 ? std::min(t_max, -derivative_at_zero / second0)
                      : 0.5 * t_max;
  } else {
    t = 0.5 * t_max;
  }

  const double target = options.tol * derivative_at_zero;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iters = iter + 1;
    const Phi::Derivs at = phi.derivs(t);
    if (std::abs(at.first) <= target) break;
    if (at.first > 0.0) lo = t;
    else hi = t;
    double next;
    if (options.newton && at.second < 0.0) {
      next = t - at.first / at.second;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // safeguard
    } else {
      next = 0.5 * (lo + hi);
    }
    if (hi - lo <= 1e-16 * std::max(1.0, t_max)) {
      t = 0.5 * (lo + hi);
      break;
    }
    t = next;
  }
  result.t = t;
  result.hit_boundary = false;
  return result;
}

LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options) {
  linalg::EvalWorkspace ws;
  return maximize_along(f, p, d, t_max, options, ws);
}

LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options,
                                linalg::EvalWorkspace& ws) {
  NETMON_REQUIRE(t_max > 0.0, "line search needs t_max > 0");
  GenericPhi phi(f, p, d, ws);
  // Without a caller-provided phi'(0), compute it with one gradient
  // evaluation at the t = 0 trial point (the historical evaluation).
  const std::span<double> point = ws.cols_a(p.size());
  const std::span<double> grad = ws.cols_b(p.size());
  for (std::size_t j = 0; j < p.size(); ++j) point[j] = p[j] + 0.0 * d[j];
  f.gradient(point, grad, ws);
  double first = 0.0;
  for (std::size_t j = 0; j < d.size(); ++j) first += grad[j] * d[j];
  return maximize_phi(phi, t_max, options, first);
}

}  // namespace netmon::opt
