#include "opt/line_search.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::opt {

namespace {

// phi'(t) and phi''(t) evaluated in one pass.
struct Derivs {
  double first;
  double second;
};

Derivs derivs_at(const Objective& f, std::span<const double> p,
                 std::span<const double> d, double t, std::span<double> point,
                 std::span<double> grad, linalg::EvalWorkspace& ws) {
  for (std::size_t j = 0; j < p.size(); ++j) point[j] = p[j] + t * d[j];
  f.gradient(point, grad, ws);
  double first = 0.0;
  for (std::size_t j = 0; j < d.size(); ++j) first += grad[j] * d[j];
  const double second = f.directional_second(point, d, ws);
  return {first, second};
}

}  // namespace

LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options) {
  linalg::EvalWorkspace ws;
  return maximize_along(f, p, d, t_max, options, ws);
}

LineSearchResult maximize_along(const Objective& f, std::span<const double> p,
                                std::span<const double> d, double t_max,
                                const LineSearchOptions& options,
                                linalg::EvalWorkspace& ws) {
  NETMON_REQUIRE(t_max > 0.0, "line search needs t_max > 0");
  NETMON_REQUIRE(p.size() == d.size(), "dimension mismatch");
  LineSearchResult result;
  const std::span<double> point = ws.cols_a(p.size());
  const std::span<double> grad = ws.cols_b(p.size());

  const Derivs at0 = derivs_at(f, p, d, 0.0, point, grad, ws);
  if (at0.first <= 0.0) {
    // Not an ascent direction. Near convergence the projected gradient is
    // pure cancellation noise and its inner product with the gradient can
    // round below zero; report "no progress" and let the caller run the
    // KKT certificate instead of failing.
    return result;
  }

  const Derivs at_max = derivs_at(f, p, d, t_max, point, grad, ws);
  if (at_max.first >= 0.0) {
    // Still ascending at the boundary: the constraint blocks us.
    result.t = t_max;
    result.hit_boundary = true;
    return result;
  }

  // Bracket [lo, hi] with phi'(lo) > 0 > phi'(hi).
  double lo = 0.0, hi = t_max;
  double t = t_max;
  if (options.newton && at0.second < 0.0) {
    t = std::min(t_max, -at0.first / at0.second);  // first Newton step from 0
  } else {
    t = 0.5 * t_max;
  }

  const double target = options.tol * at0.first;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    result.iters = iter + 1;
    const Derivs at = derivs_at(f, p, d, t, point, grad, ws);
    if (std::abs(at.first) <= target) break;
    if (at.first > 0.0) lo = t;
    else hi = t;
    double next;
    if (options.newton && at.second < 0.0) {
      next = t - at.first / at.second;
      if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // safeguard
    } else {
      next = 0.5 * (lo + hi);
    }
    if (hi - lo <= 1e-16 * std::max(1.0, t_max)) {
      t = 0.5 * (lo + hi);
      break;
    }
    t = next;
  }
  result.t = t;
  result.hit_boundary = false;
  return result;
}

}  // namespace netmon::opt
