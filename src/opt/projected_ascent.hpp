// Reference solver: projected gradient ascent with backtracking.
//
// Much slower than the gradient-projection/active-set method but
// extremely simple, and provably convergent to the global maximum of a
// concave objective over a convex set. Used by tests to cross-validate
// the main solver, and by the ablation bench as a baseline algorithm.
#pragma once

#include <vector>

#include "opt/constraints.hpp"
#include "opt/objective.hpp"

namespace netmon::opt {

/// Reference-solver knobs.
struct ProjectedAscentOptions {
  int max_iterations = 50000;
  /// Initial step size (adapted by backtracking).
  double step = 1.0;
  /// Stop when the iterate moves less than this (infinity norm) and the
  /// value improves less than `value_tol`.
  double move_tol = 1e-12;
  double value_tol = 1e-14;
};

/// Result of the reference solver.
struct ProjectedAscentResult {
  std::vector<double> p;
  double value = 0.0;
  int iterations = 0;
};

/// Maximizes `f` over `constraints` by projected gradient ascent.
ProjectedAscentResult maximize_reference(
    const Objective& f, const BoxBudgetConstraints& constraints,
    const ProjectedAscentOptions& options = {});

}  // namespace netmon::opt
