// Umbrella header for the netmon library.
//
// netmon reproduces "Reformulating the Monitor Placement Problem: Optimal
// Network-Wide Sampling" (Cantieni, Iannaccone, Barakat, Diot, Thiran —
// CoNEXT 2006): given a network where every link can host a router-
// embedded monitor, decide which monitors to activate and at which
// sampling rate, maximizing the utility of a measurement task under a
// network-wide resource budget.
//
// Typical use:
//   auto scenario = netmon::core::make_geant_scenario();
//   auto problem  = netmon::core::make_problem(scenario, {.theta = 1e5});
//   auto solution = netmon::core::solve_placement(problem);
#pragma once

#include "bgp/rib.hpp"           // IWYU pragma: export
#include "control/control.hpp"   // IWYU pragma: export
#include "core/approx.hpp"       // IWYU pragma: export
#include "core/batch_solver.hpp" // IWYU pragma: export
#include "core/config_gen.hpp"   // IWYU pragma: export
#include "core/controller.hpp"   // IWYU pragma: export
#include "core/exact_rate.hpp"   // IWYU pragma: export
#include "core/maximin.hpp"      // IWYU pragma: export
#include "core/problem.hpp"      // IWYU pragma: export
#include "core/reoptimize.hpp"   // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/scale_scenario.hpp"      // IWYU pragma: export
#include "core/scenario.hpp"     // IWYU pragma: export
#include "core/sensitivity.hpp"  // IWYU pragma: export
#include "core/solver.hpp"       // IWYU pragma: export
#include "core/strategies.hpp"   // IWYU pragma: export
#include "core/task.hpp"         // IWYU pragma: export
#include "core/two_phase.hpp"    // IWYU pragma: export
#include "core/utility.hpp"      // IWYU pragma: export
#include "estimate/accuracy.hpp" // IWYU pragma: export
#include "estimate/flow_inversion.hpp"  // IWYU pragma: export
#include "estimate/heavy_hitters.hpp"   // IWYU pragma: export
#include "estimate/tomogravity.hpp"     // IWYU pragma: export
#include "ingest/ingest.hpp"     // IWYU pragma: export
#include "isis/lsdb.hpp"         // IWYU pragma: export
#include "linalg/sparse.hpp"     // IWYU pragma: export
#include "linalg/workspace.hpp"  // IWYU pragma: export
#include "netflow/adaptive.hpp"  // IWYU pragma: export
#include "netflow/pipeline.hpp"  // IWYU pragma: export
#include "netflow/sample_and_hold.hpp"  // IWYU pragma: export
#include "netflow/v5_codec.hpp"  // IWYU pragma: export
#include "obs/obs.hpp"           // IWYU pragma: export
#include "opt/barrier.hpp"       // IWYU pragma: export
#include "opt/gradient_projection.hpp"  // IWYU pragma: export
#include "opt/projected_ascent.hpp"     // IWYU pragma: export
#include "routing/routing_matrix.hpp"   // IWYU pragma: export
#include "runtime/runtime.hpp"   // IWYU pragma: export
#include "sampling/simulation.hpp"      // IWYU pragma: export
#include "serve/serve.hpp"       // IWYU pragma: export
#include "tenant/tenant.hpp"   // IWYU pragma: export
#include "sampling/trajectory.hpp"      // IWYU pragma: export
#include "telemetry/snmp.hpp"    // IWYU pragma: export
#include "topo/abilene.hpp"      // IWYU pragma: export
#include "topo/geant.hpp"        // IWYU pragma: export
#include "topo/hierarchical.hpp" // IWYU pragma: export
#include "topo/io.hpp"           // IWYU pragma: export
#include "traffic/fanout.hpp"    // IWYU pragma: export
#include "traffic/flow_generator.hpp"   // IWYU pragma: export
#include "traffic/gravity.hpp"   // IWYU pragma: export
#include "traffic/variation.hpp" // IWYU pragma: export
