// Dedicated-mapping allocator for hot kernel buffers.
//
// The batched utility kernels stream several term-sized arrays per pass
// (SoA coefficients, inner products, M / M' / M''). Where those arrays
// land matters more than how the kernel is written: on the reference
// hardware a 4096-term fused pass runs ~2.6x slower when its buffers
// come from the recycled general-purpose heap than when each buffer has
// its own fresh private mapping (measured 2.0 vs 0.75 ns/term for the
// AVX-512 kernel; the scalar path, bound by the divide unit rather than
// the memory system, is insensitive). PageAllocator therefore backs any
// allocation of at least kPageAllocThresholdBytes with its own
// mmap(MAP_PRIVATE | MAP_ANONYMOUS) region (advised MADV_HUGEPAGE where
// available); smaller allocations — which stay L1-resident anyway — use
// plain operator new so tiny problems don't burn whole pages.
//
// The split is decided by the request size alone, so allocate and
// deallocate agree without per-pointer bookkeeping. The allocator is
// stateless: all instances are interchangeable.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define NETMON_PAGE_ALLOC_HAVE_MMAP 1
#endif

namespace netmon::util {

inline constexpr std::size_t kPageAllocThresholdBytes = 16 * 1024;

template <class T>
class PageAllocator {
 public:
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  PageAllocator() noexcept = default;
  template <class U>
  PageAllocator(const PageAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
#ifdef NETMON_PAGE_ALLOC_HAVE_MMAP
    if (bytes >= kPageAllocThresholdBytes) {
      void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p == MAP_FAILED) throw std::bad_alloc{};
#ifdef MADV_HUGEPAGE
      ::madvise(p, bytes, MADV_HUGEPAGE);
#endif
      return static_cast<T*>(p);
    }
#endif
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
#ifdef NETMON_PAGE_ALLOC_HAVE_MMAP
    if (bytes >= kPageAllocThresholdBytes) {
      ::munmap(p, bytes);
      return;
    }
#endif
    ::operator delete(p);
  }

  friend bool operator==(const PageAllocator&, const PageAllocator&) {
    return true;
  }
};

/// std::vector whose backing store comes from PageAllocator. Drop-in for
/// the term-sized arrays the batch kernels stream over.
template <class T>
using PageVector = std::vector<T, PageAllocator<T>>;

}  // namespace netmon::util
