// Minimal streaming JSON writer.
//
// Used to export placements and experiment results in a machine-readable
// form (core/report.hpp, the CLI example). Write-only by design: the
// library has no need to parse JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace netmon {

/// Streaming writer with nesting checks. Throws netmon::Error on misuse
/// (value without key inside an object, unbalanced scopes, ...).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() = default;

  /// Opens / closes scopes.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value (only inside an object).
  JsonWriter& key(std::string_view name);

  /// Scalar values. Non-finite doubles (NaN, +-Inf) have no JSON
  /// representation and are serialized as null.
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Whether every scope has been closed.
  bool complete() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void before_value();
  void write_escaped(std::string_view text);

  std::ostream& out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
  bool wrote_root_ = false;
};

}  // namespace netmon
