// Plain-text table rendering for bench harnesses: the reproduction
// binaries print paper-style tables (e.g. Table I) to stdout.
#pragma once

#include <string>
#include <vector>

namespace netmon {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Minimal monospace table builder.
///
/// Usage:
///   TextTable t({"OD pair", "pkt/s", "accuracy"});
///   t.add_row({"JANET-NL", "31250.0", "0.97"});
///   std::cout << t.render();
class TextTable {
 public:
  /// Creates a table with the given header labels.
  explicit TextTable(std::vector<std::string> header);

  /// Appends one body row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Sets the alignment of one column (default: left for column 0,
  /// right for the rest).
  void set_align(std::size_t column, Align align);

  /// Number of body rows added so far (separators excluded).
  std::size_t row_count() const noexcept { return n_rows_; }

  /// Renders the table, including header and border rules.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
  std::vector<Align> align_;
  std::size_t n_rows_ = 0;
};

/// Formats a double with the given number of decimals (fixed notation).
std::string fmt_fixed(double value, int decimals);

/// Formats a double in scientific-ish compact form, e.g. "3.1e-04".
std::string fmt_sci(double value, int decimals = 2);

/// Formats a fraction as a percentage string, e.g. 0.245 -> "24.5%".
std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace netmon
