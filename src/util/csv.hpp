// CSV emission for bench series (figure data) so results can be re-plotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace netmon {

/// Streams rows of comma-separated values with minimal quoting.
///
/// Cells containing commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Writes one row of numeric cells with full double precision.
  void row(const std::vector<double>& cells);

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
};

}  // namespace netmon
