// Streaming and batch descriptive statistics used by benches and the
// Monte-Carlo accuracy experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace netmon {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added.
  std::size_t count() const noexcept { return n_; }
  /// Sample mean; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;
  /// Square root of variance().
  double stddev() const noexcept;
  /// Smallest observation; +inf when empty.
  double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  double max() const noexcept { return max_; }
  /// Sum of all observations.
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  bool seen_ = false;
};

/// Linear-interpolation quantile of a sample, q in [0,1].
/// The input vector is copied; throws netmon::Error when empty.
double quantile(std::vector<double> values, double q);

/// Arithmetic mean of a sample; throws netmon::Error when empty.
double mean_of(const std::vector<double>& values);

}  // namespace netmon
