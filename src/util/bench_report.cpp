#include "util/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"

namespace netmon {

BenchReport::BenchReport(std::string bench, unsigned threads)
    : bench_(std::move(bench)), threads_(threads) {}

BenchReport& BenchReport::result(std::string name) {
  rows_.push_back(Row{std::move(name), {}});
  return *this;
}

BenchReport& BenchReport::metric(std::string key, double value) {
  NETMON_REQUIRE(!rows_.empty(), "metric() before result()");
  rows_.back().metrics.emplace_back(std::move(key), value);
  return *this;
}

void BenchReport::write(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_object();
  json.key("bench").value(bench_);
  json.key("threads").value(static_cast<std::uint64_t>(threads_));
  json.key("results").begin_array();
  for (const Row& row : rows_) {
    json.begin_object();
    json.key("name").value(row.name);
    for (const auto& [key, value] : row.metrics) json.key(key).value(value);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void BenchReport::emit() const {
  std::ostringstream line;
  write(line);
  std::cout << "\n--- bench json ---\n" << line.str()
            << "\n--- end bench json ---\n";
  if (const char* path = std::getenv("NETMON_BENCH_JSON");
      path != nullptr && *path != '\0') {
    std::ofstream file(path, std::ios::app);
    if (file) file << line.str() << '\n';
  }
}

}  // namespace netmon
