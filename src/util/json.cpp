#include "util/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace netmon {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    NETMON_REQUIRE(!wrote_root_, "JSON document already complete");
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Scope::kObject) {
    NETMON_REQUIRE(key_pending_, "object member requires a key");
    key_pending_ = false;
    return;
  }
  // Array element.
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  NETMON_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                 "end_object without matching begin_object");
  NETMON_REQUIRE(!key_pending_, "dangling key at end_object");
  out_ << '}';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  NETMON_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray,
                 "end_array without matching begin_array");
  out_ << ']';
  stack_.pop_back();
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  NETMON_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                 "key outside of an object");
  NETMON_REQUIRE(!key_pending_, "two keys in a row");
  if (!first_in_scope_.back()) out_ << ',';
  first_in_scope_.back() = false;
  write_escaped(name);
  out_ << ':';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  // JSON has no NaN/Infinity literals; "%.17g" would emit "nan"/"inf"
  // and corrupt the document. Serialize non-finite doubles as null.
  if (!std::isfinite(number)) {
    out_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(int number) {
  return value(static_cast<std::int64_t>(number));
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace netmon
