#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace netmon {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NETMON_REQUIRE(!header_.empty(), "table needs at least one column");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> row) {
  NETMON_REQUIRE(row.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(row));
  ++n_rows_;
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::set_align(std::size_t column, Align align) {
  NETMON_REQUIRE(column < align_.size(), "column index out of range");
  align_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      if (align_[c] == Align::kLeft)
        s += " " + cells[c] + std::string(pad, ' ') + " |";
      else
        s += " " + std::string(pad, ' ') + cells[c] + " |";
    }
    return s + "\n";
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    out += row.empty() ? rule() : line(row);
  }
  out += rule();
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_sci(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", decimals, value);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace netmon
