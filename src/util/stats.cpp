#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace netmon {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (!seen_) {
    min_ = max_ = x;
    seen_ = true;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> values, double q) {
  NETMON_REQUIRE(!values.empty(), "quantile of empty sample");
  NETMON_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order out of [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  NETMON_REQUIRE(!values.empty(), "mean of empty sample");
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace netmon
