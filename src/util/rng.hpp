// Deterministic, fast pseudo-random generation for simulations.
//
// netmon simulations must be reproducible across runs and platforms, so we
// ship our own engine (xoshiro256**, seeded via splitmix64) instead of
// relying on std::default_random_engine whose definition is
// implementation-specific. The engine satisfies UniformRandomBitGenerator
// and therefore composes with <random> distributions.
#pragma once

#include <cstdint>
#include <limits>
#include <random>

namespace netmon {

/// splitmix64 — used to expand a single 64-bit seed into engine state.
/// Public because tests and seed-derivation logic reuse it.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — all-purpose 64-bit engine (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator; usable with std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Binomial(n, p) draw; delegates to the standard distribution which is
  /// exact and O(1) amortized for large n on common implementations.
  std::uint64_t binomial(std::uint64_t n, double p) {
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    std::binomial_distribution<std::uint64_t> dist(n, p);
    return dist(*this);
  }

  /// Derive an independent child generator (stream splitting): hashes the
  /// current state with the given stream id so parallel simulation lanes
  /// never share a sequence.
  Rng split(std::uint64_t stream) noexcept {
    std::uint64_t s = state_[0] ^ (stream * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(s));
  }

  /// Derives the `shard`-th deterministic substream: a pure function of
  /// the full current state and the shard index that does not advance
  /// this generator. Shard k receives the same stream no matter how many
  /// shards exist, in which order they are derived, or on which thread —
  /// the reproducibility anchor for parallel fan-out (runtime/). Unlike
  /// split(), all 256 bits of state enter the derivation.
  Rng substream(std::uint64_t shard) const noexcept {
    std::uint64_t s = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                      rotl(state_[3], 43);
    s ^= (shard + 1) * 0xd1342543de82ef95ULL;
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace netmon
