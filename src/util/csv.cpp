#include "util/csv.hpp"

#include <cstdio>

namespace netmon {

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& cells) {
  char buf[64];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.17g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quote = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace netmon
