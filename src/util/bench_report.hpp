// Machine-readable bench results: every paper bench emits a JSON block
// (via util/json) alongside its human-readable tables, so the perf
// trajectory — wall times, thread counts, convergence stats — can be
// tracked across PRs by scraping stdout or the file named in
// NETMON_BENCH_JSON.
#pragma once

#include <chrono>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace netmon {

/// Wall-clock stopwatch for bench timing.
class StopWatch {
 public:
  StopWatch() : start_(std::chrono::steady_clock::now()) {}

  /// Milliseconds since construction or the last restart().
  double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects named results with numeric metrics and renders them as one
/// JSON object: {"bench": ..., "threads": ..., "results": [{"name": ...,
/// metric: value, ...}, ...]}.
class BenchReport {
 public:
  /// `bench` names the binary (e.g. "sec4d_convergence"); `threads` is
  /// the thread-count knob the run used (recorded on every report so
  /// perf numbers are comparable).
  BenchReport(std::string bench, unsigned threads);

  /// Starts a result row; metrics attach to the most recent row.
  BenchReport& result(std::string name);
  BenchReport& metric(std::string key, double value);

  /// Renders the report as a single-line JSON object.
  void write(std::ostream& out) const;

  /// Writes the JSON to stdout between "--- bench json ---" markers and,
  /// when the NETMON_BENCH_JSON environment variable names a file,
  /// appends one line to that file.
  void emit() const;

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string bench_;
  unsigned threads_;
  std::vector<Row> rows_;
};

}  // namespace netmon
