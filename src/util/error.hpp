// Error handling primitives shared across the netmon library.
//
// The library signals precondition violations and unrecoverable input
// errors with netmon::Error (derived from std::runtime_error) so callers
// can distinguish library failures from standard-library ones.
#pragma once

#include <stdexcept>
#include <string>

namespace netmon {

/// Exception type thrown by all netmon components on invalid input or
/// violated preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) +
              ": requirement failed (" + expr + ")" +
              (msg.empty() ? "" : ": " + msg));
}
}  // namespace detail

}  // namespace netmon

/// Precondition check that throws netmon::Error with source location.
/// Active in all build types: these guard API misuse, not internal bugs.
#define NETMON_REQUIRE(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) ::netmon::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
