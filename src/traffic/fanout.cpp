#include "traffic/fanout.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::traffic {

namespace {

/// Index of the first cumulative weight exceeding `r` — the standard
/// inverse-CDF draw over a discrete mass distribution.
std::size_t draw(const std::vector<double>& cumulative, double r) {
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), r);
  const std::size_t i = static_cast<std::size_t>(it - cumulative.begin());
  return std::min(i, cumulative.size() - 1);
}

}  // namespace

TrafficMatrix gravity_fanout(const topo::HierarchicalNetwork& net,
                             const FanoutOptions& options) {
  NETMON_REQUIRE(options.od_count >= 1, "fanout needs at least one OD");
  NETMON_REQUIRE(options.max_sources >= 1, "fanout needs a source");
  NETMON_REQUIRE(options.total_pkt_per_sec > 0.0,
                 "fanout rate must be positive");
  const std::vector<topo::NodeId>& edges = net.edges;
  NETMON_REQUIRE(edges.size() >= 2, "fanout needs at least two edge nodes");

  // Sources: the heaviest edge nodes (mass desc, id asc) up to the cap —
  // where a production deployment parks its collectors.
  std::vector<topo::NodeId> sources = edges;
  std::sort(sources.begin(), sources.end(),
            [&](topo::NodeId a, topo::NodeId b) {
              const double ma = net.graph.node(a).mass;
              const double mb = net.graph.node(b).mass;
              if (ma != mb) return ma > mb;
              return a < b;
            });
  if (sources.size() > options.max_sources)
    sources.resize(options.max_sources);

  // Cumulative mass tables for the inverse-CDF draws.
  auto cumulate = [&](const std::vector<topo::NodeId>& ids) {
    std::vector<double> cum(ids.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      acc += net.graph.node(ids[i]).mass;
      cum[i] = acc;
    }
    NETMON_REQUIRE(acc > 0.0, "fanout needs positive edge mass");
    return cum;
  };
  const std::vector<double> src_cum = cumulate(sources);
  const std::vector<double> dst_cum = cumulate(edges);

  const netmon::Rng base(options.seed);
  struct Draw {
    routing::OdPair od;
    double weight;
  };
  std::vector<Draw> draws;
  draws.reserve(options.od_count);
  for (std::size_t i = 0; i < options.od_count; ++i) {
    netmon::Rng rng = base.substream(i);
    const topo::NodeId src =
        sources[draw(src_cum, rng.uniform() * src_cum.back())];
    topo::NodeId dst = edges[draw(dst_cum, rng.uniform() * dst_cum.back())];
    if (dst == src) {
      // Redraw once, then fall back to the neighbor slot: keeps the draw
      // count per OD bounded and deterministic.
      dst = edges[draw(dst_cum, rng.uniform() * dst_cum.back())];
      if (dst == src) dst = edges[(draw(dst_cum, 0.0) + 1) % edges.size()];
    }
    const double w =
        net.graph.node(src).mass * net.graph.node(dst).mass;
    draws.push_back({{src, dst}, w});
  }

  // Merge duplicate pairs deterministically: sort by (src, dst), fold.
  std::sort(draws.begin(), draws.end(), [](const Draw& a, const Draw& b) {
    if (a.od.src != b.od.src) return a.od.src < b.od.src;
    return a.od.dst < b.od.dst;
  });
  TrafficMatrix tm;
  tm.reserve(draws.size());
  for (const Draw& d : draws) {
    if (!tm.empty() && tm.back().od == d.od) {
      tm.back().pkt_per_sec += d.weight;
    } else {
      tm.push_back({d.od, d.weight});
    }
  }

  // Normalize weights to the target aggregate, then apply the rate floor.
  double total = 0.0;
  for (const Demand& d : tm) total += d.pkt_per_sec;
  const double scale = options.total_pkt_per_sec / total;
  for (Demand& d : tm) {
    d.pkt_per_sec =
        std::max(d.pkt_per_sec * scale, options.min_pkt_per_sec);
  }
  return tm;
}

LinkLoads background_loads(const topo::Graph& graph, double utilization,
                           double mean_packet_bytes) {
  NETMON_REQUIRE(utilization >= 0.0 && utilization <= 1.0,
                 "utilization must be in [0, 1]");
  NETMON_REQUIRE(mean_packet_bytes > 0.0, "packet size must be positive");
  LinkLoads loads(graph.link_count(), 0.0);
  for (const topo::Link& link : graph.links()) {
    loads[link.id] =
        link.capacity_bps * utilization / (8.0 * mean_packet_bytes);
  }
  return loads;
}

}  // namespace netmon::traffic
