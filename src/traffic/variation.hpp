// Temporal traffic variation: diurnal cycles and transient anomalies.
//
// The paper's motivation (§I): demands vary on short time scales
// (failures, anomalies) and long ones (growth, new customers), so a
// static placement degrades. This module produces the traffic matrix "as
// of" a point in time from a base matrix, a diurnal pattern, and a set of
// anomaly spikes — driving the continuous-operation example and the
// re-optimization studies.
#pragma once

#include <vector>

#include "traffic/demand.hpp"

namespace netmon::traffic {

/// Smooth day-night modulation with a 24h period:
/// factor(t) = max(floor, 1 + amplitude * sin(2 pi (t - peak)/86400 + pi/2))
/// so the factor peaks at `peak_sec` within the day.
class DiurnalPattern {
 public:
  /// `amplitude` in [0,1): peak = 1+amplitude, trough = 1-amplitude.
  DiurnalPattern(double amplitude, double peak_sec);

  /// Multiplicative factor at absolute time t (seconds).
  double factor(double t_sec) const noexcept;

 private:
  double amplitude_;
  double peak_sec_;
};

/// A transient multiplicative anomaly on one OD pair.
struct AnomalySpike {
  routing::OdPair od;
  double start_sec = 0.0;
  double end_sec = 0.0;
  /// Demand multiplier while active (e.g. 50x for a DDoS-like event).
  double factor = 1.0;

  /// Whether the spike is active at time t.
  bool active_at(double t_sec) const noexcept {
    return t_sec >= start_sec && t_sec < end_sec;
  }
};

/// The traffic matrix at time t: base demands scaled by the diurnal
/// factor, with active anomaly spikes applied multiplicatively on top.
TrafficMatrix matrix_at(const TrafficMatrix& base,
                        const DiurnalPattern& pattern,
                        const std::vector<AnomalySpike>& spikes,
                        double t_sec);

}  // namespace netmon::traffic
