// Tier-keyed gravity OD fan-out for hierarchical instances.
//
// gravity_matrix() enumerates every ordered node pair — quadratic in the
// node count and unusable at 25k nodes. At scale the measurement task is
// a *fan-out*: a bounded set of heavy source PoPs (where collectors sit)
// talking to gravity-weighted destinations across the edge tier. Demand
// sizes follow mass(s)*mass(d), as in the gravity model, normalized to a
// target aggregate rate; sources are bounded so shortest-path routing
// stays one Dijkstra per source rather than per OD. Deterministic in the
// options (Rng::substream per OD draw).
//
// background_loads() complements the routed task demands with
// capacity-proportional transit load on every link — the cross traffic
// the paper takes from NetFlow — so candidate links are loaded (and
// sampling them costs budget) even where no task OD travels.
#pragma once

#include <cstdint>

#include "topo/hierarchical.hpp"
#include "traffic/demand.hpp"
#include "traffic/link_load.hpp"

namespace netmon::traffic {

/// Fan-out shape knobs.
struct FanoutOptions {
  /// OD pairs to draw (collisions merge, so the result may be smaller).
  std::size_t od_count = 20000;
  /// Bound on distinct source nodes (the heaviest edge nodes by mass):
  /// caps the Dijkstra count of single-path routing at scale.
  std::size_t max_sources = 64;
  /// Aggregate packet rate across all demands.
  double total_pkt_per_sec = 5.0e8;
  /// Per-demand rate floor (keeps expected packets per interval >= 2,
  /// the SreUtility domain requirement, at 300 s intervals).
  double min_pkt_per_sec = 0.05;
  std::uint64_t seed = 11;
};

/// Draws the fan-out over `net`'s edge tier. Demands are sorted by
/// (src, dst) with duplicates merged; rates sum to total_pkt_per_sec
/// before the min_pkt_per_sec floor is applied.
TrafficMatrix gravity_fanout(const topo::HierarchicalNetwork& net,
                             const FanoutOptions& options = {});

/// Synthetic transit load: every link carries `utilization` of its
/// capacity, converted to packets per second at `mean_packet_bytes`.
LinkLoads background_loads(const topo::Graph& graph, double utilization,
                           double mean_packet_bytes = 500.0);

}  // namespace netmon::traffic
