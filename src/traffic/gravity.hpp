// Gravity-model traffic matrix generation.
//
// The paper's optimizer consumes measured link loads; since the original
// GEANT NetFlow feed is not publicly available, we synthesize the
// network-wide cross traffic with the standard gravity model: demand(s,d)
// proportional to mass(s)*mass(d), scaled to a target total packet rate.
// This preserves the property the paper's evaluation hinges on — small
// PoPs' access links carry little cross traffic, making them cheap places
// to sample small OD pairs.
#pragma once

#include "topo/graph.hpp"
#include "traffic/demand.hpp"

namespace netmon::traffic {

/// Options for gravity-model generation.
struct GravityOptions {
  /// Total offered packet rate across all generated demands.
  double total_pkt_per_sec = 1.0e6;
  /// Nodes with mass below this threshold generate/attract no traffic
  /// (external attachment points have mass 0).
  double min_mass = 1e-12;
};

/// Generates demands for every ordered pair of distinct nodes with
/// positive mass. The sum of all demands equals options.total_pkt_per_sec.
TrafficMatrix gravity_matrix(const topo::Graph& graph,
                             const GravityOptions& options = {});

}  // namespace netmon::traffic
