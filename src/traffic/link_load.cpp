#include "traffic/link_load.hpp"

#include <map>

#include "util/error.hpp"

namespace netmon::traffic {

LinkLoads link_loads(const topo::Graph& graph, const TrafficMatrix& tm,
                     const routing::LinkSet& failed) {
  LinkLoads loads(graph.link_count(), 0.0);
  // One Dijkstra per distinct source.
  std::map<topo::NodeId, std::vector<const Demand*>> by_source;
  for (const Demand& d : tm) by_source[d.od.src].push_back(&d);
  for (const auto& [src, demands] : by_source) {
    const routing::SpfResult spf = routing::dijkstra(graph, src, failed);
    for (const Demand* d : demands) {
      for (topo::LinkId id : routing::extract_path(spf, graph, d->od.dst))
        loads[id] += d->pkt_per_sec;
    }
  }
  return loads;
}

LinkLoads link_loads_ecmp(const topo::Graph& graph, const TrafficMatrix& tm,
                          const routing::LinkSet& failed) {
  LinkLoads loads(graph.link_count(), 0.0);
  for (const Demand& d : tm) {
    const auto fractions =
        routing::ecmp_fractions(graph, d.od.src, d.od.dst, failed);
    NETMON_REQUIRE(!fractions.empty(), "demand destination unreachable: " +
                                           graph.node(d.od.dst).name);
    for (const auto& [id, frac] : fractions) loads[id] += d.pkt_per_sec * frac;
  }
  return loads;
}

double utilization(const topo::Graph& graph, topo::LinkId link,
                   const LinkLoads& loads, double mean_packet_bytes) {
  NETMON_REQUIRE(link < loads.size(), "link id out of range");
  NETMON_REQUIRE(mean_packet_bytes > 0.0, "mean packet size must be positive");
  const double bps = loads[link] * mean_packet_bytes * 8.0;
  return bps / graph.link(link).capacity_bps;
}

}  // namespace netmon::traffic
