// Flow-level traffic representation.
//
// The paper's evaluation works on NetFlow records aggregated over 5-minute
// bins; our simulations generate per-OD flow populations with heavy-tailed
// sizes, which the netflow substrate turns into records and the sampling
// substrate samples packet-by-packet.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ip.hpp"
#include "topo/graph.hpp"

namespace netmon::traffic {

/// The classic 5-tuple flow key.
struct FlowKey {
  net::Ipv4 src_ip = 0;
  net::Ipv4 dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP by default

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// FNV-1a based hash so FlowKey can key unordered containers.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept;
};

/// One synthetic flow: a 5-tuple with size and activity span. The OD index
/// annotation is ground truth used by the evaluation (the real system
/// recovers it from dst_ip via EgressMap; tests verify both agree).
struct Flow {
  FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double start_sec = 0.0;
  double end_sec = 0.0;
  /// Index of the OD pair this flow belongs to (ground truth).
  std::uint32_t od_index = 0;
};

/// The address block assigned to a PoP: 10.<id>.0.0/16. Synthetic end
/// hosts of a PoP draw addresses from its block.
net::Prefix pop_prefix(topo::NodeId node);

}  // namespace netmon::traffic
