#include "traffic/gravity.hpp"

#include "util/error.hpp"

namespace netmon::traffic {

TrafficMatrix gravity_matrix(const topo::Graph& graph,
                             const GravityOptions& options) {
  NETMON_REQUIRE(options.total_pkt_per_sec > 0.0,
                 "gravity total rate must be positive");
  std::vector<topo::NodeId> active;
  double mass_sum = 0.0;
  for (const topo::Node& n : graph.nodes()) {
    if (n.mass > options.min_mass) {
      active.push_back(n.id);
      mass_sum += n.mass;
    }
  }
  NETMON_REQUIRE(active.size() >= 2, "gravity model needs >= 2 active nodes");

  // Pair weight m_s*m_d over all ordered pairs s != d sums to
  // (sum m)^2 - sum m^2.
  double sq_sum = 0.0;
  for (topo::NodeId id : active) {
    const double m = graph.node(id).mass;
    sq_sum += m * m;
  }
  const double denom = mass_sum * mass_sum - sq_sum;
  NETMON_REQUIRE(denom > 0.0, "degenerate gravity masses");

  TrafficMatrix tm;
  tm.reserve(active.size() * (active.size() - 1));
  for (topo::NodeId s : active) {
    for (topo::NodeId d : active) {
      if (s == d) continue;
      const double w = graph.node(s).mass * graph.node(d).mass / denom;
      tm.push_back(Demand{{s, d}, w * options.total_pkt_per_sec});
    }
  }
  return tm;
}

}  // namespace netmon::traffic
