#include "traffic/distributions.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::traffic {

BoundedPareto::BoundedPareto(double lo, double hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  NETMON_REQUIRE(lo > 0.0 && hi > lo, "bounded Pareto needs 0 < lo < hi");
  NETMON_REQUIRE(alpha > 0.0, "bounded Pareto needs alpha > 0");
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse-CDF of the truncated Pareto.
  const double u = rng.uniform();
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  const double x = std::pow(la / (1.0 - u * (1.0 - la / ha)), 1.0 / alpha_);
  return x;
}

double BoundedPareto::mean() const {
  if (std::abs(alpha_ - 1.0) < 1e-12) {
    return std::log(hi_ / lo_) / (1.0 / lo_ - 1.0 / hi_);
  }
  const double la = std::pow(lo_, alpha_);
  const double ha = std::pow(hi_, alpha_);
  return (la / (1.0 - la / ha)) * (alpha_ / (alpha_ - 1.0)) *
         (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

std::uint32_t PacketSizeModel::sample(Rng& rng) const {
  // ~50% ACK-sized, ~30% mid-size, ~20% MTU — the canonical backbone mix.
  const double u = rng.uniform();
  if (u < 0.50) return 40;
  if (u < 0.80) return 576;
  return 1500;
}

double PacketSizeModel::mean() const noexcept {
  return 0.50 * 40.0 + 0.30 * 576.0 + 0.20 * 1500.0;
}

double exponential(Rng& rng, double rate) {
  NETMON_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = rng.uniform();
  if (u <= 0.0) u = 1e-300;  // uniform() returns [0,1); guard log(0)
  return -std::log(u) / rate;
}

}  // namespace netmon::traffic
