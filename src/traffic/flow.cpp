#include "traffic/flow.hpp"

#include "util/error.hpp"

namespace netmon::traffic {

std::size_t FlowKeyHash::operator()(const FlowKey& key) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(key.src_ip);
  mix(key.dst_ip);
  mix(static_cast<std::uint64_t>(key.src_port) << 16 | key.dst_port);
  mix(key.proto);
  return static_cast<std::size_t>(h);
}

net::Prefix pop_prefix(topo::NodeId node) {
  NETMON_REQUIRE(node < 256, "pop_prefix supports up to 256 nodes");
  return net::Prefix{net::ipv4(10, static_cast<std::uint8_t>(node), 0, 0), 16};
}

}  // namespace netmon::traffic
