#include "traffic/demand.hpp"

namespace netmon::traffic {

double total_rate(const TrafficMatrix& tm) {
  double sum = 0.0;
  for (const Demand& d : tm) sum += d.pkt_per_sec;
  return sum;
}

TrafficMatrix scaled(TrafficMatrix tm, double factor) {
  for (Demand& d : tm) d.pkt_per_sec *= factor;
  return tm;
}

double demand_for(const TrafficMatrix& tm, const routing::OdPair& od) {
  double sum = 0.0;
  for (const Demand& d : tm) {
    if (d.od == od) sum += d.pkt_per_sec;
  }
  return sum;
}

}  // namespace netmon::traffic
