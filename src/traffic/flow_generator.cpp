#include "traffic/flow_generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::traffic {

namespace {

net::Ipv4 random_host(Rng& rng, const net::Prefix& prefix) {
  // Avoid the network (.0) and broadcast-style extremes for realism.
  const std::uint64_t span = prefix.size();
  const auto offset = 1 + rng.below(span > 2 ? span - 2 : 1);
  return (prefix.base & prefix.mask()) + static_cast<net::Ipv4>(offset);
}

}  // namespace

std::vector<Flow> generate_flows(Rng& rng, const Demand& demand,
                                 std::uint32_t od_index,
                                 const FlowGenOptions& options) {
  NETMON_REQUIRE(demand.pkt_per_sec >= 0.0, "negative demand");
  NETMON_REQUIRE(options.interval_sec > 0.0, "interval must be positive");
  std::vector<Flow> flows;
  const double expected_packets = demand.pkt_per_sec * options.interval_sec;
  if (expected_packets < 1.0) return flows;

  // Cap the largest flow at a tenth of the OD volume so that one elephant
  // cannot dominate a small OD pair: keeps the realized size S_k of small
  // OD pairs concentrated around the demand while preserving the heavy
  // tail of large ones.
  const double hi = std::clamp(expected_packets * 0.1,
                               options.min_flow_packets + 1.0,
                               options.max_flow_packets);
  const BoundedPareto size_dist(options.min_flow_packets, hi,
                                options.pareto_alpha);
  const double mean_size = size_dist.mean();
  const double mean_flows = expected_packets / mean_size;

  std::poisson_distribution<std::uint64_t> flow_count(mean_flows);
  const std::uint64_t n = std::max<std::uint64_t>(1, flow_count(rng));
  flows.reserve(n);

  const net::Prefix src_block = pop_prefix(demand.od.src);
  const net::Prefix dst_block = pop_prefix(demand.od.dst);
  const PacketSizeModel pkt_size;

  for (std::uint64_t f = 0; f < n; ++f) {
    Flow flow;
    flow.key.src_ip = random_host(rng, src_block);
    flow.key.dst_ip = random_host(rng, dst_block);
    flow.key.src_port = static_cast<std::uint16_t>(1024 + rng.below(64512));
    flow.key.dst_port = static_cast<std::uint16_t>(
        rng.bernoulli(0.7) ? 80 : 1024 + rng.below(64512));
    flow.key.proto = rng.bernoulli(0.85) ? 6 : 17;  // TCP/UDP mix
    flow.packets =
        std::max<std::uint64_t>(1, std::llround(size_dist.sample(rng)));
    flow.bytes = flow.packets * static_cast<std::uint64_t>(pkt_size.sample(rng));
    flow.start_sec = rng.uniform(0.0, options.interval_sec);
    const double duration = std::min(exponential(rng, 1.0 / 30.0),
                                     options.interval_sec - flow.start_sec);
    flow.end_sec = flow.start_sec + duration;
    flow.od_index = od_index;
    flows.push_back(flow);
  }
  return flows;
}

std::vector<std::vector<Flow>> generate_all_flows(
    Rng& rng, const TrafficMatrix& tm, const FlowGenOptions& options) {
  std::vector<std::vector<Flow>> all;
  all.reserve(tm.size());
  for (std::size_t k = 0; k < tm.size(); ++k) {
    Rng stream = rng.split(k + 1);
    all.push_back(generate_flows(stream, tm[k],
                                 static_cast<std::uint32_t>(k), options));
  }
  return all;
}

std::uint64_t total_packets(const std::vector<Flow>& flows) {
  std::uint64_t sum = 0;
  for (const Flow& f : flows) sum += f.packets;
  return sum;
}

}  // namespace netmon::traffic
