// Random distributions used by the synthetic traffic generator.
//
// Internet flow sizes are heavy-tailed; we use a bounded Pareto for packet
// counts and a small empirical mixture for packet sizes, both reproducible
// through netmon::Rng.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace netmon::traffic {

/// Bounded Pareto distribution on [lo, hi] with shape alpha.
/// Used for flow sizes in packets (alpha ~ 1.2 gives the elephant/mice mix
/// observed on backbone links).
class BoundedPareto {
 public:
  /// Requires 0 < lo < hi and alpha > 0.
  BoundedPareto(double lo, double hi, double alpha);

  /// Draws one variate.
  double sample(Rng& rng) const;

  /// Analytic mean of the distribution.
  double mean() const;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double lo_;
  double hi_;
  double alpha_;
};

/// Packet-size model: the classic trimodal IPv4 mix (ACK-sized, default
/// MTU fragments, full MTU).
class PacketSizeModel {
 public:
  /// Draws one packet size in bytes.
  std::uint32_t sample(Rng& rng) const;

  /// Mean packet size in bytes.
  double mean() const noexcept;
};

/// Exponential inter-arrival sampler (Poisson process) with the given rate
/// (events per second). Requires rate > 0.
double exponential(Rng& rng, double rate);

}  // namespace netmon::traffic
