// Traffic demands: packet rates per OD pair (the traffic matrix).
#pragma once

#include <vector>

#include "routing/routing_matrix.hpp"
#include "topo/graph.hpp"

namespace netmon::traffic {

/// One traffic-matrix entry: an OD pair and its average packet rate.
struct Demand {
  routing::OdPair od;
  double pkt_per_sec = 0.0;
};

/// A traffic matrix is simply the list of non-zero demands.
using TrafficMatrix = std::vector<Demand>;

/// Total offered packet rate of a traffic matrix.
double total_rate(const TrafficMatrix& tm);

/// Scales every demand by `factor` (diurnal variation, anomalies, growth).
TrafficMatrix scaled(TrafficMatrix tm, double factor);

/// Returns the demand rate for a specific OD pair (0 when absent).
double demand_for(const TrafficMatrix& tm, const routing::OdPair& od);

}  // namespace netmon::traffic
