// Synthetic flow-population generation per OD pair.
//
// Given a demand (pkt/s) and a measurement interval, generates flows whose
// packet counts follow a bounded Pareto (heavy tail: many mice, few
// elephants) and whose total packet count concentrates around
// rate * interval. Deterministic given the Rng seed.
#pragma once

#include <vector>

#include "traffic/demand.hpp"
#include "traffic/distributions.hpp"
#include "traffic/flow.hpp"
#include "util/rng.hpp"

namespace netmon::traffic {

/// Tunables of the flow generator.
struct FlowGenOptions {
  /// Measurement interval length (the paper bins flows in 5 minutes).
  double interval_sec = 300.0;
  /// Flow size (packets) distribution: bounded Pareto on [min,max].
  double pareto_alpha = 1.15;
  double min_flow_packets = 1.0;
  double max_flow_packets = 2.0e5;
};

/// Generates the flow population of one OD pair.
///
/// `od_index` is stamped on every flow (ground-truth annotation);
/// addresses are drawn from the PoP blocks of the demand endpoints.
/// The number of flows is Poisson-distributed with mean chosen so that
/// E[total packets] = demand.pkt_per_sec * interval_sec.
std::vector<Flow> generate_flows(Rng& rng, const Demand& demand,
                                 std::uint32_t od_index,
                                 const FlowGenOptions& options = {});

/// Generates flow populations for a whole traffic matrix; row k of the
/// result corresponds to tm[k]. Each OD pair uses an independent Rng
/// stream, so per-OD populations are reproducible regardless of order.
std::vector<std::vector<Flow>> generate_all_flows(
    Rng& rng, const TrafficMatrix& tm, const FlowGenOptions& options = {});

/// Sum of packet counts of a flow population — the "actual size" S_k that
/// the paper's accuracy metric compares estimates against.
std::uint64_t total_packets(const std::vector<Flow>& flows);

}  // namespace netmon::traffic
