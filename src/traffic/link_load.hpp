// Link load computation: U = R^T t, mapping a traffic matrix onto links.
#pragma once

#include <vector>

#include "routing/spf.hpp"
#include "topo/graph.hpp"
#include "traffic/demand.hpp"

namespace netmon::traffic {

/// Per-link packet rates (pkt/s), indexed by link id.
using LinkLoads = std::vector<double>;

/// Routes every demand over its (single) shortest path and accumulates
/// per-link packet rates. Throws if a demand's destination is unreachable.
LinkLoads link_loads(const topo::Graph& graph, const TrafficMatrix& tm,
                     const routing::LinkSet& failed = {});

/// Same, but splits demands over equal-cost multipaths.
LinkLoads link_loads_ecmp(const topo::Graph& graph, const TrafficMatrix& tm,
                          const routing::LinkSet& failed = {});

/// Utilization (load in bits/s over capacity) of one link given a mean
/// packet size in bytes. Diagnostic helper for examples and tests.
double utilization(const topo::Graph& graph, topo::LinkId link,
                   const LinkLoads& loads, double mean_packet_bytes);

}  // namespace netmon::traffic
