#include "traffic/variation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::traffic {

namespace {
constexpr double kDaySec = 86400.0;
constexpr double kFloor = 0.05;  // demands never drop to exactly zero
}  // namespace

DiurnalPattern::DiurnalPattern(double amplitude, double peak_sec)
    : amplitude_(amplitude), peak_sec_(peak_sec) {
  NETMON_REQUIRE(amplitude >= 0.0 && amplitude < 1.0,
                 "diurnal amplitude must lie in [0,1)");
}

double DiurnalPattern::factor(double t_sec) const noexcept {
  const double phase = 2.0 * M_PI * (t_sec - peak_sec_) / kDaySec;
  return std::max(kFloor, 1.0 + amplitude_ * std::cos(phase));
}

TrafficMatrix matrix_at(const TrafficMatrix& base,
                        const DiurnalPattern& pattern,
                        const std::vector<AnomalySpike>& spikes,
                        double t_sec) {
  const double diurnal = pattern.factor(t_sec);
  TrafficMatrix out;
  out.reserve(base.size());
  for (const Demand& d : base) {
    double rate = d.pkt_per_sec * diurnal;
    for (const AnomalySpike& spike : spikes) {
      if (spike.od == d.od && spike.active_at(t_sec)) rate *= spike.factor;
    }
    out.push_back(Demand{d.od, rate});
  }
  return out;
}

}  // namespace netmon::traffic
