#include "netflow/flow_table.hpp"

#include "util/error.hpp"

namespace netmon::netflow {

FlowTable::FlowTable(topo::LinkId input_link, FlowTableOptions options,
                     ExportFn on_export)
    : input_link_(input_link),
      options_(options),
      on_export_(std::move(on_export)) {
  NETMON_REQUIRE(options_.idle_timeout_sec > 0.0,
                 "idle timeout must be positive");
  NETMON_REQUIRE(options_.active_timeout_sec > 0.0,
                 "active timeout must be positive");
  NETMON_REQUIRE(static_cast<bool>(on_export_), "export callback required");
}

void FlowTable::observe(const traffic::FlowKey& key, std::uint32_t bytes,
                        double timestamp_sec, bool fin) {
  advance(timestamp_sec);

  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (options_.max_entries > 0 && entries_.size() >= options_.max_entries) {
      // Cache full: force out the least recently updated flow.
      ++evictions_;
      expire(lru_.front());
    }
    FlowRecord record;
    record.key = key;
    record.start_sec = timestamp_sec;
    record.input_link = input_link_;
    lru_.push_back(key);
    auto pos = std::prev(lru_.end());
    it = entries_.emplace(key, Entry{record, pos}).first;
  } else {
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  }

  Entry& entry = it->second;
  entry.record.sampled_packets += 1;
  entry.record.sampled_bytes += bytes;
  entry.record.end_sec = timestamp_sec;

  if (fin) {
    expire(key);
  }
}

void FlowTable::advance(double now_sec) {
  // Idle expiry in LRU order: the front is the stalest entry.
  while (!lru_.empty()) {
    const auto it = entries_.find(lru_.front());
    const FlowRecord& rec = it->second.record;
    const bool idle = now_sec - rec.end_sec >= options_.idle_timeout_sec;
    if (!idle) break;
    expire(lru_.front());
  }
  // Active-timeout expiry needs a full scan; amortize it to once per
  // second of simulated time so per-packet cost stays O(1). The scratch
  // vector is a reused member: after reserve() (or the first scans) the
  // scan allocates nothing.
  if (now_sec - last_active_scan_sec_ < 1.0) return;
  last_active_scan_sec_ = now_sec;
  scan_scratch_.clear();
  for (const auto& [key, entry] : entries_) {
    if (now_sec - entry.record.start_sec >= options_.active_timeout_sec)
      scan_scratch_.push_back(key);
  }
  for (const auto& key : scan_scratch_) expire(key);
}

void FlowTable::reserve(std::size_t flows) {
  entries_.reserve(flows);
  scan_scratch_.reserve(flows);
}

void FlowTable::flush(double now_sec) {
  (void)now_sec;
  while (!lru_.empty()) expire(lru_.front());
}

void FlowTable::expire(const traffic::FlowKey& key) {
  auto it = entries_.find(key);
  NETMON_REQUIRE(it != entries_.end(), "expiring unknown flow");
  lru_.erase(it->second.lru_pos);
  export_record(it->second.record);
  entries_.erase(it);
}

void FlowTable::export_record(const FlowRecord& record) {
  ++exported_;
  on_export_(record);
}

}  // namespace netmon::netflow
