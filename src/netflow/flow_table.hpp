// Router-side flow cache with NetFlow expiry semantics.
//
// Maintains per-flow accounting for sampled packets, expiring entries on
// idle timeout (30 s in the paper's GEANT configuration), on active
// timeout, on TCP FIN/RST, or on cache pressure (bounded entry count, as
// in router implementations). Expired entries are handed to an export
// callback.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "netflow/record.hpp"

namespace netmon::netflow {

/// Flow-cache configuration mirroring router knobs.
struct FlowTableOptions {
  /// Expire a flow this long after its last sampled packet.
  double idle_timeout_sec = 30.0;
  /// Expire long-running flows this long after their first packet.
  double active_timeout_sec = 120.0;
  /// Maximum number of concurrent entries; 0 = unbounded. When full, the
  /// least recently updated entry is force-expired.
  std::size_t max_entries = 0;
};

/// The flow cache. Not thread-safe: one table per simulated router.
class FlowTable {
 public:
  using ExportFn = std::function<void(const FlowRecord&)>;

  /// `on_export` receives every expired/flushed record.
  FlowTable(topo::LinkId input_link, FlowTableOptions options,
            ExportFn on_export);

  /// Accounts one *sampled* packet. `fin` marks TCP FIN/RST, which
  /// triggers immediate expiry of the entry (paper §V-A). Timestamps must
  /// be non-decreasing across calls.
  void observe(const traffic::FlowKey& key, std::uint32_t bytes,
               double timestamp_sec, bool fin = false);

  /// Advances time, expiring idle/over-age entries.
  void advance(double now_sec);

  /// Expires everything (end of measurement / export interval).
  void flush(double now_sec);

  /// Pre-sizes internal storage for `flows` concurrent entries so the
  /// steady-state packet path (observe on a cached flow, periodic
  /// active-timeout scans) performs no allocations — the ingest hot
  /// path's contract, enforced by tests/ingest_zero_alloc_test.cpp.
  void reserve(std::size_t flows);

  /// Current number of cached entries.
  std::size_t size() const noexcept { return entries_.size(); }

  /// Counters for observability.
  std::uint64_t exported_records() const noexcept { return exported_; }
  std::uint64_t forced_evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    FlowRecord record;
    std::list<traffic::FlowKey>::iterator lru_pos;
  };

  void expire(const traffic::FlowKey& key);
  void export_record(const FlowRecord& record);

  topo::LinkId input_link_;
  FlowTableOptions options_;
  ExportFn on_export_;
  std::unordered_map<traffic::FlowKey, Entry, traffic::FlowKeyHash> entries_;
  // LRU by last update; front = least recently updated.
  std::list<traffic::FlowKey> lru_;
  std::uint64_t exported_ = 0;
  std::uint64_t evictions_ = 0;
  double last_active_scan_sec_ = -1.0e300;
  /// Reused by the active-timeout scan (no per-scan allocation).
  std::vector<traffic::FlowKey> scan_scratch_;
};

}  // namespace netmon::netflow
