// NetFlow-style flow records (paper §V-A).
//
// Each record carries the 5-tuple plus the fields the paper's study uses:
// start/end timestamps, sampled packet and byte counts, and the router
// interface the flow entered on (which identifies the monitored link).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.hpp"
#include "traffic/flow.hpp"

namespace netmon::netflow {

/// One exported flow record.
struct FlowRecord {
  traffic::FlowKey key;
  /// Number of packets of this flow actually sampled by the monitor.
  std::uint64_t sampled_packets = 0;
  /// Cumulative size in bytes of the sampled packets.
  std::uint64_t sampled_bytes = 0;
  /// Timestamp of the first sampled packet (paper: flow start time).
  double start_sec = 0.0;
  /// Timestamp of the last packet seen before export/expiry.
  double end_sec = 0.0;
  /// Link the monitor observing this flow sits on.
  topo::LinkId input_link = topo::kInvalidId;
};

/// A batch of records exported together by one router.
using RecordBatch = std::vector<FlowRecord>;

}  // namespace netmon::netflow
