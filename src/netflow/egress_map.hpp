// Longest-prefix-match mapping from destination address to egress PoP.
//
// The paper associates each flow record with its egress PoP, "computed
// from the destination IP address using the technique presented in [4]"
// (Feldmann et al.). We implement the data-plane half of that technique:
// a binary trie over IPv4 prefixes with longest-prefix-match lookup.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ip.hpp"
#include "topo/graph.hpp"

namespace netmon::netflow {

/// Longest-prefix-match table: prefix -> egress node.
class EgressMap {
 public:
  EgressMap();
  ~EgressMap();
  EgressMap(EgressMap&&) noexcept;
  EgressMap& operator=(EgressMap&&) noexcept;
  EgressMap(const EgressMap&) = delete;
  EgressMap& operator=(const EgressMap&) = delete;

  /// Inserts (or overwrites) a prefix route. Throws on invalid length.
  void insert(const net::Prefix& prefix, topo::NodeId egress);

  /// Longest-prefix-match lookup; nullopt when no prefix covers addr.
  std::optional<topo::NodeId> lookup(net::Ipv4 addr) const;

  /// Number of installed prefixes.
  std::size_t size() const noexcept { return size_; }

  /// Builds the map for synthetic traffic: every node's pop_prefix()
  /// (10.<id>.0.0/16) routes to that node.
  static EgressMap for_pop_blocks(const topo::Graph& graph);

 private:
  struct TrieNode;
  std::unique_ptr<TrieNode> root_;
  std::size_t size_ = 0;
};

}  // namespace netmon::netflow
