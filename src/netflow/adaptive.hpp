// Adaptive NetFlow (Estan et al., paper ref. [11]).
//
// A router-local mechanism that decreases the packet-sampling rate when
// the flow cache grows past its memory budget, keeping resource usage
// fixed regardless of traffic mix. The paper positions its global
// optimization as complementary to this local adaptation: the optimizer
// sets the target rate per link, the router adapts below it under
// pressure. Estimation stays unbiased because the monitor remembers the
// rate in force for each "epoch" and renormalizes per epoch.
#pragma once

#include <vector>

#include "netflow/flow_table.hpp"
#include "util/rng.hpp"

namespace netmon::netflow {

/// Adaptive-monitor configuration.
struct AdaptiveOptions {
  /// Flow-cache entry budget that triggers adaptation.
  std::size_t entry_budget = 1024;
  /// Multiplier applied to the rate on each adaptation (< 1).
  double backoff = 0.5;
  /// Floor below which the rate is not reduced further.
  double min_rate = 1e-6;
  FlowTableOptions table;
};

/// One rate epoch: [first packet index, rate in force].
struct RateEpoch {
  std::uint64_t from_packet = 0;
  double rate = 0.0;
  /// Packets sampled during this epoch.
  std::uint64_t sampled = 0;
  /// Packets offered during this epoch.
  std::uint64_t offered = 0;
};

/// A link monitor whose sampling rate adapts to cache pressure.
class AdaptiveMonitor {
 public:
  /// `target_rate` is the rate the global optimizer assigned; adaptation
  /// only ever lowers it. Expired records go to `sink`.
  AdaptiveMonitor(topo::LinkId link, double target_rate,
                  AdaptiveOptions options, FlowTable::ExportFn sink,
                  std::uint64_t seed);

  /// Offers one packet; returns whether it was sampled.
  bool offer(const traffic::FlowKey& key, std::uint32_t bytes,
             double timestamp_sec, bool fin = false);

  /// Flushes the flow cache.
  void flush(double now_sec);

  /// The rate currently in force.
  double current_rate() const noexcept { return rate_; }
  /// The optimizer-assigned target.
  double target_rate() const noexcept { return target_; }
  /// Every epoch so far (the last one is open).
  const std::vector<RateEpoch>& epochs() const noexcept { return epochs_; }
  /// Number of adaptations performed.
  std::size_t adaptations() const noexcept { return epochs_.size() - 1; }

  /// Unbiased estimate of the packets offered so far, reconstructed from
  /// the per-epoch sampled counts and rates (sum sampled_e / rate_e).
  double estimated_offered() const;

  std::uint64_t offered_packets() const noexcept { return offered_; }
  std::uint64_t sampled_packets() const noexcept { return sampled_; }

 private:
  void maybe_adapt();

  double target_;
  double rate_;
  AdaptiveOptions options_;
  Rng rng_;
  FlowTable table_;
  std::vector<RateEpoch> epochs_;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace netmon::netflow
