#include "netflow/sample_and_hold.hpp"

#include "util/error.hpp"

namespace netmon::netflow {

SampleAndHoldMonitor::SampleAndHoldMonitor(topo::LinkId link,
                                           double probability,
                                           std::size_t max_entries,
                                           ExportFn on_export,
                                           std::uint64_t seed)
    : link_(link),
      p_(probability),
      max_entries_(max_entries),
      on_export_(std::move(on_export)),
      rng_(seed) {
  NETMON_REQUIRE(probability > 0.0 && probability <= 1.0,
                 "sample-and-hold probability out of (0,1]");
  NETMON_REQUIRE(static_cast<bool>(on_export_), "export callback required");
}

bool SampleAndHoldMonitor::offer(const traffic::FlowKey& key,
                                 std::uint32_t bytes, double timestamp_sec) {
  ++offered_;
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (!rng_.bernoulli(p_)) return false;  // untracked and not sampled
    if (max_entries_ > 0 && table_.size() >= max_entries_) {
      ++rejected_;
      return false;  // table full: cannot admit the flow
    }
    FlowRecord record;
    record.key = key;
    record.start_sec = timestamp_sec;
    record.input_link = link_;
    it = table_.emplace(key, record).first;
  }
  FlowRecord& record = it->second;
  record.sampled_packets += 1;  // "held" count: exact from admission on
  record.sampled_bytes += bytes;
  record.end_sec = timestamp_sec;
  ++counted_;
  return true;
}

void SampleAndHoldMonitor::flush(double now_sec) {
  (void)now_sec;
  for (auto& [key, record] : table_) on_export_(record);
  table_.clear();
}

double SampleAndHoldMonitor::estimate_packets(
    std::uint64_t held_count) const {
  // held + E[geometric prefix] = held + (1-p)/p.
  return static_cast<double>(held_count) + (1.0 - p_) / p_;
}

}  // namespace netmon::netflow
