#include "netflow/exporter.hpp"

#include "util/error.hpp"

namespace netmon::netflow {

LinkMonitor::LinkMonitor(topo::LinkId link, double sampling_rate,
                         FlowTableOptions table_options, ExportSink sink,
                         std::uint64_t seed)
    : link_(link),
      rate_(sampling_rate),
      rng_(seed),
      table_(link, table_options,
             [this, sink = std::move(sink)](const FlowRecord& record) {
               sink(record, link_, rate_);
             }) {
  NETMON_REQUIRE(sampling_rate >= 0.0 && sampling_rate <= 1.0,
                 "sampling rate out of [0,1]");
}

bool LinkMonitor::offer(const traffic::FlowKey& key, std::uint32_t bytes,
                        double timestamp_sec, bool fin) {
  ++offered_;
  if (!rng_.bernoulli(rate_)) return false;
  ++sampled_;
  table_.observe(key, bytes, timestamp_sec, fin);
  return true;
}

void LinkMonitor::flush(double now_sec) { table_.flush(now_sec); }

}  // namespace netmon::netflow
