#include "netflow/pipeline.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace netmon::netflow {

NetflowPipeline::NetflowPipeline(const topo::Graph& graph,
                                 const routing::RoutingMatrix& matrix,
                                 const sampling::RateVector& rates,
                                 const EgressMap& egress,
                                 PipelineOptions options)
    : graph_(graph),
      matrix_(matrix),
      rates_(rates),
      collector_(egress, options.collector),
      monitors_(graph.link_count()) {
  NETMON_REQUIRE(rates_.size() == graph_.link_count(),
                 "one rate per link required");
  for (topo::LinkId id = 0; id < rates_.size(); ++id) {
    if (rates_[id] <= 0.0) continue;
    monitors_[id] = std::make_unique<LinkMonitor>(
        id, rates_[id], options.flow_table,
        [this](const FlowRecord& record, topo::LinkId link, double rate) {
          collector_.receive(record, link, rate);
        },
        options.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
  }
}

void NetflowPipeline::run(
    const std::vector<std::vector<traffic::Flow>>& flows) {
  NETMON_REQUIRE(flows.size() == matrix_.od_count(),
                 "one flow population per OD row required");

  // Per-flow packet cursor; a min-heap orders packets network-wide so
  // each monitor sees non-decreasing timestamps.
  struct Cursor {
    double time;
    std::uint32_t od;
    std::uint32_t flow;
    std::uint64_t seq;
  };
  auto later = [](const Cursor& a, const Cursor& b) { return a.time > b.time; };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(later)> heap(later);

  auto packet_time = [&](const traffic::Flow& f, std::uint64_t seq) {
    if (f.packets <= 1) return f.start_sec;
    return f.start_sec + (f.end_sec - f.start_sec) *
                             static_cast<double>(seq) /
                             static_cast<double>(f.packets - 1);
  };

  for (std::uint32_t k = 0; k < flows.size(); ++k) {
    for (std::uint32_t i = 0; i < flows[k].size(); ++i) {
      if (flows[k][i].packets == 0) continue;
      heap.push(Cursor{packet_time(flows[k][i], 0), k, i, 0});
    }
  }

  double last_time = 0.0;
  while (!heap.empty()) {
    const Cursor cur = heap.top();
    heap.pop();
    const traffic::Flow& flow = flows[cur.od][cur.flow];
    last_time = cur.time;

    const bool is_last = cur.seq + 1 == flow.packets;
    const bool fin = is_last && flow.key.proto == 6;  // TCP FIN on close
    const auto bytes = static_cast<std::uint32_t>(
        flow.bytes / std::max<std::uint64_t>(1, flow.packets));
    for (const auto& [link, frac] : matrix_.row(cur.od)) {
      (void)frac;
      if (monitors_[link]) monitors_[link]->offer(flow.key, bytes, cur.time, fin);
    }
    if (!is_last)
      heap.push(Cursor{packet_time(flow, cur.seq + 1), cur.od, cur.flow,
                       cur.seq + 1});
  }

  for (auto& monitor : monitors_) {
    if (monitor) monitor->flush(last_time);
  }
}

std::uint64_t NetflowPipeline::offered_packets() const {
  std::uint64_t sum = 0;
  for (const auto& m : monitors_) {
    if (m) sum += m->offered_packets();
  }
  return sum;
}

std::uint64_t NetflowPipeline::sampled_packets() const {
  std::uint64_t sum = 0;
  for (const auto& m : monitors_) {
    if (m) sum += m->sampled_packets();
  }
  return sum;
}

}  // namespace netmon::netflow
