// End-to-end NetFlow pipeline: per-link sampled monitors -> flow tables
// -> export -> collector, driven by a time-ordered packet stream derived
// from synthetic flow populations.
//
// This is the full-fidelity counterpart of sampling::simulate_sampling:
// it exercises the entire router/collector substrate (flow caching,
// timeouts, export, OD attribution via longest-prefix match, binning).
// O(total packets); run it at reduced scale.
#pragma once

#include <memory>
#include <vector>

#include "netflow/collector.hpp"
#include "netflow/exporter.hpp"
#include "routing/routing_matrix.hpp"
#include "sampling/effective_rate.hpp"
#include "traffic/flow_generator.hpp"

namespace netmon::netflow {

/// Pipeline configuration.
struct PipelineOptions {
  FlowTableOptions flow_table;
  CollectorOptions collector;
  std::uint64_t seed = 42;
};

/// Runs flows through monitors and collects records.
class NetflowPipeline {
 public:
  /// Monitors are instantiated on every link with rates[link] > 0.
  /// `egress` must outlive the pipeline.
  NetflowPipeline(const topo::Graph& graph,
                  const routing::RoutingMatrix& matrix,
                  const sampling::RateVector& rates, const EgressMap& egress,
                  PipelineOptions options = {});

  /// Streams every packet of every flow (time-ordered network-wide) past
  /// the monitors of its path, then flushes all tables.
  /// `flows[k]` must belong to matrix.od(k).
  void run(const std::vector<std::vector<traffic::Flow>>& flows);

  const Collector& collector() const noexcept { return collector_; }

  /// Total packets offered to / sampled by all monitors.
  std::uint64_t offered_packets() const;
  std::uint64_t sampled_packets() const;

 private:
  const topo::Graph& graph_;
  const routing::RoutingMatrix& matrix_;
  sampling::RateVector rates_;
  Collector collector_;
  std::vector<std::unique_ptr<LinkMonitor>> monitors_;  // by link id
};

}  // namespace netmon::netflow
