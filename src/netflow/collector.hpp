// Collector-side post-processing of exported flow records (paper §V-A):
// records are attributed to OD pairs (origin and egress PoP resolved from
// addresses via longest-prefix match) and aggregated in measurement bins
// of 5 minutes keyed by flow start time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "netflow/egress_map.hpp"
#include "netflow/record.hpp"
#include "routing/routing_matrix.hpp"

namespace netmon::netflow {

/// Collector configuration.
struct CollectorOptions {
  /// Measurement bin length; the paper uses 5 minutes "to reduce the
  /// impact of synchronization issues".
  double bin_sec = 300.0;
};

/// Aggregated sample counts for one (bin, OD pair, monitored link).
struct SampleAggregate {
  std::uint64_t sampled_packets = 0;
  std::uint64_t sampled_bytes = 0;
  std::uint64_t records = 0;
};

/// Receives records from all monitors and aggregates per OD pair.
///
/// Note on duplicate samples: with the linear effective-rate model
/// (paper eq. 7), E[total samples of OD k] = S_k * sum_i r_ki p_i even
/// when a packet can be sampled at several monitors, so the collector sums
/// counts without deduplication and the estimator X_k / rho_k stays
/// unbiased. (sampling::PacketIdDedup exists for the exact-rate variant.)
class Collector {
 public:
  /// `origin_and_egress` resolves both flow endpoints to PoPs.
  Collector(const EgressMap& origin_and_egress, CollectorOptions options = {});

  /// Ingests one exported record. Records whose endpoints cannot be
  /// resolved are counted in unattributed() and dropped.
  void receive(const FlowRecord& record, topo::LinkId link, double rate);

  /// Sampled packets of an OD pair in a bin, summed over all monitors.
  std::uint64_t sampled_packets(std::int64_t bin,
                                const routing::OdPair& od) const;

  /// Sampled packets of an OD pair in a bin on one monitored link.
  std::uint64_t sampled_packets_on_link(std::int64_t bin,
                                        const routing::OdPair& od,
                                        topo::LinkId link) const;

  /// Estimated OD size: sampled_packets / rho (the caller supplies the
  /// effective sampling rate of the OD pair).
  double estimate_packets(std::int64_t bin, const routing::OdPair& od,
                          double rho) const;

  /// All bins that received data, sorted.
  std::vector<std::int64_t> bins() const;

  /// Bin index for a timestamp.
  std::int64_t bin_of(double timestamp_sec) const;

  std::uint64_t received_records() const noexcept { return received_; }
  std::uint64_t unattributed_records() const noexcept { return unattributed_; }

 private:
  using Key = std::tuple<std::int64_t, topo::NodeId, topo::NodeId,
                         topo::LinkId>;  // bin, src, dst, link
  const EgressMap& map_;
  CollectorOptions options_;
  std::map<Key, SampleAggregate> aggregates_;
  std::uint64_t received_ = 0;
  std::uint64_t unattributed_ = 0;
};

}  // namespace netmon::netflow
