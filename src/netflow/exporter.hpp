// Link monitor: packet sampling in front of a flow table, with periodic
// export to a collector (paper §V-A: records exported every minute).
#pragma once

#include <functional>

#include "netflow/flow_table.hpp"
#include "util/rng.hpp"

namespace netmon::netflow {

/// Export sink: receives each record together with the id of the
/// monitored link and the sampling rate in force.
using ExportSink =
    std::function<void(const FlowRecord&, topo::LinkId, double rate)>;

/// A sampled-NetFlow monitor on one link.
///
/// Packets offered to the monitor are sampled i.i.d. with the configured
/// probability; sampled packets update the flow table, whose expired
/// records flow to the sink. flush() must be called at the end of the
/// simulated interval.
class LinkMonitor {
 public:
  LinkMonitor(topo::LinkId link, double sampling_rate,
              FlowTableOptions table_options, ExportSink sink,
              std::uint64_t seed);

  /// Offers one packet to the monitor; samples it with probability
  /// sampling_rate. Returns whether the packet was sampled.
  bool offer(const traffic::FlowKey& key, std::uint32_t bytes,
             double timestamp_sec, bool fin = false);

  /// Expires and exports all cached flows.
  void flush(double now_sec);

  topo::LinkId link() const noexcept { return link_; }
  double sampling_rate() const noexcept { return rate_; }
  std::uint64_t offered_packets() const noexcept { return offered_; }
  std::uint64_t sampled_packets() const noexcept { return sampled_; }

 private:
  topo::LinkId link_;
  double rate_;
  Rng rng_;
  FlowTable table_;
  std::uint64_t offered_ = 0;
  std::uint64_t sampled_ = 0;
};

}  // namespace netmon::netflow
