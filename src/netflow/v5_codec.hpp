// NetFlow v5 wire format.
//
// The paper's infrastructure exports flow records from routers to a
// collector; on the wire that is NetFlow v5 (the version GEANT's
// NetFlow-compatible Juniper sampling exported, ref. [20]). This module
// implements the datagram layout faithfully — 24-byte header plus 48-byte
// records, big-endian — so the exporter/collector path can be exercised
// end-to-end at the byte level, and captures from real routers could be
// replayed against the collector.
#pragma once

#include <cstdint>
#include <vector>

#include "netflow/record.hpp"

namespace netmon::netflow {

/// NetFlow v5 packet header fields we model.
struct V5Header {
  std::uint16_t version = 5;
  std::uint16_t count = 0;          // records in this datagram (1..30)
  std::uint32_t sys_uptime_ms = 0;  // ms since device boot
  std::uint32_t unix_secs = 0;      // export timestamp
  std::uint32_t flow_sequence = 0;  // total flows exported before this one
  std::uint8_t engine_id = 0;
  /// Sampling info field: top 2 bits mode (1 = packet sampling), lower 14
  /// bits the sampling interval N (rate = 1/N).
  std::uint16_t sampling = 0;
};

/// One decoded datagram.
struct V5Datagram {
  V5Header header;
  RecordBatch records;
};

/// Maximum records per v5 datagram (fixed by the format: 30 x 48 B).
inline constexpr std::size_t kV5MaxRecords = 30;
/// Sizes fixed by the format.
inline constexpr std::size_t kV5HeaderBytes = 24;
inline constexpr std::size_t kV5RecordBytes = 48;

/// Encodes records into one or more v5 datagrams (at most 30 records
/// each). `sampling_interval` is N in 1-in-N (0 = unknown); sequence
/// numbers continue from `first_sequence`.
std::vector<std::vector<std::uint8_t>> encode_v5(
    const RecordBatch& records, double export_time_sec,
    std::uint32_t sampling_interval, std::uint32_t first_sequence = 0,
    std::uint8_t engine_id = 0);

/// Decodes one datagram. Throws netmon::Error on malformed input
/// (wrong version, truncated packet, count/size mismatch).
V5Datagram decode_v5(const std::vector<std::uint8_t>& datagram);

/// The sampling rate encoded in a header (0 when not packet-sampled).
double v5_sampling_rate(const V5Header& header) noexcept;

}  // namespace netmon::netflow
