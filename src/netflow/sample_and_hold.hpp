// Sample-and-hold flow accounting (Estan & Varghese, the lineage of the
// paper's ref. [11]).
//
// Plain packet sampling estimates a flow's size with variance ~ k/p; for
// heavy hitters that is wasteful. Sample-and-hold instead samples packets
// of *untracked* flows with probability p, but once a flow enters the
// table every subsequent packet is counted exactly. Elephants are counted
// almost perfectly; memory grows like p times the packet volume. An
// unbiased size estimate adds the expected missed prefix (1-p)/p to the
// held count.
#pragma once

#include <functional>
#include <unordered_map>

#include "netflow/record.hpp"
#include "util/rng.hpp"

namespace netmon::netflow {

/// Sample-and-hold monitor for one link.
class SampleAndHoldMonitor {
 public:
  using ExportFn = std::function<void(const FlowRecord&)>;

  /// `probability` is the per-packet entry probability for untracked
  /// flows; `max_entries` bounds the table (0 = unbounded; when full, new
  /// flows are not admitted).
  SampleAndHoldMonitor(topo::LinkId link, double probability,
                       std::size_t max_entries, ExportFn on_export,
                       std::uint64_t seed);

  /// Offers one packet; returns whether it was counted (flow tracked).
  bool offer(const traffic::FlowKey& key, std::uint32_t bytes,
             double timestamp_sec);

  /// Exports every tracked flow and clears the table.
  void flush(double now_sec);

  /// Unbiased estimate of a flow's original packet count from its held
  /// count: held + (1-p)/p (the expected untracked prefix).
  double estimate_packets(std::uint64_t held_count) const;

  std::size_t tracked_flows() const noexcept { return table_.size(); }
  std::uint64_t offered_packets() const noexcept { return offered_; }
  std::uint64_t counted_packets() const noexcept { return counted_; }
  std::uint64_t rejected_flows() const noexcept { return rejected_; }
  double probability() const noexcept { return p_; }

 private:
  topo::LinkId link_;
  double p_;
  std::size_t max_entries_;
  ExportFn on_export_;
  Rng rng_;
  std::unordered_map<traffic::FlowKey, FlowRecord, traffic::FlowKeyHash>
      table_;
  std::uint64_t offered_ = 0;
  std::uint64_t counted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace netmon::netflow
