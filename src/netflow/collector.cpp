#include "netflow/collector.hpp"

#include <cmath>

#include "util/error.hpp"

namespace netmon::netflow {

Collector::Collector(const EgressMap& origin_and_egress,
                     CollectorOptions options)
    : map_(origin_and_egress), options_(options) {
  NETMON_REQUIRE(options_.bin_sec > 0.0, "bin length must be positive");
}

void Collector::receive(const FlowRecord& record, topo::LinkId link,
                        double rate) {
  (void)rate;  // rescaling happens at estimation time, via rho
  ++received_;
  const auto src = map_.lookup(record.key.src_ip);
  const auto dst = map_.lookup(record.key.dst_ip);
  if (!src || !dst) {
    ++unattributed_;
    return;
  }
  const Key key{bin_of(record.start_sec), *src, *dst, link};
  SampleAggregate& agg = aggregates_[key];
  agg.sampled_packets += record.sampled_packets;
  agg.sampled_bytes += record.sampled_bytes;
  agg.records += 1;
}

std::uint64_t Collector::sampled_packets(std::int64_t bin,
                                         const routing::OdPair& od) const {
  std::uint64_t sum = 0;
  // Keys are ordered by (bin, src, dst, link): range scan over the links.
  const Key lo{bin, od.src, od.dst, 0};
  const Key hi{bin, od.src, od.dst, topo::kInvalidId};
  for (auto it = aggregates_.lower_bound(lo);
       it != aggregates_.end() && it->first <= hi; ++it) {
    sum += it->second.sampled_packets;
  }
  return sum;
}

std::uint64_t Collector::sampled_packets_on_link(std::int64_t bin,
                                                 const routing::OdPair& od,
                                                 topo::LinkId link) const {
  const auto it = aggregates_.find(Key{bin, od.src, od.dst, link});
  return it == aggregates_.end() ? 0 : it->second.sampled_packets;
}

double Collector::estimate_packets(std::int64_t bin,
                                   const routing::OdPair& od,
                                   double rho) const {
  NETMON_REQUIRE(rho > 0.0, "effective sampling rate must be positive");
  return static_cast<double>(sampled_packets(bin, od)) / rho;
}

std::vector<std::int64_t> Collector::bins() const {
  std::vector<std::int64_t> out;
  for (const auto& [key, agg] : aggregates_) {
    const std::int64_t bin = std::get<0>(key);
    if (out.empty() || out.back() != bin) out.push_back(bin);
  }
  return out;
}

std::int64_t Collector::bin_of(double timestamp_sec) const {
  return static_cast<std::int64_t>(std::floor(timestamp_sec / options_.bin_sec));
}

}  // namespace netmon::netflow
