#include "netflow/v5_codec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace netmon::netflow {

namespace {

// Big-endian primitive writers/readers (network byte order).
void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get32(const std::vector<std::uint8_t>& in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

std::uint32_t clamp32(std::uint64_t v) {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(v, 0xffffffffULL));
}

std::uint32_t ms_of(double sec) {
  return clamp32(static_cast<std::uint64_t>(std::llround(
      std::max(0.0, sec) * 1000.0)));
}

}  // namespace

std::vector<std::vector<std::uint8_t>> encode_v5(
    const RecordBatch& records, double export_time_sec,
    std::uint32_t sampling_interval, std::uint32_t first_sequence,
    std::uint8_t engine_id) {
  NETMON_REQUIRE(export_time_sec >= 0.0, "export time must be >= 0");
  NETMON_REQUIRE(sampling_interval < (1u << 14),
                 "sampling interval exceeds the 14-bit v5 field");

  std::vector<std::vector<std::uint8_t>> datagrams;
  std::uint32_t sequence = first_sequence;
  for (std::size_t offset = 0; offset < records.size();
       offset += kV5MaxRecords) {
    const std::size_t n =
        std::min(kV5MaxRecords, records.size() - offset);
    std::vector<std::uint8_t> out;
    out.reserve(kV5HeaderBytes + n * kV5RecordBytes);

    // --- header ---
    put16(out, 5);
    put16(out, static_cast<std::uint16_t>(n));
    put32(out, ms_of(export_time_sec));       // SysUptime
    put32(out, static_cast<std::uint32_t>(export_time_sec));  // unix_secs
    put32(out, 0);                            // unix_nsecs
    put32(out, sequence);
    out.push_back(0);                         // engine_type
    out.push_back(engine_id);
    const std::uint16_t sampling =
        sampling_interval == 0
            ? 0
            : static_cast<std::uint16_t>((1u << 14) | sampling_interval);
    put16(out, sampling);

    // --- records ---
    for (std::size_t i = 0; i < n; ++i) {
      const FlowRecord& r = records[offset + i];
      put32(out, r.key.src_ip);
      put32(out, r.key.dst_ip);
      put32(out, 0);                                      // nexthop
      put16(out, static_cast<std::uint16_t>(r.input_link));  // input if
      put16(out, 0);                                      // output if
      put32(out, clamp32(r.sampled_packets));
      put32(out, clamp32(r.sampled_bytes));
      put32(out, ms_of(r.start_sec));                     // First
      put32(out, ms_of(r.end_sec));                       // Last
      put16(out, r.key.src_port);
      put16(out, r.key.dst_port);
      out.push_back(0);                                   // pad1
      out.push_back(0);                                   // tcp_flags
      out.push_back(r.key.proto);
      out.push_back(0);                                   // tos
      put16(out, 0);                                      // src_as
      put16(out, 0);                                      // dst_as
      out.push_back(0);                                   // src_mask
      out.push_back(0);                                   // dst_mask
      put16(out, 0);                                      // pad2
    }
    sequence += static_cast<std::uint32_t>(n);
    datagrams.push_back(std::move(out));
  }
  return datagrams;
}

V5Datagram decode_v5(const std::vector<std::uint8_t>& datagram) {
  NETMON_REQUIRE(datagram.size() >= kV5HeaderBytes,
                 "v5 datagram shorter than its header");
  V5Datagram out;
  out.header.version = get16(datagram, 0);
  NETMON_REQUIRE(out.header.version == 5, "not a NetFlow v5 datagram");
  out.header.count = get16(datagram, 2);
  NETMON_REQUIRE(out.header.count >= 1 && out.header.count <= kV5MaxRecords,
                 "v5 record count out of range");
  NETMON_REQUIRE(
      datagram.size() == kV5HeaderBytes + out.header.count * kV5RecordBytes,
      "v5 datagram size does not match its record count");
  out.header.sys_uptime_ms = get32(datagram, 4);
  out.header.unix_secs = get32(datagram, 8);
  out.header.flow_sequence = get32(datagram, 16);
  out.header.engine_id = datagram[21];
  out.header.sampling = get16(datagram, 22);

  for (std::size_t i = 0; i < out.header.count; ++i) {
    const std::size_t at = kV5HeaderBytes + i * kV5RecordBytes;
    FlowRecord r;
    r.key.src_ip = get32(datagram, at + 0);
    r.key.dst_ip = get32(datagram, at + 4);
    r.input_link = get16(datagram, at + 12);
    r.sampled_packets = get32(datagram, at + 16);
    r.sampled_bytes = get32(datagram, at + 20);
    r.start_sec = get32(datagram, at + 24) / 1000.0;
    r.end_sec = get32(datagram, at + 28) / 1000.0;
    r.key.src_port = get16(datagram, at + 32);
    r.key.dst_port = get16(datagram, at + 34);
    r.key.proto = datagram[at + 38];
    out.records.push_back(r);
  }
  return out;
}

double v5_sampling_rate(const V5Header& header) noexcept {
  const unsigned mode = header.sampling >> 14;
  const unsigned interval = header.sampling & 0x3fff;
  if (mode != 1 || interval == 0) return 0.0;
  return 1.0 / static_cast<double>(interval);
}

}  // namespace netmon::netflow
