#include "netflow/egress_map.hpp"

#include "traffic/flow.hpp"
#include "util/error.hpp"

namespace netmon::netflow {

struct EgressMap::TrieNode {
  std::unique_ptr<TrieNode> child[2];
  std::optional<topo::NodeId> egress;
};

EgressMap::EgressMap() : root_(std::make_unique<TrieNode>()) {}
EgressMap::~EgressMap() = default;
EgressMap::EgressMap(EgressMap&&) noexcept = default;
EgressMap& EgressMap::operator=(EgressMap&&) noexcept = default;

namespace {
// Bit i (0 = most significant) of an address.
inline int bit_at(net::Ipv4 addr, int i) { return (addr >> (31 - i)) & 1; }
}  // namespace

void EgressMap::insert(const net::Prefix& prefix, topo::NodeId egress) {
  NETMON_REQUIRE(prefix.len >= 0 && prefix.len <= 32,
                 "prefix length out of range");
  TrieNode* node = root_.get();
  for (int i = 0; i < prefix.len; ++i) {
    const int b = bit_at(prefix.base, i);
    if (!node->child[b]) node->child[b] = std::make_unique<TrieNode>();
    node = node->child[b].get();
  }
  if (!node->egress) ++size_;
  node->egress = egress;
}

std::optional<topo::NodeId> EgressMap::lookup(net::Ipv4 addr) const {
  const TrieNode* node = root_.get();
  std::optional<topo::NodeId> best = node->egress;
  for (int i = 0; i < 32 && node; ++i) {
    node = node->child[bit_at(addr, i)].get();
    if (node && node->egress) best = node->egress;
  }
  return best;
}

EgressMap EgressMap::for_pop_blocks(const topo::Graph& graph) {
  EgressMap map;
  for (const topo::Node& n : graph.nodes()) {
    map.insert(traffic::pop_prefix(n.id), n.id);
  }
  return map;
}

}  // namespace netmon::netflow
