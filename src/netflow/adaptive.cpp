#include "netflow/adaptive.hpp"

#include "util/error.hpp"

namespace netmon::netflow {

AdaptiveMonitor::AdaptiveMonitor(topo::LinkId link, double target_rate,
                                 AdaptiveOptions options,
                                 FlowTable::ExportFn sink, std::uint64_t seed)
    : target_(target_rate),
      rate_(target_rate),
      options_(options),
      rng_(seed),
      table_(link, options.table, std::move(sink)) {
  NETMON_REQUIRE(target_rate >= 0.0 && target_rate <= 1.0,
                 "target rate out of [0,1]");
  NETMON_REQUIRE(options_.backoff > 0.0 && options_.backoff < 1.0,
                 "backoff must lie in (0,1)");
  NETMON_REQUIRE(options_.entry_budget > 0, "entry budget must be positive");
  epochs_.push_back(RateEpoch{0, rate_, 0, 0});
}

bool AdaptiveMonitor::offer(const traffic::FlowKey& key, std::uint32_t bytes,
                            double timestamp_sec, bool fin) {
  ++offered_;
  epochs_.back().offered += 1;
  const bool take = rng_.bernoulli(rate_);
  if (take) {
    ++sampled_;
    epochs_.back().sampled += 1;
    table_.observe(key, bytes, timestamp_sec, fin);
    maybe_adapt();
  }
  return take;
}

void AdaptiveMonitor::maybe_adapt() {
  if (table_.size() <= options_.entry_budget) return;
  const double next = rate_ * options_.backoff;
  if (next < options_.min_rate) return;
  rate_ = next;
  epochs_.push_back(RateEpoch{offered_, rate_, 0, 0});
}

void AdaptiveMonitor::flush(double now_sec) { table_.flush(now_sec); }

double AdaptiveMonitor::estimated_offered() const {
  double sum = 0.0;
  for (const RateEpoch& epoch : epochs_) {
    if (epoch.rate > 0.0)
      sum += static_cast<double>(epoch.sampled) / epoch.rate;
  }
  return sum;
}

}  // namespace netmon::netflow
