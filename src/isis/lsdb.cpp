#include "isis/lsdb.hpp"

#include <limits>
#include <queue>

#include "util/error.hpp"

namespace netmon::isis {

LinkStateDb::LinkStateDb(const topo::Graph& graph)
    : graph_(graph),
      sequence_(graph.node_count(), 0),
      link_up_(graph.link_count()) {}

bool LinkStateDb::install(const Lsp& lsp) {
  NETMON_REQUIRE(lsp.origin < graph_.node_count(), "LSP origin out of range");
  for (const Adjacency& adj : lsp.adjacencies) {
    NETMON_REQUIRE(adj.link < graph_.link_count(), "LSP link out of range");
    NETMON_REQUIRE(graph_.link(adj.link).src == lsp.origin,
                   "LSP advertises a link it does not own: " +
                       graph_.link_name(adj.link));
  }
  if (lsp.sequence <= sequence_[lsp.origin]) return false;  // stale
  sequence_[lsp.origin] = lsp.sequence;
  // The LSP replaces the origin's full adjacency state: links it owns but
  // does not mention are implicitly down (withdrawn).
  for (topo::LinkId id : graph_.out_links(lsp.origin)) link_up_[id] = false;
  for (const Adjacency& adj : lsp.adjacencies) link_up_[adj.link] = adj.up;
  return true;
}

std::uint32_t LinkStateDb::sequence(topo::NodeId origin) const {
  NETMON_REQUIRE(origin < sequence_.size(), "origin out of range");
  return sequence_[origin];
}

bool LinkStateDb::complete() const {
  for (std::uint32_t seq : sequence_) {
    if (seq == 0) return false;
  }
  return true;
}

routing::LinkSet LinkStateDb::failed_links() const {
  routing::LinkSet failed;
  for (topo::LinkId id = 0; id < link_up_.size(); ++id) {
    if (link_up_[id].has_value() && !*link_up_[id]) failed.insert(id);
  }
  return failed;
}

std::vector<Lsp> LinkStateDb::full_database(const topo::Graph& graph,
                                            std::uint32_t sequence,
                                            const routing::LinkSet& down) {
  std::vector<Lsp> lsps;
  lsps.reserve(graph.node_count());
  for (const topo::Node& node : graph.nodes()) {
    Lsp lsp;
    lsp.origin = node.id;
    lsp.sequence = sequence;
    for (topo::LinkId id : graph.out_links(node.id)) {
      lsp.adjacencies.push_back(Adjacency{id, down.count(id) == 0});
    }
    lsps.push_back(std::move(lsp));
  }
  return lsps;
}

std::vector<double> flood_times(const topo::Graph& graph,
                                topo::NodeId origin, double hop_delay_sec,
                                const routing::LinkSet& failed) {
  NETMON_REQUIRE(origin < graph.node_count(), "flood origin out of range");
  NETMON_REQUIRE(hop_delay_sec >= 0.0, "hop delay must be non-negative");
  std::vector<double> when(graph.node_count(),
                           std::numeric_limits<double>::infinity());
  std::queue<topo::NodeId> queue;
  when[origin] = 0.0;
  queue.push(origin);
  while (!queue.empty()) {
    const topo::NodeId u = queue.front();
    queue.pop();
    for (topo::LinkId id : graph.out_links(u)) {
      if (failed.count(id)) continue;
      const topo::NodeId v = graph.link(id).dst;
      const double t = when[u] + hop_delay_sec;
      if (t < when[v]) {
        when[v] = t;
        queue.push(v);
      }
    }
  }
  return when;
}

}  // namespace netmon::isis
