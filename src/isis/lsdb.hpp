// IS-IS style link-state database.
//
// The paper's data plane "collect[s] in a continuous fashion BGP and ISIS
// updates" (§V-A): routing events arrive as link-state PDUs, and the
// placement must be recomputed on the topology view they imply. This
// module models that feed: per-router LSPs with sequence numbers, a
// database that keeps the freshest LSP per origin and derives the set of
// failed links, and a flooding-time model that bounds how stale a
// collector's view can be after an event.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/spf.hpp"
#include "topo/graph.hpp"

namespace netmon::isis {

/// One adjacency advertised in an LSP.
struct Adjacency {
  /// The link this adjacency corresponds to (origin -> neighbor).
  topo::LinkId link = topo::kInvalidId;
  /// Whether the adjacency is currently up.
  bool up = true;
};

/// A link-state PDU: one router's view of its own adjacencies.
struct Lsp {
  topo::NodeId origin = topo::kInvalidId;
  /// Freshness: a database only accepts an LSP with a higher sequence
  /// number than the one it holds for the same origin.
  std::uint32_t sequence = 0;
  std::vector<Adjacency> adjacencies;
};

/// The collector's link-state database.
class LinkStateDb {
 public:
  /// The database is anchored to a graph: LSPs may only describe links
  /// whose source is their origin node.
  explicit LinkStateDb(const topo::Graph& graph);

  /// Installs an LSP. Returns true when it is fresher than the stored
  /// one (higher sequence) and changes the database. Throws on LSPs that
  /// advertise links not owned by their origin.
  bool install(const Lsp& lsp);

  /// Sequence currently held for an origin (0 = none yet).
  std::uint32_t sequence(topo::NodeId origin) const;

  /// Whether the database holds an LSP from every node in the graph.
  bool complete() const;

  /// The failed-link view: every link whose adjacency is advertised down
  /// by the freshest LSP of its source. Links of nodes that never
  /// advertised are considered up (cold-start optimism, as in IS-IS
  /// before adjacency timeout).
  routing::LinkSet failed_links() const;

  /// Full LSP set describing the graph's current state, with the given
  /// sequence number and every adjacency up except those in `down`.
  static std::vector<Lsp> full_database(const topo::Graph& graph,
                                        std::uint32_t sequence = 1,
                                        const routing::LinkSet& down = {});

 private:
  const topo::Graph& graph_;
  std::vector<std::uint32_t> sequence_;        // per origin
  std::vector<std::optional<bool>> link_up_;   // per link id
};

/// Flooding model: the time at which each node receives an LSP
/// originated at `origin`, assuming per-hop processing+propagation delay
/// `hop_delay_sec` and flooding over all operational links. Unreachable
/// nodes get +inf.
std::vector<double> flood_times(const topo::Graph& graph,
                                topo::NodeId origin, double hop_delay_sec,
                                const routing::LinkSet& failed = {});

}  // namespace netmon::isis
