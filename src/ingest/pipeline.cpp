#include "ingest/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "sampling/effective_rate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace netmon::ingest {

namespace {

std::vector<double> pow2_bounds(double lo, double hi) {
  std::vector<double> bounds;
  for (double b = lo; b <= hi; b *= 2.0) bounds.push_back(b);
  return bounds;
}

}  // namespace

/// Everything keyed by one source (== one monitored-link stream). The
/// producer side touches source/ring-push/produced; the consumer side
/// touches ring-pop/sampler/table/exported/consumed — never both, so no
/// field needs locking.
struct IngestPipeline::SourceState {
  explicit SourceState(sampling::LinkSampler link_sampler)
      : sampler(std::move(link_sampler)) {}

  std::unique_ptr<PacketSource> source;
  std::unique_ptr<SpscRing<PacketRecord>> ring;
  sampling::LinkSampler sampler;
  std::unique_ptr<netflow::FlowTable> table;
  std::vector<netflow::FlowRecord> exported;
  topo::LinkId link = topo::kInvalidId;
  double rate = 0.0;
  double last_ts = 0.0;
  std::uint64_t produced = 0;
  std::uint64_t consumed = 0;
  std::uint64_t sampled = 0;
};

IngestPipeline::IngestPipeline(const sampling::RateVector& rates,
                               const netflow::EgressMap& egress,
                               IngestOptions options, IngestDeps deps)
    : rates_(rates),
      options_(options),
      deps_(deps),
      collector_(egress, options.collector) {
  NETMON_REQUIRE(options_.batch > 0, "batch size must be positive");
  if (deps_.metrics != nullptr) {
    obs::MetricsRegistry& m = *deps_.metrics;
    packets_total_ = m.counter("netmon_ingest_packets_total",
                               "packets emitted by all sources");
    sampled_total_ = m.counter("netmon_ingest_sampled_total",
                               "packets sampled into flow tables");
    dropped_total_ = m.counter("netmon_ingest_dropped_total",
                               "packets dropped on ring overflow");
    batches_total_ = m.counter("netmon_ingest_batches_total",
                               "consumer batches processed");
    exported_total_ = m.counter("netmon_ingest_exported_records_total",
                                "flow records exported to the collector");
    ring_occupancy_ =
        m.histogram("netmon_ingest_ring_occupancy",
                    pow2_bounds(1.0, 65536.0), "ring depth after a push");
    produce_batch_ns_ =
        m.histogram("netmon_ingest_produce_batch_ns",
                    pow2_bounds(256.0, 16777216.0),
                    "source next_batch latency");
    consume_batch_ns_ =
        m.histogram("netmon_ingest_consume_batch_ns",
                    pow2_bounds(256.0, 16777216.0),
                    "sample+fold latency per consumed batch");
    packets_per_sec_ = m.gauge("netmon_ingest_pkts_per_sec",
                               "sustained ingest throughput of the run");
  }
}

IngestPipeline::~IngestPipeline() = default;

void IngestPipeline::add_source(std::unique_ptr<PacketSource> source) {
  NETMON_REQUIRE(!ran_, "pipeline already ran");
  NETMON_REQUIRE(source != nullptr, "null source");
  const topo::LinkId link = source->link();
  NETMON_REQUIRE(link < rates_.size() && rates_[link] > 0.0,
                 "source link has no sampling rate in force");

  const Rng root(options_.seed);
  auto state = std::make_unique<SourceState>(sampling::LinkSampler(
      options_.sampler, rates_[link], root.substream(link)()));
  state->link = link;
  state->rate = rates_[link];
  state->source = std::move(source);
  state->ring = std::make_unique<SpscRing<PacketRecord>>(
      ring_capacity_from_env(options_.ring_capacity));
  SourceState* raw = state.get();
  state->table = std::make_unique<netflow::FlowTable>(
      link, options_.flow_table,
      [raw](const netflow::FlowRecord& record) {
        raw->exported.push_back(record);
      });
  if (options_.expected_flows_per_link > 0) {
    state->table->reserve(options_.expected_flows_per_link);
    state->exported.reserve(2 * options_.expected_flows_per_link);
  }
  sources_.push_back(std::move(state));
}

void IngestPipeline::add_sources(
    std::vector<std::unique_ptr<PacketSource>> sources) {
  for (auto& source : sources) add_source(std::move(source));
}

void IngestPipeline::producer_loop(std::size_t producer_index,
                                   unsigned producer_count) {
  const obs::Clock* clock = deps_.clock;
  std::vector<PacketRecord> buffer(options_.batch);
  // Pending [off, len) of `buffer` per owned source would force one
  // buffer each; instead each source keeps its own staging vector only
  // under the blocking policy where partial pushes can strand records.
  struct Slot {
    SourceState* state = nullptr;
    std::vector<PacketRecord> pending;
    std::size_t off = 0;
  };
  std::vector<Slot> slots;
  for (std::size_t i = producer_index; i < sources_.size();
       i += producer_count) {
    Slot slot;
    slot.state = sources_[i].get();
    slot.pending.reserve(options_.batch);
    slots.push_back(std::move(slot));
  }

  for (;;) {
    bool progress = false;
    bool done = true;
    for (Slot& slot : slots) {
      SourceState& s = *slot.state;
      // Refill the slot's staging batch from the source.
      if (slot.off == slot.pending.size() && !s.source->exhausted()) {
        const auto t0 = (produce_batch_ns_ && clock != nullptr)
                            ? clock->now()
                            : obs::TimePoint{};
        const std::size_t n =
            s.source->next_batch(buffer.data(), options_.batch);
        if (produce_batch_ns_ && clock != nullptr)
          produce_batch_ns_.observe(static_cast<double>(
              obs::to_ns(clock->now()) - obs::to_ns(t0)));
        if (n > 0) {
          slot.pending.assign(buffer.begin(),
                              buffer.begin() + static_cast<long>(n));
          slot.off = 0;
          s.produced += n;
          packets_total_.inc(n);
          progress = true;
        }
      }
      // Move staged records into the ring under the overflow policy.
      if (slot.off < slot.pending.size()) {
        const std::size_t want = slot.pending.size() - slot.off;
        std::size_t moved;
        if (options_.overflow == OverflowPolicy::kDrop) {
          moved = s.ring->push_or_drop(slot.pending.data() + slot.off, want);
          slot.off = slot.pending.size();  // overflow is gone, counted
        } else {
          moved = s.ring->try_push(slot.pending.data() + slot.off, want);
          slot.off += moved;
        }
        if (moved > 0) {
          progress = true;
          if (ring_occupancy_)
            ring_occupancy_.observe(static_cast<double>(s.ring->size()));
        }
      }
      if (!(s.source->exhausted() && slot.off == slot.pending.size()))
        done = false;
    }
    if (done) break;
    if (!progress) std::this_thread::yield();
  }
  producers_running_.fetch_sub(1, std::memory_order_acq_rel);
}

void IngestPipeline::process_batch(SourceState& state,
                                   const PacketRecord* records,
                                   std::size_t count) {
  const obs::Clock* clock = deps_.clock;
  const auto t0 = (consume_batch_ns_ && clock != nullptr) ? clock->now()
                                                          : obs::TimePoint{};
  std::uint64_t sampled = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const PacketRecord& record = records[i];
    // Monotonic clamp: the flow table requires non-decreasing time.
    const double ts = std::max(record.ts_sec, state.last_ts);
    state.last_ts = ts;
    if (state.sampler.sample()) {
      state.table->observe(record.key, record.bytes, ts, record.fin());
      ++sampled;
    }
  }
  state.consumed += count;
  state.sampled += sampled;
  batches_total_.inc();
  sampled_total_.inc(sampled);
  if (consume_batch_ns_ && clock != nullptr)
    consume_batch_ns_.observe(
        static_cast<double>(obs::to_ns(clock->now()) - obs::to_ns(t0)));
}

void IngestPipeline::consumer_loop(std::size_t shard_index,
                                   unsigned shard_count) {
  std::vector<PacketRecord> buffer(options_.batch);
  std::vector<SourceState*> owned;
  for (std::size_t i = shard_index; i < sources_.size(); i += shard_count)
    owned.push_back(sources_[i].get());

  for (;;) {
    // Read the producer count BEFORE scanning the rings: every push
    // happens-before the final decrement, so "no producers left" plus a
    // subsequent empty scan means the rings are drained for good.
    const bool producers_done =
        producers_running_.load(std::memory_order_acquire) == 0;
    bool progress = false;
    for (SourceState* state : owned) {
      const std::size_t n =
          state->ring->pop(buffer.data(), options_.batch);
      if (n == 0) continue;
      progress = true;
      process_batch(*state, buffer.data(), n);
    }
    if (progress) continue;
    if (producers_done) break;
    std::this_thread::yield();
  }
  // End of stream: expire and export everything still cached.
  for (SourceState* state : owned) state->table->flush(state->last_ts);
}

IngestStats IngestPipeline::run() {
  NETMON_REQUIRE(!ran_, "IngestPipeline::run is one-shot");
  ran_ = true;
  const obs::Clock& clock =
      deps_.clock != nullptr ? *deps_.clock : obs::Clock::system();
  const obs::TimePoint t0 = clock.now();

  stats_ = {};
  stats_.sources = sources_.size();
  if (!sources_.empty()) {
    const auto n = static_cast<unsigned>(sources_.size());
    const unsigned producers = std::clamp(options_.producers, 1u, n);
    unsigned shards = 1;
    if (deps_.pool != nullptr) {
      const unsigned want =
          options_.consumers != 0 ? options_.consumers : deps_.pool->size();
      shards = std::clamp(want, 1u, std::min(deps_.pool->size(), n));
    }
    stats_.producer_threads = producers;
    stats_.consumer_shards = shards;
    producers_running_.store(producers, std::memory_order_release);

    if (deps_.pool != nullptr) {
      // Consumers first (pool), then producers (dedicated threads, as a
      // capture NIC would be); the caller helps drain via wait().
      runtime::TaskGroup group(*deps_.pool);
      for (unsigned c = 0; c < shards; ++c)
        group.run([this, c, shards] { consumer_loop(c, shards); });
      std::vector<std::thread> threads;
      threads.reserve(producers);
      for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back(
            [this, p, producers] { producer_loop(p, producers); });
      for (std::thread& t : threads) t.join();
      group.wait();
    } else {
      // Inline mode: no threads at all — producers and the single
      // consumer shard interleave on the caller (rings still in path).
      std::vector<std::thread> threads;
      threads.reserve(producers);
      for (unsigned p = 0; p < producers; ++p)
        threads.emplace_back(
            [this, p, producers] { producer_loop(p, producers); });
      consumer_loop(0, 1);
      for (std::thread& t : threads) t.join();
    }
  }

  // Single-threaded tail: feed the collector in source order (the
  // aggregation is commutative, so this order is presentational only).
  for (const auto& state : sources_) {
    for (const netflow::FlowRecord& record : state->exported)
      collector_.receive(record, state->link, state->rate);
    stats_.exported_records += state->exported.size();
    stats_.offered_packets += state->produced;
    stats_.consumed_packets += state->consumed;
    stats_.sampled_packets += state->sampled;
    stats_.dropped_packets += state->ring->dropped();
  }
  exported_total_.inc(stats_.exported_records);
  dropped_total_.inc(stats_.dropped_packets);

  stats_.elapsed_sec =
      std::chrono::duration<double>(clock.now() - t0).count();
  stats_.packets_per_sec =
      stats_.elapsed_sec > 0.0
          ? static_cast<double>(stats_.consumed_packets) / stats_.elapsed_sec
          : 0.0;
  packets_per_sec_.set(stats_.packets_per_sec);
  return stats_;
}

std::vector<double> od_rate_estimates(const netflow::Collector& collector,
                                      const routing::RoutingMatrix& matrix,
                                      const sampling::RateVector& rates,
                                      std::int64_t bin, double bin_sec) {
  NETMON_REQUIRE(bin_sec > 0.0, "bin length must be positive");
  const std::vector<double> rhos =
      sampling::effective_rates_approx(matrix, rates);
  std::vector<double> estimates(matrix.od_count(), kNoEstimate);
  for (std::size_t k = 0; k < matrix.od_count(); ++k) {
    if (rhos[k] <= 1e-12) continue;
    const std::uint64_t sampled =
        collector.sampled_packets(bin, matrix.od(k));
    estimates[k] =
        static_cast<double>(sampled) / (rhos[k] * bin_sec);
  }
  return estimates;
}

}  // namespace netmon::ingest
