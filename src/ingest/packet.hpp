// The ingest pipeline's unit of work: one packet observation on one
// monitored link, reduced to exactly what the sampling + flow-cache
// stages consume (5-tuple, wire size, timestamp, FIN flag).
//
// PacketRecord is trivially copyable by design — records travel through
// lock-free SPSC rings (ingest/spsc_ring.hpp) as raw memcpy'd slots, and
// a pcap trace (ingest/trace.hpp) round-trips through the same struct.
#pragma once

#include <cstdint>
#include <type_traits>

#include "traffic/flow.hpp"

namespace netmon::ingest {

/// Flag bits for PacketRecord::flags.
inline constexpr std::uint8_t kPacketFin = 0x01;

/// One packet observation, as offered to a link monitor.
struct PacketRecord {
  /// The 5-tuple the flow cache keys on.
  traffic::FlowKey key;
  /// Wire size in bytes.
  std::uint32_t bytes = 0;
  /// kPacketFin marks TCP FIN/RST (immediate flow expiry downstream).
  std::uint8_t flags = 0;
  /// Observation timestamp, seconds since the start of the replayed
  /// interval. Sources emit non-decreasing timestamps per link.
  double ts_sec = 0.0;

  bool fin() const noexcept { return (flags & kPacketFin) != 0; }
};

static_assert(std::is_trivially_copyable_v<PacketRecord>,
              "PacketRecord crosses SPSC rings as raw bytes");

}  // namespace netmon::ingest
