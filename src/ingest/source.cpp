#include "ingest/source.hpp"

#include <cstdlib>
#include <string>

namespace netmon::ingest {

std::size_t ring_capacity_from_env(std::size_t configured,
                                   std::size_t fallback) noexcept {
  constexpr std::size_t kMin = 2;
  constexpr std::size_t kMax = std::size_t{1} << 24;
  std::size_t value = configured;
  if (value == 0) {
    value = fallback;
    if (const char* env = std::getenv("NETMON_INGEST_RING")) {
      char* end = nullptr;
      const long long parsed = std::strtoll(env, &end, 10);
      if (end != env && *end == '\0' && parsed > 0)
        value = static_cast<std::size_t>(parsed);
    }
  }
  if (value < kMin) value = kMin;
  if (value > kMax) value = kMax;
  return value;
}

}  // namespace netmon::ingest
