// Pcap-format trace replay: the "real traffic" half of the source layer.
//
// Writer: encode_trace / write_trace serialize PacketRecords as a
// classic little-endian pcap file (LINKTYPE_IPV4, microsecond
// timestamps) whose packets carry a minimal IPv4 + TCP/UDP header — just
// enough wire format to round-trip the 5-tuple, sizes, and FIN flags.
//
// Reader: TraceReader validates the *entire framing* up front (magic,
// endianness, version, per-record lengths against both the snaplen and
// the bytes actually present) and throws netmon::Error on any
// violation, so replay itself never throws and never reads past a
// buffer — the fuzz tests in tests/ingest_trace_test.cpp feed it
// truncations, bad magics, and over-long caplens. Packets whose payload
// is not parseable IPv4 are counted in malformed_packets() and skipped;
// framing stays intact so one bad payload never desynchronizes the
// stream.
//
// Pacing: with speed > 0 the reader releases packets as the injected
// obs::Clock advances — `speed` trace-seconds per clock-second — so a
// ManualClock replays a trace deterministically (tests, the
// ingest_replay example) and the system clock replays it in real time.
// speed == 0 replays as fast as the consumer can drain.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ingest/source.hpp"
#include "obs/clock.hpp"

namespace netmon::ingest {

/// Pcap magics (little-endian on disk; byte-swapped variants accepted).
inline constexpr std::uint32_t kPcapMagicUsec = 0xa1b2c3d4;
inline constexpr std::uint32_t kPcapMagicNsec = 0xa1b23c4d;
/// LINKTYPE_IPV4: packets begin directly with the IPv4 header.
inline constexpr std::uint32_t kLinkTypeIpv4 = 228;
/// Hard cap on any capture length the reader will accept.
inline constexpr std::uint32_t kMaxCaplen = 65535;

/// Serializes records as a pcap byte stream (timestamps are taken as
/// seconds since the pcap epoch; callers replaying one measurement
/// interval just use interval-relative times).
std::vector<std::uint8_t> encode_trace(std::span<const PacketRecord> packets);

/// encode_trace straight to a file. Throws netmon::Error on I/O failure.
void write_trace(const std::string& path,
                 std::span<const PacketRecord> packets);

/// Replay options.
struct TraceReadOptions {
  /// The monitored link this trace belongs to.
  topo::LinkId link = 0;
  /// Trace-seconds released per clock-second; 0 = unpaced.
  double speed = 0.0;
  /// Pacing clock; null = the process steady clock. Borrowed.
  const obs::Clock* clock = nullptr;
};

/// Pcap replay source. Construction validates all framing (throws
/// netmon::Error); next_batch never throws.
class TraceReader final : public PacketSource {
 public:
  TraceReader(std::vector<std::uint8_t> bytes, TraceReadOptions options = {});

  /// Reads the whole file into memory (buffered replay) and validates.
  static TraceReader from_file(const std::string& path,
                               TraceReadOptions options = {});

  topo::LinkId link() const noexcept override { return options_.link; }
  std::size_t next_batch(PacketRecord* out, std::size_t max) override;
  bool exhausted() const noexcept override { return cursor_ >= bytes_.size(); }

  /// Frames validated at construction.
  std::uint64_t frame_count() const noexcept { return frames_; }
  /// Frames skipped during replay because the payload was not
  /// parseable IPv4 (framing itself was valid).
  std::uint64_t malformed_packets() const noexcept { return malformed_; }

 private:
  /// Validates the global header + every record frame; throws on error.
  void validate();
  /// Decodes the frame at `offset` (framing pre-validated); returns
  /// false when the payload is not parseable IPv4.
  bool decode_frame(std::size_t offset, PacketRecord* out) const noexcept;

  std::vector<std::uint8_t> bytes_;
  TraceReadOptions options_;
  bool swapped_ = false;
  bool nanos_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t malformed_ = 0;
  std::size_t cursor_ = 0;  // next frame offset
  double last_ts_ = 0.0;    // monotonic clamp
  // Pacing state, latched on the first next_batch call.
  bool pacing_started_ = false;
  obs::TimePoint pace_start_{};
  double first_ts_ = 0.0;
};

}  // namespace netmon::ingest
