#include "ingest/synthetic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace netmon::ingest {

namespace {

/// Deterministic per-(flow, link) coin for fractional (ECMP) routing
/// entries: mixes the flow-key hash with the link id so the same flow
/// resolves consistently on every run.
bool flow_crosses(const traffic::FlowKey& key, topo::LinkId link,
                  double fraction) noexcept {
  if (fraction >= 1.0) return true;
  std::uint64_t h = traffic::FlowKeyHash{}(key);
  h ^= (static_cast<std::uint64_t>(link) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  const double u =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u < fraction;
}

}  // namespace

/// Replays one link's schedule: a min-heap over the active spans keyed
/// by next emission time, activated lazily in start order. No allocation
/// after construction (the heap vector is reserved to the span count).
class SyntheticLinkSource final : public PacketSource {
 public:
  SyntheticLinkSource(topo::LinkId link,
                      const std::vector<SyntheticTraffic::PacketSpan>* spans)
      : link_(link), spans_(spans) {
    heap_.reserve(spans_->size());
  }

  topo::LinkId link() const noexcept override { return link_; }

  std::size_t next_batch(PacketRecord* out, std::size_t max) override {
    const auto& spans = *spans_;
    std::size_t n = 0;
    while (n < max) {
      // Activate every span due at or before the emission front; with an
      // empty heap the front is the next span's own start.
      while (next_span_ < spans.size() &&
             (heap_.empty() ||
              spans[next_span_].start_sec <= heap_.front().next_ts)) {
        heap_.push_back(Active{spans[next_span_].start_sec,
                               static_cast<std::uint32_t>(next_span_),
                               spans[next_span_].packets});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        ++next_span_;
      }
      if (heap_.empty()) break;

      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Active& active = heap_.back();
      const SyntheticTraffic::PacketSpan& span = spans[active.span];
      PacketRecord& record = out[n++];
      record.key = span.key;
      record.bytes = span.pkt_bytes;
      record.flags =
          (span.fin_last && active.remaining == 1) ? kPacketFin : 0;
      record.ts_sec = active.next_ts;
      if (--active.remaining == 0) {
        heap_.pop_back();
      } else {
        active.next_ts += span.dt_sec;
        std::push_heap(heap_.begin(), heap_.end(), Later{});
      }
    }
    return n;
  }

  bool exhausted() const noexcept override {
    return heap_.empty() && next_span_ >= spans_->size();
  }

 private:
  struct Active {
    double next_ts = 0.0;
    std::uint32_t span = 0;
    std::uint32_t remaining = 0;
  };
  /// Min-heap order on (time, span index) — the index tie-break keeps
  /// the emission order fully deterministic.
  struct Later {
    bool operator()(const Active& a, const Active& b) const noexcept {
      if (a.next_ts != b.next_ts) return a.next_ts > b.next_ts;
      return a.span > b.span;
    }
  };

  topo::LinkId link_;
  const std::vector<SyntheticTraffic::PacketSpan>* spans_;
  std::vector<Active> heap_;
  std::size_t next_span_ = 0;
};

SyntheticTraffic::SyntheticTraffic(const routing::RoutingMatrix& matrix,
                                   const traffic::TrafficMatrix& tm,
                                   SyntheticOptions options)
    : options_(options), spans_(matrix.link_count()) {
  NETMON_REQUIRE(tm.size() == matrix.od_count(),
                 "traffic matrix rows must match routing-matrix ODs");
  Rng rng(options_.seed);
  flows_ = traffic::generate_all_flows(rng, tm, options_.flowgen);

  for (std::size_t k = 0; k < flows_.size(); ++k) {
    const auto row = matrix.row(k);
    for (const traffic::Flow& flow : flows_[k]) {
      PacketSpan span;
      span.key = flow.key;
      span.packets = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(flow.packets, 0xffffffffULL));
      if (span.packets == 0) continue;
      span.pkt_bytes = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(flow.bytes / flow.packets,
                                  options_.min_packet_bytes));
      span.start_sec = flow.start_sec;
      span.dt_sec = flow.end_sec > flow.start_sec
                        ? (flow.end_sec - flow.start_sec) / span.packets
                        : 0.0;
      span.fin_last = flow.key.proto == 6;  // TCP closes with FIN
      for (const auto& [column, fraction] : row) {
        const auto link = static_cast<topo::LinkId>(column);
        if (!flow_crosses(flow.key, link, fraction)) continue;
        spans_[link].push_back(span);
      }
    }
  }
  for (auto& link_spans : spans_) {
    std::stable_sort(link_spans.begin(), link_spans.end(),
                     [](const PacketSpan& a, const PacketSpan& b) {
                       return a.start_sec < b.start_sec;
                     });
  }
}

std::unique_ptr<PacketSource> SyntheticTraffic::source(
    topo::LinkId link) const {
  NETMON_REQUIRE(link < spans_.size(), "link id out of range");
  return std::make_unique<SyntheticLinkSource>(link, &spans_[link]);
}

std::vector<std::unique_ptr<PacketSource>> SyntheticTraffic::sources(
    const sampling::RateVector& rates) const {
  std::vector<std::unique_ptr<PacketSource>> out;
  for (std::size_t link = 0; link < spans_.size(); ++link) {
    if (link >= rates.size() || rates[link] <= 0.0) continue;
    if (spans_[link].empty()) continue;
    out.push_back(source(static_cast<topo::LinkId>(link)));
  }
  return out;
}

std::uint64_t SyntheticTraffic::packets_on(topo::LinkId link) const {
  NETMON_REQUIRE(link < spans_.size(), "link id out of range");
  std::uint64_t total = 0;
  for (const PacketSpan& span : spans_[link]) total += span.packets;
  return total;
}

}  // namespace netmon::ingest
