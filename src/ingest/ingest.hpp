// Umbrella header for the packet ingest subsystem: sources (pcap trace
// replay, synthetic traffic-model generators), SPSC rings, and the
// pipeline that folds sampled packets into per-link flow tables and
// feeds the collector/estimator chain. See DESIGN.md §12.
#pragma once

#include "ingest/packet.hpp"     // IWYU pragma: export
#include "ingest/pipeline.hpp"   // IWYU pragma: export
#include "ingest/source.hpp"     // IWYU pragma: export
#include "ingest/spsc_ring.hpp"  // IWYU pragma: export
#include "ingest/synthetic.hpp"  // IWYU pragma: export
#include "ingest/trace.hpp"      // IWYU pragma: export
