#include "ingest/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"

namespace netmon::ingest {

namespace {

constexpr std::size_t kGlobalHeaderBytes = 24;
constexpr std::size_t kFrameHeaderBytes = 16;
constexpr std::size_t kIpv4HeaderBytes = 20;
constexpr std::size_t kTcpHeaderBytes = 20;
constexpr std::size_t kUdpHeaderBytes = 8;

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t read_u32le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint32_t bswap32(std::uint32_t v) noexcept {
  return (v >> 24) | ((v >> 8) & 0xff00u) | ((v << 8) & 0xff0000u) |
         (v << 24);
}

std::uint16_t read_u16be(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t read_u32be(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::size_t l4_header_bytes(std::uint8_t proto) noexcept {
  if (proto == 6) return kTcpHeaderBytes;
  if (proto == 17) return kUdpHeaderBytes;
  return 0;
}

}  // namespace

std::vector<std::uint8_t> encode_trace(
    std::span<const PacketRecord> packets) {
  std::vector<std::uint8_t> out;
  std::size_t payload = 0;
  for (const PacketRecord& r : packets)
    payload += kIpv4HeaderBytes + l4_header_bytes(r.key.proto);
  out.reserve(kGlobalHeaderBytes +
              packets.size() * kFrameHeaderBytes + payload);

  put_u32le(out, kPcapMagicUsec);
  put_u16le(out, 2);  // version major
  put_u16le(out, 4);  // version minor
  put_u32le(out, 0);  // thiszone
  put_u32le(out, 0);  // sigfigs
  put_u32le(out, kMaxCaplen);
  put_u32le(out, kLinkTypeIpv4);

  for (const PacketRecord& r : packets) {
    const std::size_t header_bytes =
        kIpv4HeaderBytes + l4_header_bytes(r.key.proto);
    const auto caplen = static_cast<std::uint32_t>(header_bytes);
    const std::uint32_t orig_len = std::max(r.bytes, caplen);
    const double ts = std::max(r.ts_sec, 0.0);
    const auto sec = static_cast<std::uint32_t>(ts);
    const auto usec = std::min<std::uint32_t>(
        static_cast<std::uint32_t>((ts - sec) * 1e6), 999999);

    put_u32le(out, sec);
    put_u32le(out, usec);
    put_u32le(out, caplen);
    put_u32le(out, orig_len);

    // IPv4 header carrying the flow key.
    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // TOS
    put_u16be(out, static_cast<std::uint16_t>(
                       std::min<std::uint32_t>(orig_len, 0xffff)));
    put_u16be(out, 0);  // identification
    put_u16be(out, 0);  // flags/fragment
    out.push_back(64);  // TTL
    out.push_back(r.key.proto);
    put_u16be(out, 0);  // checksum (not validated by the reader)
    put_u32be(out, r.key.src_ip);
    put_u32be(out, r.key.dst_ip);

    if (r.key.proto == 6) {
      put_u16be(out, r.key.src_port);
      put_u16be(out, r.key.dst_port);
      put_u32be(out, 0);  // seq
      put_u32be(out, 0);  // ack
      out.push_back(0x50);  // data offset 5
      out.push_back(static_cast<std::uint8_t>(0x10 | (r.fin() ? 0x01 : 0)));
      put_u16be(out, 0xffff);  // window
      put_u16be(out, 0);       // checksum
      put_u16be(out, 0);       // urgent
    } else if (r.key.proto == 17) {
      put_u16be(out, r.key.src_port);
      put_u16be(out, r.key.dst_port);
      put_u16be(out, static_cast<std::uint16_t>(
                         std::min<std::uint32_t>(orig_len, 0xffff)));
      put_u16be(out, 0);  // checksum
    }
  }
  return out;
}

void write_trace(const std::string& path,
                 std::span<const PacketRecord> packets) {
  const std::vector<std::uint8_t> bytes = encode_trace(packets);
  std::FILE* file = std::fopen(path.c_str(), "wb");
  NETMON_REQUIRE(file != nullptr, "cannot open trace file for writing: " + path);
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  NETMON_REQUIRE(written == bytes.size(), "short write to " + path);
}

TraceReader::TraceReader(std::vector<std::uint8_t> bytes,
                         TraceReadOptions options)
    : bytes_(std::move(bytes)), options_(options) {
  validate();
}

TraceReader TraceReader::from_file(const std::string& path,
                                   TraceReadOptions options) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  NETMON_REQUIRE(file != nullptr, "cannot open trace file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  std::fclose(file);
  return TraceReader(std::move(bytes), options);
}

void TraceReader::validate() {
  NETMON_REQUIRE(bytes_.size() >= kGlobalHeaderBytes,
                 "pcap shorter than its global header");
  const std::uint32_t magic = read_u32le(bytes_.data());
  if (magic == kPcapMagicUsec || magic == kPcapMagicNsec) {
    swapped_ = false;
  } else if (bswap32(magic) == kPcapMagicUsec ||
             bswap32(magic) == kPcapMagicNsec) {
    swapped_ = true;
  } else {
    throw Error("pcap magic not recognized");
  }
  const std::uint32_t native = swapped_ ? bswap32(magic) : magic;
  nanos_ = native == kPcapMagicNsec;

  auto u32 = [&](std::size_t at) {
    const std::uint32_t v = read_u32le(bytes_.data() + at);
    return swapped_ ? bswap32(v) : v;
  };
  const std::uint32_t snaplen = std::min(u32(16), kMaxCaplen);
  const std::uint32_t linktype = u32(20);
  NETMON_REQUIRE(linktype == kLinkTypeIpv4,
                 "unsupported pcap linktype (expected LINKTYPE_IPV4)");

  // Walk every frame: a record header must be complete, its caplen must
  // respect both the snaplen and the bytes actually remaining, and the
  // original length must cover the captured slice. Any violation rejects
  // the whole trace — replay never has to bounds-check again.
  std::size_t offset = kGlobalHeaderBytes;
  while (offset < bytes_.size()) {
    NETMON_REQUIRE(bytes_.size() - offset >= kFrameHeaderBytes,
                   "truncated pcap record header");
    const std::uint32_t caplen = u32(offset + 8);
    const std::uint32_t orig_len = u32(offset + 12);
    NETMON_REQUIRE(caplen <= snaplen, "pcap caplen exceeds snaplen");
    NETMON_REQUIRE(caplen <= bytes_.size() - offset - kFrameHeaderBytes,
                   "pcap record body truncated");
    NETMON_REQUIRE(orig_len >= caplen,
                   "pcap original length below captured length");
    offset += kFrameHeaderBytes + caplen;
    ++frames_;
  }
  cursor_ = kGlobalHeaderBytes;
}

bool TraceReader::decode_frame(std::size_t offset,
                               PacketRecord* out) const noexcept {
  auto u32 = [&](std::size_t at) {
    const std::uint32_t v = read_u32le(bytes_.data() + at);
    return swapped_ ? bswap32(v) : v;
  };
  const std::uint32_t sec = u32(offset);
  const std::uint32_t sub = u32(offset + 4);
  const std::uint32_t caplen = u32(offset + 8);
  const std::uint32_t orig_len = u32(offset + 12);
  const std::uint8_t* body = bytes_.data() + offset + kFrameHeaderBytes;

  if (caplen < kIpv4HeaderBytes) return false;
  if ((body[0] >> 4) != 4) return false;
  const std::size_t ihl = static_cast<std::size_t>(body[0] & 0x0f) * 4;
  if (ihl < kIpv4HeaderBytes || ihl > caplen) return false;

  PacketRecord record;
  record.key.proto = body[9];
  record.key.src_ip = read_u32be(body + 12);
  record.key.dst_ip = read_u32be(body + 16);
  const std::size_t l4 = l4_header_bytes(record.key.proto);
  if (l4 != 0 && caplen >= ihl + 4) {
    record.key.src_port = read_u16be(body + ihl);
    record.key.dst_port = read_u16be(body + ihl + 2);
  }
  if (record.key.proto == 6 && caplen >= ihl + 14)
    record.flags = (body[ihl + 13] & 0x01) != 0 ? kPacketFin : 0;
  record.bytes = orig_len;
  record.ts_sec =
      static_cast<double>(sec) + (nanos_ ? sub * 1e-9 : sub * 1e-6);
  *out = record;
  return true;
}

std::size_t TraceReader::next_batch(PacketRecord* out, std::size_t max) {
  auto u32 = [&](std::size_t at) {
    const std::uint32_t v = read_u32le(bytes_.data() + at);
    return swapped_ ? bswap32(v) : v;
  };

  double allowed_ts = 0.0;
  if (options_.speed > 0.0) {
    const obs::Clock& clock =
        options_.clock != nullptr ? *options_.clock : obs::Clock::system();
    if (!pacing_started_) {
      pacing_started_ = true;
      pace_start_ = clock.now();
      // The pace origin is the first frame's timestamp.
      if (cursor_ < bytes_.size()) {
        PacketRecord probe;
        (void)decode_frame(cursor_, &probe);
        first_ts_ = probe.ts_sec;
      }
    }
    const double elapsed =
        std::chrono::duration<double>(clock.now() - pace_start_).count();
    allowed_ts = first_ts_ + elapsed * options_.speed;
  }

  std::size_t n = 0;
  while (n < max && cursor_ < bytes_.size()) {
    PacketRecord record;
    const bool parsed = decode_frame(cursor_, &record);
    if (parsed && options_.speed > 0.0 && record.ts_sec > allowed_ts)
      break;  // not due yet; the frame stays for the next call
    cursor_ += kFrameHeaderBytes + u32(cursor_ + 8);
    if (!parsed) {
      ++malformed_;
      continue;
    }
    // Monotonic clamp: a well-behaved PacketSource never goes backwards
    // even if the trace on disk does.
    last_ts_ = std::max(last_ts_, record.ts_sec);
    record.ts_sec = last_ts_;
    out[n++] = record;
  }
  return n;
}

}  // namespace netmon::ingest
