// Deterministic synthetic packet sources driven by the traffic models.
//
// SyntheticTraffic expands a traffic matrix (gravity / fan-out, any
// TrafficMatrix) into per-OD flow populations via traffic::
// generate_flows, routes each flow over the routing matrix, and builds
// one per-link *packet schedule*: the time-ordered stream of packets
// crossing that link during one measurement interval. A
// SyntheticLinkSource then replays a link's schedule as PacketRecord
// batches with an O(log active-flows) heap merge — allocation-free after
// construction, which is what lets the ingest bench sustain millions of
// packets per second per producer.
//
// Determinism: the flow populations are a pure function of (seed,
// traffic matrix) — generate_all_flows derives one Rng stream per OD —
// and each link's schedule replays in a fixed order, so the packet
// stream a link's monitor sees is identical across runs, producer
// partitions, and consumer thread counts. Fractional (ECMP) routing
// entries are resolved per (flow, link) by hashing the flow key: a flow
// either crosses a link or it does not, reproducibly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ingest/source.hpp"
#include "routing/routing_matrix.hpp"
#include "sampling/effective_rate.hpp"
#include "traffic/flow_generator.hpp"

namespace netmon::ingest {

/// Synthetic generation knobs.
struct SyntheticOptions {
  /// Flow population shape (interval length, Pareto sizes).
  traffic::FlowGenOptions flowgen;
  /// Seed for the flow populations (per-OD streams derive from it).
  std::uint64_t seed = 42;
  /// Floor on the derived per-packet wire size.
  std::uint32_t min_packet_bytes = 40;
};

/// One interval of network-wide synthetic traffic, pre-routed into
/// per-link packet schedules. Keep it alive while sources built from it
/// are running (they borrow the schedules).
class SyntheticTraffic {
 public:
  SyntheticTraffic(const routing::RoutingMatrix& matrix,
                   const traffic::TrafficMatrix& tm,
                   SyntheticOptions options = {});

  /// A replay source for one link (empty schedule = empty source).
  std::unique_ptr<PacketSource> source(topo::LinkId link) const;

  /// Sources for every link with rates[link] > 0 and a non-empty
  /// schedule — the monitored-link set of the pipeline.
  std::vector<std::unique_ptr<PacketSource>> sources(
      const sampling::RateVector& rates) const;

  /// The generated flow populations, one row per traffic-matrix entry
  /// (ground truth for accuracy checks).
  const std::vector<std::vector<traffic::Flow>>& flows() const noexcept {
    return flows_;
  }

  /// Total packets scheduled on a link across the interval.
  std::uint64_t packets_on(topo::LinkId link) const;

  double interval_sec() const noexcept { return options_.flowgen.interval_sec; }
  std::size_t link_count() const noexcept { return spans_.size(); }

 private:
  friend class SyntheticLinkSource;

  /// One flow's appearance on one link: `packets` packets evenly spaced
  /// over [start, start + packets * dt), FIN on the last TCP packet.
  struct PacketSpan {
    traffic::FlowKey key;
    std::uint32_t pkt_bytes = 0;
    std::uint32_t packets = 0;
    double start_sec = 0.0;
    double dt_sec = 0.0;
    bool fin_last = false;
  };

  SyntheticOptions options_;
  std::vector<std::vector<traffic::Flow>> flows_;
  /// Per-link schedules sorted by start_sec, indexed by link id.
  std::vector<std::vector<PacketSpan>> spans_;
};

}  // namespace netmon::ingest
