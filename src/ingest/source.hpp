// PacketSource: the capture abstraction at the head of the ingest
// pipeline (the "sniffer" of CoMo's capture process).
//
// A source is bound to one monitored link and hands out batches of
// PacketRecords in non-decreasing timestamp order. Two implementations
// ship: the deterministic synthetic generator driven by the traffic
// models (ingest/synthetic.hpp) and the pcap trace reader with optional
// clock-paced replay (ingest/trace.hpp). Each source is owned by exactly
// one producer thread, so implementations need no internal locking.
#pragma once

#include <cstddef>

#include "ingest/packet.hpp"
#include "topo/graph.hpp"

namespace netmon::ingest {

/// A stream of packets observed on one link.
class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// The monitored link this source feeds.
  virtual topo::LinkId link() const noexcept = 0;

  /// Fills up to `max` records (timestamps non-decreasing across calls)
  /// and returns the count. 0 means either end-of-stream (exhausted())
  /// or, for paced sources, "nothing due yet" — producers distinguish
  /// the two and yield rather than spin on a paced source.
  virtual std::size_t next_batch(PacketRecord* out, std::size_t max) = 0;

  /// True once the stream can never produce again.
  virtual bool exhausted() const noexcept = 0;
};

/// Resolves the ring-capacity knob: `configured` when non-zero, else the
/// NETMON_INGEST_RING environment variable, else `fallback`. Unparsable
/// or absurd env values fall back too; the result is clamped to
/// [2, 1 << 24] before the ring rounds it up to a power of two.
std::size_t ring_capacity_from_env(std::size_t configured,
                                   std::size_t fallback = 8192) noexcept;

}  // namespace netmon::ingest
