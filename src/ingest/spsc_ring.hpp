// Single-producer / single-consumer lock-free ring — the queue between
// one packet source (producer thread) and the consumer shard that owns
// its link (ingest/pipeline.hpp).
//
// Design points, in hot-path order:
//   - Capacity is a power of two; slot index is (position & mask), and
//     positions are monotonically increasing 64-bit tickets so
//     full/empty never needs a separate flag or a wasted slot.
//   - The producer owns head_, the consumer owns tail_, and each side
//     keeps a *cached* copy of the other's index (the classic bounded
//     SPSC optimization): a batch push touches the consumer's cache line
//     only when the cached view says the ring might be full, so in
//     steady state the two sides ping-pong no cache lines at all. The
//     hot indices are alignas(64)-padded against false sharing.
//   - Batch push/pop move whole arrays per synchronization point; the
//     per-record cost is one T copy (T must be trivially copyable).
//   - Overflow is the *caller's* policy: try_push reports a partial
//     push, push_or_drop counts the overflow into dropped() — the
//     pipeline's counted drop-on-full policy — and a blocking producer
//     simply retries try_push (backpressure).
//
// Memory ordering: the producer publishes slots with a release store of
// head_, the consumer acquires it before reading those slots (and vice
// versa for tail_ when slots are reused), so slot accesses themselves
// are plain (non-atomic) and the scheme is exact under ThreadSanitizer —
// the TSan interleave test in tests/ingest_spsc_ring_test.cpp gates it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "obs/ring.hpp"  // obs::ceil_pow2
#include "util/error.hpp"

namespace netmon::ingest {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "ring slots are copied as raw values");

 public:
  /// Pre-sizes the ring to ceil_pow2(max(capacity, 2)) slots. Nothing
  /// allocates after construction.
  explicit SpscRing(std::size_t capacity)
      : capacity_(obs::ceil_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }

  // --- producer side (one thread only) ---

  /// Pushes up to `count` items; returns how many fit (0 when full).
  std::size_t try_push(const T* items, std::size_t count) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t free =
        capacity_ - static_cast<std::size_t>(head - cached_tail_);
    if (free < count) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      free = capacity_ - static_cast<std::size_t>(head - cached_tail_);
      if (free < count) count = free;
    }
    for (std::size_t i = 0; i < count; ++i)
      slots_[(head + i) & mask_] = items[i];
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Pushes what fits and counts the remainder as dropped — the counted
  /// drop-on-full overflow policy. Returns how many were enqueued.
  std::size_t push_or_drop(const T* items, std::size_t count) noexcept {
    const std::size_t pushed = try_push(items, count);
    if (pushed < count)
      dropped_.fetch_add(count - pushed, std::memory_order_relaxed);
    return pushed;
  }

  // --- consumer side (one thread only) ---

  /// Pops up to `max` items into `out`; returns how many (0 when empty).
  std::size_t pop(T* out, std::size_t max) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_head_ - tail);
    if (avail < max) {
      cached_head_ = head_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_head_ - tail);
    }
    if (avail < max) max = avail;
    for (std::size_t i = 0; i < max; ++i) out[i] = slots_[(tail + i) & mask_];
    tail_.store(tail + max, std::memory_order_release);
    return max;
  }

  // --- either side (approximate across threads, exact when quiescent) ---

  /// Records currently enqueued.
  std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  bool empty() const noexcept { return size() == 0; }

  /// Records ever pushed / popped / dropped by push_or_drop.
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::uint64_t popped() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t capacity_;
  std::uint64_t mask_;
  std::unique_ptr<T[]> slots_;

  /// Producer-owned write position; consumer acquires it.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  /// Producer's cached view of tail_ (no sharing: producer-only).
  alignas(64) std::uint64_t cached_tail_ = 0;
  /// Consumer-owned read position; producer acquires it.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  /// Consumer's cached view of head_ (consumer-only).
  alignas(64) std::uint64_t cached_head_ = 0;
  /// Overflow count under push_or_drop (producer writes, anyone reads).
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace netmon::ingest
