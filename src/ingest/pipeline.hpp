// IngestPipeline: packet sources -> SPSC rings -> sampled per-link flow
// tables -> exporter/collector, on the runtime pool.
//
//   PacketSource (per link: synthetic replay or pcap trace)
//        |          producer threads, sources partitioned round-robin;
//        v          one producer owns a source, so each ring stays SPSC
//   SpscRing<PacketRecord>   (one per source; NETMON_INGEST_RING slots;
//        |                    overflow policy: block = backpressure,
//        v                    drop = counted in dropped_packets)
//   consumer shards on runtime::ThreadPool — each shard owns a disjoint
//   set of sources and, per packet: monotonic-clamps the timestamp,
//   applies the configured sampling:: policy (per-link sampler seeded
//   via Rng::substream(link id)), and folds sampled packets into that
//   link's netflow::FlowTable, whose idle/active/FIN expiries export
//   records into a per-source buffer
//        |
//        v
//   netflow::Collector (5-minute bins, OD attribution via EgressMap)
//        -> od_rate_estimates() -> control::BinObservation::od_rates
//
// Determinism: all per-packet state (sampler stream, flow table, export
// buffer) is keyed by the source, never by the worker, and the collector
// aggregation is commutative sums — so for a fixed seed the final
// estimates are identical across runs, producer partitions, and
// consumer thread counts. (Under the kDrop policy the *drop pattern* is
// timing-dependent; use kBlock when bit-reproducibility matters.)
//
// The pipeline assumes a dedicated (otherwise idle) pool: under the
// blocking overflow policy every consumer shard must eventually get a
// worker (shard count is clamped to the pool size; the calling thread
// helps via TaskGroup), which unrelated long-running pool tasks could
// prevent.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ingest/source.hpp"
#include "ingest/spsc_ring.hpp"
#include "netflow/collector.hpp"
#include "netflow/flow_table.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "sampling/effective_rate.hpp"
#include "sampling/sampler.hpp"

namespace netmon::ingest {

/// What a producer does when a ring is full.
enum class OverflowPolicy : std::uint8_t {
  /// Retry until the consumer drains (backpressure; deterministic).
  kBlock,
  /// Drop the overflow and count it (a capture NIC's behavior).
  kDrop,
};

/// Pipeline configuration.
struct IngestOptions {
  netflow::FlowTableOptions flow_table;
  netflow::CollectorOptions collector;
  /// Per-link sampler policy (Bernoulli = the paper's i.i.d. model).
  sampling::SamplerKind sampler = sampling::SamplerKind::kBernoulli;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Ring slots per source; 0 = NETMON_INGEST_RING env or 8192. Rounded
  /// up to a power of two.
  std::size_t ring_capacity = 0;
  /// Records moved per ring synchronization point.
  std::size_t batch = 256;
  /// Producer threads; sources are partitioned round-robin across them
  /// (clamped to the source count).
  unsigned producers = 2;
  /// Consumer shards; 0 = one per pool worker. Clamped to
  /// [1, min(pool size, source count)].
  unsigned consumers = 0;
  /// Root seed: link samplers draw substream(link id) from it.
  std::uint64_t seed = 42;
  /// Pre-size each link's flow table and export buffer for this many
  /// flows (zero-allocation steady state); 0 = no pre-sizing.
  std::size_t expected_flows_per_link = 0;
};

/// Host infrastructure (all optional, borrowed).
struct IngestDeps {
  /// Counter/histogram sink; null = detached no-op handles.
  obs::MetricsRegistry* metrics = nullptr;
  /// Wall-time source for the throughput stats; null = steady clock.
  const obs::Clock* clock = nullptr;
  /// Consumer-shard pool; null = consume inline on the caller after the
  /// producers finish (single-shard, still correct, no parallelism).
  runtime::ThreadPool* pool = nullptr;
};

/// One run's totals.
struct IngestStats {
  /// Packets emitted by the sources.
  std::uint64_t offered_packets = 0;
  /// Packets that reached a consumer (offered - dropped).
  std::uint64_t consumed_packets = 0;
  /// Packets the configured policy sampled into flow tables.
  std::uint64_t sampled_packets = 0;
  /// Ring overflow under OverflowPolicy::kDrop.
  std::uint64_t dropped_packets = 0;
  /// Flow records exported into the collector.
  std::uint64_t exported_records = 0;
  std::size_t sources = 0;
  unsigned producer_threads = 0;
  unsigned consumer_shards = 0;
  double elapsed_sec = 0.0;
  /// consumed_packets / elapsed_sec (0 when the clock stood still).
  double packets_per_sec = 0.0;

  double drop_rate() const noexcept {
    return offered_packets != 0
               ? static_cast<double>(dropped_packets) /
                     static_cast<double>(offered_packets)
               : 0.0;
  }
};

/// The pipeline. Construct, add sources (one per monitored link), run.
/// Not reusable: one run() per instance.
class IngestPipeline {
 public:
  /// `rates[link]` is the sampling probability in force on each link;
  /// `egress` resolves record endpoints for the collector. Both are
  /// borrowed and must outlive the pipeline.
  IngestPipeline(const sampling::RateVector& rates,
                 const netflow::EgressMap& egress, IngestOptions options = {},
                 IngestDeps deps = {});
  ~IngestPipeline();  // out-of-line: SourceState is incomplete here

  /// Adds one source. Its link must have rates[link] > 0.
  void add_source(std::unique_ptr<PacketSource> source);
  void add_sources(std::vector<std::unique_ptr<PacketSource>> sources);

  /// Drains every source to exhaustion, flushes all flow tables, and
  /// feeds the exported records to the collector. Returns the totals.
  IngestStats run();

  const netflow::Collector& collector() const noexcept { return collector_; }
  const IngestStats& stats() const noexcept { return stats_; }
  std::size_t source_count() const noexcept { return sources_.size(); }

 private:
  struct SourceState;

  void producer_loop(std::size_t producer_index, unsigned producer_count);
  void consumer_loop(std::size_t shard_index, unsigned shard_count);
  void process_batch(SourceState& state, const PacketRecord* records,
                     std::size_t count);

  const sampling::RateVector& rates_;
  IngestOptions options_;
  IngestDeps deps_;
  netflow::Collector collector_;
  std::vector<std::unique_ptr<SourceState>> sources_;
  std::atomic<unsigned> producers_running_{0};
  bool ran_ = false;
  IngestStats stats_;

  // Metrics handles (detached no-ops without a registry).
  obs::Counter packets_total_;
  obs::Counter sampled_total_;
  obs::Counter dropped_total_;
  obs::Counter batches_total_;
  obs::Counter exported_total_;
  obs::Histogram ring_occupancy_;
  obs::Histogram produce_batch_ns_;
  obs::Histogram consume_batch_ns_;
  obs::Gauge packets_per_sec_;
};

/// Matches control::kMissing: an observation entry carrying no estimate.
inline constexpr double kNoEstimate = -1.0;

/// Per-OD rate estimates (pkt/s) for one collector bin: the paper's
/// X_k / rho_k estimator with rho from the linearized effective-rate
/// model, divided by the bin length. ODs with rho ~ 0 get kNoEstimate.
/// The result drops straight into control::BinObservation::od_rates.
std::vector<double> od_rate_estimates(const netflow::Collector& collector,
                                      const routing::RoutingMatrix& matrix,
                                      const sampling::RateVector& rates,
                                      std::int64_t bin, double bin_sec);

}  // namespace netmon::ingest
