#include "net/ip.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace netmon::net {

std::string to_string(Ipv4 addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::string to_string(const Prefix& prefix) {
  return to_string(prefix.base) + "/" + std::to_string(prefix.len);
}

namespace {
bool parse_octets(std::string_view text, Ipv4& out, std::size_t& used) {
  unsigned a, b, c, d;
  int n = 0;
  if (std::sscanf(std::string(text).c_str(), "%u.%u.%u.%u%n", &a, &b, &c, &d,
                  &n) != 4)
    return false;
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = ipv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
             static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
  used = static_cast<std::size_t>(n);
  return true;
}
}  // namespace

Ipv4 parse_ipv4(std::string_view text) {
  Ipv4 addr = 0;
  std::size_t used = 0;
  NETMON_REQUIRE(parse_octets(text, addr, used) && used == text.size(),
                 "malformed IPv4 address: " + std::string(text));
  return addr;
}

Prefix parse_prefix(std::string_view text) {
  const auto slash = text.find('/');
  NETMON_REQUIRE(slash != std::string_view::npos,
                 "prefix missing '/len': " + std::string(text));
  const Ipv4 base = parse_ipv4(text.substr(0, slash));
  int len = -1;
  try {
    len = std::stoi(std::string(text.substr(slash + 1)));
  } catch (...) {
    len = -1;
  }
  NETMON_REQUIRE(len >= 0 && len <= 32,
                 "prefix length out of range: " + std::string(text));
  return Prefix{base, len};
}

}  // namespace netmon::net
