// IPv4 addresses and prefixes.
//
// Addresses are host-order 32-bit integers; prefixes are (base, length)
// pairs. Used by the flow generator (assigning per-PoP address space) and
// by the longest-prefix-match egress mapping (netflow::EgressMap).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace netmon::net {

/// Host-order IPv4 address.
using Ipv4 = std::uint32_t;

/// Builds an address from dotted-quad components.
constexpr Ipv4 ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d) noexcept {
  return (static_cast<Ipv4>(a) << 24) | (static_cast<Ipv4>(b) << 16) |
         (static_cast<Ipv4>(c) << 8) | static_cast<Ipv4>(d);
}

/// An IPv4 prefix base/len, e.g. 10.3.0.0/16.
struct Prefix {
  Ipv4 base = 0;
  int len = 0;  // 0..32

  /// The netmask of this prefix as an address.
  constexpr Ipv4 mask() const noexcept {
    return len == 0 ? 0 : ~Ipv4{0} << (32 - len);
  }

  /// Whether `addr` falls inside this prefix.
  constexpr bool contains(Ipv4 addr) const noexcept {
    return (addr & mask()) == (base & mask());
  }

  /// Number of host addresses covered (2^(32-len)).
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - len);
  }

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
};

/// Renders an address as dotted quad, e.g. "10.3.0.1".
std::string to_string(Ipv4 addr);

/// Renders a prefix, e.g. "10.3.0.0/16".
std::string to_string(const Prefix& prefix);

/// Parses a dotted-quad address. Throws netmon::Error on malformed input.
Ipv4 parse_ipv4(std::string_view text);

/// Parses "a.b.c.d/len". Throws netmon::Error on malformed input.
Prefix parse_prefix(std::string_view text);

}  // namespace netmon::net
